//! Per-equation forward dataflow: definite assignment + interval analysis.
//!
//! Tape control flow is forward-only (every branch target points past the
//! branch), so instruction order is a topological order of the CFG and a
//! single forward pass with per-edge state joins computes, for every step:
//!
//! * which registers are *definitely assigned* on **all** paths reaching
//!   it (meet = intersection over incoming edges), and
//! * a symbolic interval for every integer register (join = convex hull),
//!   refined along the edges of fused compare-and-branch guards.

use crate::interval::{fmt_affine, refine, Facts, Ival};
use crate::ir::{ADim, AProgram, ArrayIx, CmpInfo, CmpOp, EqIx, EqTape, IVal, Reg, Step};
use crate::report::Verdict;
use ps_lang::Affine;
use ps_support::diag::Diagnostic;
use std::collections::HashSet;

/// One enclosing scheduled loop, as seen by one equation.
pub struct LoopCtx<'a> {
    pub parallel: bool,
    pub name: &'a str,
    pub lo: &'a Affine,
    pub hi: &'a Affine,
    /// The i-register this equation binds the counter to.
    pub counter: u16,
}

/// Verdict for one array load.
pub struct LoadOutcome {
    pub array: ArrayIx,
    pub verdict: Verdict,
}

/// Everything the driver needs to know about an equation's final store.
pub struct StoreOutcome {
    pub array: ArrayIx,
    pub in_bounds: Verdict,
    /// Injective over *every* enclosing counter: two distinct iteration
    /// vectors of the enclosing loop nest never write the same element
    /// (per-equation single assignment).
    pub injective: bool,
    /// Injective over the parallel (DOALL) counters alone, with the
    /// sequential counters held fixed — the paper's independence condition
    /// for the innermost parallel nest.
    pub doall_injective: bool,
    /// An enclosing counter the address provably does not depend on —
    /// iterations overwrite each other (reported as E0603).
    pub overlap: Option<String>,
    /// Write interval per logical dimension, at tape exit.
    pub dims: Vec<Ival>,
}

/// Result of analyzing one equation in one scheduled region.
pub struct EqOutcome {
    pub diags: Vec<Diagnostic>,
    pub loads: Vec<LoadOutcome>,
    pub store: Option<StoreOutcome>,
}

/// Dataflow state at one program point.
#[derive(Clone)]
struct State {
    f: Vec<bool>,
    i: Vec<bool>,
    b: Vec<bool>,
    iv: Vec<Ival>,
}

impl State {
    fn defined(&self, reg: Reg) -> bool {
        match reg {
            Reg::F(r) => self.f[r as usize],
            Reg::I(r) => self.i[r as usize],
            Reg::B(r) => self.b[r as usize],
        }
    }

    fn define(&mut self, reg: Reg) {
        match reg {
            Reg::F(r) => self.f[r as usize] = true,
            Reg::I(r) => {
                self.i[r as usize] = true;
                self.iv[r as usize] = Ival::top();
            }
            Reg::B(r) => self.b[r as usize] = true,
        }
    }

    /// Meet definedness (intersection), join intervals (hull).
    fn merge_from(&mut self, other: &State, facts: &Facts) {
        for (d, s) in self.f.iter_mut().zip(&other.f) {
            *d &= s;
        }
        for (d, s) in self.i.iter_mut().zip(&other.i) {
            *d &= s;
        }
        for (d, s) in self.b.iter_mut().zip(&other.b) {
            *d &= s;
        }
        for (d, s) in self.iv.iter_mut().zip(&other.iv) {
            *d = d.join(s, facts);
        }
    }
}

fn merge(states: &mut [Option<State>], target: usize, st: State, facts: &Facts) {
    match &mut states[target] {
        Some(cur) => cur.merge_from(&st, facts),
        slot => *slot = Some(st),
    }
}

/// Copy `st` onto the edge where `a op b` effectively holds, refining the
/// interval of either operand when the other is a known single value.
fn refine_edge(st: &State, c: &CmpInfo, op: CmpOp) -> State {
    let mut out = st.clone();
    if let (Reg::I(a), Reg::I(b)) = (c.a, c.b) {
        let (a, b) = (a as usize, b as usize);
        if let Some(k) = st.iv[b].singleton().cloned() {
            out.iv[a] = refine(&st.iv[a], op, &k);
        }
        if let Some(k) = st.iv[a].singleton().cloned() {
            out.iv[b] = refine(&st.iv[b], op.swap(), &k);
        }
    }
    out
}

/// Interval of one address dimension under `st`.
fn dim_interval(d: &ADim, st: &State) -> Ival {
    let mut lo = Some(Affine::constant(d.base));
    let mut hi = Some(Affine::constant(d.base));
    for &(r, c) in &d.terms {
        let iv = &st.iv[r as usize];
        let (end_lo, end_hi) = if c >= 0 {
            (&iv.lo, &iv.hi)
        } else {
            (&iv.hi, &iv.lo)
        };
        lo = match (lo, end_lo) {
            (Some(acc), Some(x)) => Some(acc.add(&x.scale(c))),
            _ => None,
        };
        hi = match (hi, end_hi) {
            (Some(acc), Some(x)) => Some(acc.add(&x.scale(c))),
            _ => None,
        };
    }
    Ival { lo, hi }
}

/// Prove every dimension of an access inside its declared bounds.
/// Returns the combined verdict and the per-dimension intervals; provable
/// violations are emitted as `E0602` diagnostics.
#[allow(clippy::too_many_arguments)]
fn access_check(
    p: &AProgram,
    array: ArrayIx,
    dims: &[ADim],
    st: &State,
    facts: &Facts,
    eq_label: &str,
    what: &str,
    region: &str,
    diags: &mut Vec<Diagnostic>,
) -> (Verdict, Vec<Ival>) {
    let info = &p.arrays[array];
    let mut verdict = Verdict::Proven;
    let mut ivals = Vec::with_capacity(dims.len());
    for (d, (adim, dim)) in dims.iter().zip(&info.dims).enumerate() {
        let iv = dim_interval(adim, st);
        let mut side = |end: &Option<Affine>, declared: &Affine, below: bool| {
            // Proven: end inside the declared bound for all admissible
            // parameter vectors. Rejected: provably outside by a constant
            // margin. Otherwise: leave to the runtime checks.
            let proven = match end {
                Some(e) if below => facts.le(declared, e),
                Some(e) => facts.le(e, declared),
                None => false,
            };
            if proven {
                return;
            }
            let exceeded = match end {
                Some(e) if below => {
                    matches!(declared.const_difference(e), Some(k) if k > 0)
                }
                Some(e) => matches!(e.const_difference(declared), Some(k) if k > 0),
                None => false,
            };
            if exceeded {
                verdict = Verdict::Rejected;
                let word = if below { "below" } else { "above" };
                diags.push(Diagnostic::error(
                    "E0602",
                    format!(
                        "{eq_label}: {what} of {} dimension {d} reaches index {} — \
                         {word} the declared bounds {}..{} (region: {region})",
                        info.name,
                        end.as_ref().map(|e| fmt_affine(e)).unwrap_or_default(),
                        fmt_affine(&dim.lo),
                        fmt_affine(&dim.hi),
                    ),
                ));
            } else if verdict == Verdict::Proven {
                verdict = Verdict::RuntimeChecks;
            }
        };
        side(&iv.lo, &dim.lo, true);
        side(&iv.hi, &dim.hi, false);
        ivals.push(iv);
    }
    (verdict, ivals)
}

/// Greedy triangular pinning: the store address is injective in `counters`
/// if we can repeatedly find a dimension whose terms involve exactly one
/// unpinned counter (nonzero coefficient) and otherwise only pinned
/// counters or iteration-invariant registers. Equal addresses then force
/// the counters equal one at a time.
pub(crate) fn injective_in(
    dims: &[ADim],
    counters: &[u16],
    invariant: &dyn Fn(u16) -> bool,
) -> bool {
    let mut unpinned: Vec<u16> = counters.to_vec();
    let mut pinned: Vec<u16> = Vec::new();
    let mut avail = vec![true; dims.len()];
    while !unpinned.is_empty() {
        let mut pick = None;
        'dims: for (dix, d) in dims.iter().enumerate() {
            if !avail[dix] {
                continue;
            }
            let mut sole: Option<u16> = None;
            for &(r, c) in &d.terms {
                if unpinned.contains(&r) {
                    if c == 0 {
                        continue;
                    }
                    match sole {
                        None => sole = Some(r),
                        Some(s) if s == r => {}
                        Some(_) => continue 'dims,
                    }
                } else if !(pinned.contains(&r) || invariant(r)) {
                    // A register that may vary between iterations without
                    // being a counter (e.g. a dynamic subscript).
                    continue 'dims;
                }
            }
            if let Some(r) = sole {
                pick = Some((dix, r));
                break;
            }
        }
        match pick {
            Some((dix, r)) => {
                avail[dix] = false;
                unpinned.retain(|&x| x != r);
                pinned.push(r);
            }
            None => return false,
        }
    }
    true
}

/// Analyze one equation occurrence under its enclosing loop context.
pub fn analyze_eq(
    p: &AProgram,
    eq_ix: EqIx,
    loops: &[LoopCtx<'_>],
    facts: &Facts,
    region: &str,
) -> EqOutcome {
    let eq: &EqTape = &p.eqs[eq_ix];
    let n = eq.steps.len();
    let mut diags = Vec::new();
    let mut loads = Vec::new();
    let mut reported: HashSet<(u8, u16)> = HashSet::new();

    // --- entry state ---
    let mut entry = State {
        f: vec![false; eq.n_f as usize],
        i: vec![false; eq.n_i as usize],
        b: vec![false; eq.n_b as usize],
        iv: vec![Ival::top(); eq.n_i as usize],
    };
    for &r in &eq.entry_f {
        entry.f[r as usize] = true;
    }
    for &r in &eq.entry_b {
        entry.b[r as usize] = true;
    }
    for (r, v) in eq.ivals.iter().enumerate() {
        match v {
            IVal::Counter => {
                // Defined only when some enclosing loop actually binds it;
                // a counter no loop binds is a schedule defect and shows up
                // as use-before-assignment below.
                if let Some(lc) = loops.iter().find(|l| l.counter == r as u16) {
                    entry.i[r] = true;
                    entry.iv[r] = Ival::range(lc.lo.clone(), lc.hi.clone());
                }
            }
            IVal::Exact(a) => {
                entry.i[r] = true;
                entry.iv[r] = Ival::exact(a.clone());
            }
            IVal::Opaque => entry.i[r] = true,
            IVal::Temp => {}
        }
    }

    let mut check_use = |st: &State, reg: Reg, at: &str, diags: &mut Vec<Diagnostic>| {
        if st.defined(reg) {
            return;
        }
        let key = match reg {
            Reg::F(r) => (0u8, r),
            Reg::I(r) => (1, r),
            Reg::B(r) => (2, r),
        };
        if reported.insert(key) {
            diags.push(Diagnostic::error(
                "E0601",
                format!(
                    "{}: register {reg} may be read before assignment at {at} \
                     — some control path reaches it without a definition \
                     (region: {region})",
                    eq.label
                ),
            ));
        }
    };

    // --- forward pass ---
    let mut states: Vec<Option<State>> = vec![None; n + 1];
    states[0] = Some(entry);
    for ix in 0..n {
        let Some(st) = states[ix].clone() else {
            continue; // unreachable step
        };
        let mut st = st;
        match &eq.steps[ix] {
            Step::Op { uses, def } => {
                for &u in uses {
                    check_use(&st, u, &format!("step {ix}"), &mut diags);
                }
                if let Some(d) = def {
                    st.define(*d);
                }
                merge(&mut states, ix + 1, st, facts);
            }
            Step::CopyI { src, dst } => {
                check_use(&st, Reg::I(*src), &format!("step {ix}"), &mut diags);
                let iv = st.iv[*src as usize].clone();
                st.i[*dst as usize] = true;
                st.iv[*dst as usize] = iv;
                merge(&mut states, ix + 1, st, facts);
            }
            Step::Load { array, addr, def } => {
                for dim in addr {
                    for &(r, _) in &dim.terms {
                        check_use(&st, Reg::I(r), &format!("step {ix} (address)"), &mut diags);
                    }
                }
                let (verdict, _) = access_check(
                    p, *array, addr, &st, facts, &eq.label, "load", region, &mut diags,
                );
                loads.push(LoadOutcome {
                    array: *array,
                    verdict,
                });
                st.define(*def);
                merge(&mut states, ix + 1, st, facts);
            }
            Step::Jump { target } => merge(&mut states, *target, st, facts),
            Step::Branch { uses, target, cmp } => {
                for &u in uses {
                    check_use(&st, u, &format!("step {ix}"), &mut diags);
                }
                let (jump_st, fall_st) = match cmp {
                    Some(c) => {
                        let jop = if c.jump_on_true { c.op } else { c.op.negate() };
                        (refine_edge(&st, c, jop), refine_edge(&st, c, jop.negate()))
                    }
                    None => (st.clone(), st),
                };
                merge(&mut states, *target, jump_st, facts);
                merge(&mut states, ix + 1, fall_st, facts);
            }
        }
    }

    // --- exit: result + final store ---
    let exit = states[n].take();
    let store = match (&eq.store, exit) {
        (_, None) => None, // no path reaches exit: vacuous (empty tape only)
        (store, Some(exit)) => {
            check_use(&exit, eq.result, "tape exit (result)", &mut diags);
            store.as_ref().map(|sp| {
                for dim in &sp.dims {
                    for &(r, _) in &dim.terms {
                        check_use(&exit, Reg::I(r), "tape exit (store address)", &mut diags);
                    }
                }
                let (in_bounds, dims) = access_check(
                    p, sp.array, &sp.dims, &exit, facts, &eq.label, "store", region, &mut diags,
                );
                let invariant = |r: u16| {
                    matches!(
                        eq.ivals.get(r as usize),
                        Some(IVal::Exact(_)) | Some(IVal::Opaque)
                    )
                };
                let all: Vec<u16> = loops.iter().map(|l| l.counter).collect();
                let par: Vec<u16> = loops
                    .iter()
                    .filter(|l| l.parallel)
                    .map(|l| l.counter)
                    .collect();
                // Sequential counters are fixed while a DOALL nest runs.
                let seq: Vec<u16> = loops
                    .iter()
                    .filter(|l| !l.parallel)
                    .map(|l| l.counter)
                    .collect();
                let overlap = all
                    .iter()
                    .find(|&&c| {
                        sp.dims
                            .iter()
                            .all(|d| d.terms.iter().all(|&(r, k)| r != c || k == 0))
                    })
                    .map(|&c| {
                        loops
                            .iter()
                            .find(|l| l.counter == c)
                            .map(|l| l.name.to_string())
                            .unwrap_or_else(|| format!("i{c}"))
                    });
                if let Some(name) = &overlap {
                    diags.push(Diagnostic::error(
                        "E0603",
                        format!(
                            "{}: store address into {} never varies with enclosing \
                             counter {name} — loop iterations overwrite the same \
                             elements (region: {region})",
                            eq.label, p.arrays[sp.array].name
                        ),
                    ));
                }
                let injective = injective_in(&sp.dims, &all, &invariant);
                let doall_injective =
                    injective_in(&sp.dims, &par, &|r| invariant(r) || seq.contains(&r));
                StoreOutcome {
                    array: sp.array,
                    in_bounds,
                    injective,
                    doall_injective,
                    overlap,
                    dims,
                }
            })
        }
    };

    EqOutcome {
        diags,
        loads,
        store,
    }
}
