//! Symbolic intervals with affine endpoints, and the inequality prover.
//!
//! Endpoints are [`Affine`] forms over the module's integer parameters.
//! Two affine forms compare only when their difference is constant
//! ([`Affine::const_difference`]); everything else is answered
//! conservatively. The [`Facts`] base widens that reach: every declared
//! array dimension `lo..hi` must be non-empty for the program to
//! instantiate at all, and an enclosing loop's range is non-empty whenever
//! its body runs, so `p ≤ q` pairs from both sources are sound premises
//! for chaining (`a ≤ p ≤ q ≤ b`).

use crate::ir::CmpOp;
use ps_lang::Affine;

/// Render an affine form compactly: `maxK-1`, `2`, `n+M+3` (delegates to
/// [`Affine::compact`]).
pub fn fmt_affine(a: &Affine) -> String {
    a.compact()
}

/// An inclusive interval with affine endpoints; `None` means unknown in
/// that direction.
#[derive(Clone, Debug, Default)]
pub struct Ival {
    pub lo: Option<Affine>,
    pub hi: Option<Affine>,
}

impl Ival {
    pub fn top() -> Ival {
        Ival::default()
    }

    pub fn exact(a: Affine) -> Ival {
        Ival {
            lo: Some(a.clone()),
            hi: Some(a),
        }
    }

    pub fn range(lo: Affine, hi: Affine) -> Ival {
        Ival {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// The single value of a width-one interval.
    pub fn singleton(&self) -> Option<&Affine> {
        match (&self.lo, &self.hi) {
            (Some(lo), Some(hi)) if lo.const_difference(hi) == Some(0) => Some(lo),
            _ => None,
        }
    }

    /// Convex hull: the loosest interval covering both. Endpoint order is
    /// decided by the prover (constant differences plus the non-empty-dim
    /// / loop-range premises in `facts` — joining the two arms of an
    /// `I = 0 or I = M+1` boundary guard needs `0 ≤ M+1`); endpoints it
    /// cannot order widen to unknown.
    pub fn join(&self, other: &Ival, facts: &Facts) -> Ival {
        let lo = match (&self.lo, &other.lo) {
            (Some(a), Some(b)) if facts.le(a, b) => Some(a.clone()),
            (Some(a), Some(b)) if facts.le(b, a) => Some(b.clone()),
            _ => None,
        };
        let hi = match (&self.hi, &other.hi) {
            (Some(a), Some(b)) if facts.le(a, b) => Some(b.clone()),
            (Some(a), Some(b)) if facts.le(b, a) => Some(a.clone()),
            _ => None,
        };
        Ival { lo, hi }
    }

    pub fn render(&self) -> String {
        let side = |b: &Option<Affine>| b.as_ref().map(|a| fmt_affine(a)).unwrap_or("?".into());
        format!("{}..{}", side(&self.lo), side(&self.hi))
    }
}

/// Tighten an upper bound to `min(cur, k)`; incomparable keeps `cur`
/// (always sound — the interval only ever over-approximates).
fn tighten_hi(cur: &Option<Affine>, k: &Affine) -> Option<Affine> {
    match cur {
        None => Some(k.clone()),
        Some(h) => match h.const_difference(k) {
            Some(d) if d > 0 => Some(k.clone()),
            _ => Some(h.clone()),
        },
    }
}

/// Tighten a lower bound to `max(cur, k)`.
fn tighten_lo(cur: &Option<Affine>, k: &Affine) -> Option<Affine> {
    match cur {
        None => Some(k.clone()),
        Some(l) => match l.const_difference(k) {
            Some(d) if d < 0 => Some(k.clone()),
            _ => Some(l.clone()),
        },
    }
}

/// Refine `iv` with the constraint `r op k` (the guard edge just taken).
pub fn refine(iv: &Ival, op: CmpOp, k: &Affine) -> Ival {
    let mut out = iv.clone();
    match op {
        CmpOp::Eq => return Ival::exact(k.clone()),
        CmpOp::Ne => {
            // Endpoint exclusion: `≠` only helps when `k` sits exactly on
            // a known endpoint (the boundary-guard pattern).
            if let Some(lo) = &iv.lo {
                if lo.const_difference(k) == Some(0) {
                    out.lo = Some(lo.add_const(1));
                }
            }
            if let Some(hi) = &iv.hi {
                if hi.const_difference(k) == Some(0) {
                    out.hi = Some(hi.add_const(-1));
                }
            }
        }
        CmpOp::Le => out.hi = tighten_hi(&iv.hi, k),
        CmpOp::Lt => out.hi = tighten_hi(&iv.hi, &k.add_const(-1)),
        CmpOp::Ge => out.lo = tighten_lo(&iv.lo, k),
        CmpOp::Gt => out.lo = tighten_lo(&iv.lo, &k.add_const(1)),
    }
    out
}

/// A base of `p ≤ q` premises holding for every admissible parameter
/// vector (plus, per region, the enclosing loops' non-empty ranges).
#[derive(Clone, Debug, Default)]
pub struct Facts {
    pairs: Vec<(Affine, Affine)>,
}

impl Facts {
    pub fn new() -> Facts {
        Facts::default()
    }

    /// Record the premise `p ≤ q`.
    pub fn push(&mut self, p: Affine, q: Affine) {
        self.pairs.push((p, q));
    }

    /// Number of recorded premises (used to truncate region-local facts).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    pub fn truncate(&mut self, len: usize) {
        self.pairs.truncate(len);
    }

    /// Prove `a ≤ b`: directly when `b - a` is a non-negative constant,
    /// else through one premise `p ≤ q` with `a ≤ p` and `q ≤ b` both
    /// constant-decidable.
    pub fn le(&self, a: &Affine, b: &Affine) -> bool {
        if let Some(d) = b.const_difference(a) {
            return d >= 0;
        }
        self.pairs.iter().any(|(p, q)| {
            matches!(p.const_difference(a), Some(d) if d >= 0)
                && matches!(b.const_difference(q), Some(d) if d >= 0)
        })
    }

    /// Prove `a < b`.
    pub fn lt(&self, a: &Affine, b: &Affine) -> bool {
        self.le(&a.add_const(1), b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_support::Symbol;

    fn param(name: &str) -> Affine {
        Affine::param(Symbol::intern(name))
    }

    #[test]
    fn facts_chain_through_nonempty_dims() {
        let mut f = Facts::new();
        // array [1 .. maxK] exists ⇒ 1 ≤ maxK.
        f.push(Affine::constant(1), param("maxK"));
        assert!(f.le(&Affine::constant(1), &param("maxK")));
        assert!(f.le(&Affine::constant(0), &param("maxK")));
        assert!(f.le(&Affine::constant(1), &param("maxK").add_const(2)));
        // Unprovable: maxK ≤ 1 and facts about other params.
        assert!(!f.le(&param("maxK"), &Affine::constant(1)));
        assert!(!f.le(&Affine::constant(1), &param("n")));
        // Constant differences need no facts.
        assert!(f.le(&param("n").add_const(-1), &param("n")));
        assert!(!f.lt(&param("n"), &param("n")));
    }

    #[test]
    fn join_widens_incomparable_endpoints() {
        let none = Facts::new();
        let a = Ival::range(Affine::constant(0), param("M").add_const(1));
        let b = Ival::range(Affine::constant(2), param("M"));
        let j = a.join(&b, &none);
        assert_eq!(j.lo.unwrap().as_constant(), Some(0));
        assert_eq!(j.hi.unwrap().const_difference(&param("M")), Some(1));
        let c = Ival::range(param("n"), param("n"));
        let j2 = Ival::range(Affine::constant(3), Affine::constant(3)).join(&c, &none);
        assert!(j2.lo.is_none() && j2.hi.is_none());
        // A boundary-guard join (I = 0 joined with I = M+1) orders its
        // endpoints through the non-empty-range premise 0 ≤ M+1.
        let m1 = param("M").add_const(1);
        let mut f = Facts::new();
        f.push(Affine::constant(0), m1.clone());
        let g = Ival::exact(Affine::constant(0)).join(&Ival::exact(m1.clone()), &f);
        assert_eq!(g.lo.unwrap().as_constant(), Some(0));
        assert_eq!(g.hi.unwrap().const_difference(&m1), Some(0));
    }

    #[test]
    fn refinement_excludes_guard_endpoints() {
        let m1 = param("M").add_const(1);
        let iv = Ival::range(Affine::constant(0), m1.clone());
        // I ≠ 0 ⇒ 1..M+1; then I ≠ M+1 ⇒ 1..M.
        let r = refine(&iv, CmpOp::Ne, &Affine::constant(0));
        assert_eq!(r.render(), format!("1..{}", fmt_affine(&m1)));
        let r2 = refine(&r, CmpOp::Ne, &m1);
        assert_eq!(r2.render(), "1..M");
        // Equality pins the value.
        let e = refine(&iv, CmpOp::Eq, &Affine::constant(0));
        assert_eq!(e.singleton().unwrap().as_constant(), Some(0));
        // Interior exclusion does not split the interval (sound no-op).
        let mid = refine(&iv, CmpOp::Ne, &Affine::constant(5));
        assert_eq!(mid.render(), iv.render());
    }

    #[test]
    fn affine_formatting() {
        assert_eq!(fmt_affine(&Affine::constant(-3)), "-3");
        assert_eq!(fmt_affine(&param("n").add_const(1)), "n+1");
        assert_eq!(fmt_affine(&param("n").scale(2).add_const(-1)), "2n-1");
        assert_eq!(fmt_affine(&param("M").scale(-1)), "-M");
    }
}
