//! The analyzer's neutral input IR.
//!
//! `ps-analyze` sits *below* the runtime: it knows nothing about buffers,
//! specialization keys or thread pools. A producer (the compiled engine's
//! glue in `ps-runtime`, or a test building programs by hand) lowers its
//! tapes into an [`AProgram`]: per-equation step lists over typed register
//! files, affine array addresses over the integer registers, and the
//! scheduled loop tree with its counter bindings. Everything symbolic is an
//! [`Affine`] form over the module's integer parameters, so one analysis
//! run covers *all admissible parameter vectors* at once.

use ps_lang::Affine;

/// Index of an array in [`AProgram::arrays`].
pub type ArrayIx = usize;
/// Index of an equation in [`AProgram::eqs`].
pub type EqIx = usize;

/// Typed register reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Reg {
    F(u16),
    I(u16),
    B(u16),
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reg::F(r) => write!(f, "f{r}"),
            Reg::I(r) => write!(f, "i{r}"),
            Reg::B(r) => write!(f, "b{r}"),
        }
    }
}

/// Comparison operator of a fused compare-and-branch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator holding exactly when `self` does not (over integers).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with operands swapped: `a op b` ⇔ `b op.swap() a`.
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// One dimension of an array address: `base + Σ coeff·i-reg`, in the
/// array's *logical* index space. Zero coefficients must be dropped.
#[derive(Clone, Debug, Default)]
pub struct ADim {
    pub base: i64,
    pub terms: Vec<(u16, i64)>,
}

/// The comparison fused into a conditional branch, when the producer can
/// expose one. Branches without it are analyzed conservatively (no interval
/// refinement on either edge).
#[derive(Clone, Copy, Debug)]
pub struct CmpInfo {
    pub op: CmpOp,
    pub a: Reg,
    pub b: Reg,
    /// `true`: the branch is taken when the comparison holds; `false`: the
    /// branch is taken when it does not (fall-through means it holds).
    pub jump_on_true: bool,
}

/// One analyzable step of an equation tape. All control flow is
/// forward-only: a `target` always points *past* the branch, so step order
/// is a topological order of the control-flow graph.
#[derive(Clone, Debug)]
pub enum Step {
    /// Straight-line instruction: reads `uses`, then defines `def`.
    Op { uses: Vec<Reg>, def: Option<Reg> },
    /// Integer register copy (preserves the source's interval).
    CopyI { src: u16, dst: u16 },
    /// Array element load at an affine address.
    Load {
        array: ArrayIx,
        addr: Vec<ADim>,
        def: Reg,
    },
    /// Unconditional forward jump (`target` may equal `steps.len()`,
    /// meaning the tape exit).
    Jump { target: usize },
    /// Conditional forward branch; `uses` are the condition registers.
    Branch {
        uses: Vec<Reg>,
        target: usize,
        cmp: Option<CmpInfo>,
    },
}

/// Entry classification of an i-register.
#[derive(Clone, Debug)]
pub enum IVal {
    /// Bound by an enclosing scheduled loop before the tape runs.
    Counter,
    /// Known affine function of the module's integer parameters
    /// (constants, preloaded parameters, affine derived registers).
    Exact(Affine),
    /// Defined before the tape runs, value unknown (non-affine derived
    /// forms such as `min`/`max`/`abs` of parameters).
    Opaque,
    /// Defined — or not — by the tape itself.
    Temp,
}

/// The array store performed after the tape's last step.
#[derive(Clone, Debug)]
pub struct StoreSpec {
    pub array: ArrayIx,
    pub dims: Vec<ADim>,
}

/// One equation lowered for analysis.
#[derive(Clone, Debug)]
pub struct EqTape {
    /// Display label (`eq.3`) used in diagnostics.
    pub label: String,
    pub n_f: u16,
    pub n_i: u16,
    pub n_b: u16,
    /// f-registers defined before entry (constants, preloaded reals).
    pub entry_f: Vec<u16>,
    /// b-registers defined before entry (constants).
    pub entry_b: Vec<u16>,
    /// Entry classification of every i-register (length `n_i`).
    pub ivals: Vec<IVal>,
    pub steps: Vec<Step>,
    /// Array store executed at tape exit (`None`: scalar output).
    pub store: Option<StoreSpec>,
    /// Register whose value feeds the output (scalar slot or array store).
    pub result: Reg,
}

/// Declared logical bounds of one array dimension.
#[derive(Clone, Debug)]
pub struct DimInfo {
    pub lo: Affine,
    pub hi: Affine,
}

/// One array the program reads or writes.
#[derive(Clone, Debug)]
pub struct ArrayInfo {
    pub name: String,
    pub dims: Vec<DimInfo>,
    /// Some dimension is physically windowed (fewer planes allocated than
    /// the logical width). Windowed arrays keep their runtime tags even
    /// when proven in-bounds: the tags also catch window evictions, which
    /// this analysis does not model.
    pub windowed: bool,
    /// Producer policy: eligible for checked-writes elision when fully
    /// proven (typically: not windowed, not touched by a drain).
    pub elidable: bool,
    /// Module input — never written by equations; fully defined at entry.
    pub input: bool,
}

/// A node of the scheduled region tree.
#[derive(Clone, Debug)]
pub enum Node {
    Eq(EqIx),
    Loop {
        /// `true` for DOALL (parallel) loops, `false` for sequential DO.
        parallel: bool,
        /// Counter display name (`K`, `I'`, ...).
        name: String,
        lo: Affine,
        hi: Affine,
        /// Which i-register each equation in the body binds this counter to.
        bindings: Vec<(EqIx, u16)>,
        body: Vec<Node>,
    },
}

/// A whole program in analyzer form.
#[derive(Clone, Debug)]
pub struct AProgram {
    pub arrays: Vec<ArrayInfo>,
    pub eqs: Vec<EqTape>,
    pub schedule: Vec<Node>,
}
