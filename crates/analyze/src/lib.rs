//! `ps-analyze` — static verification of compiled PS tapes.
//!
//! The paper's contribution is a *static* legality argument: loop-level
//! parallelism is safe because the compiler proves loop iterations
//! independent before scheduling them. This crate re-proves that argument
//! on the compiled artifact itself — a branch-aware abstract interpretation
//! of the register tapes the runtime actually executes — so the unchecked
//! engine's assumptions become theorems rather than trust. Three analyses
//! run over an [`AProgram`]:
//!
//! 1. **Def-before-use** — a forward definite-assignment pass over every
//!    f64/i64/bool register file. Tape control flow is forward-only, so one
//!    pass with intersection joins covers all control paths through the
//!    fused compare-and-branch guards.
//! 2. **In-bounds addressing** — interval analysis with [`ps_lang::Affine`]
//!    endpoints over the integer registers. Loop counters seed from their
//!    schedule ranges, guard edges refine intervals (`I ≠ 0` excludes an
//!    endpoint, `I = M+1` pins a value), and every affine address is
//!    compared against the array's declared bounds for *all admissible
//!    parameter vectors* — using the fact base that declared dimensions
//!    are non-empty whenever the program instantiates at all.
//! 3. **Write-disjointness** — the paper's independence condition: store
//!    addresses must be injective in the loop induction registers (greedy
//!    triangular pinning over the affine coefficients), plus pairwise
//!    interval disjointness across equations targeting the same array.
//!
//! Verdicts are three-valued: `Proven`, `RuntimeChecks` (undecidable —
//! e.g. dynamic subscripts — left to the runtime's checked mode), and
//! `Rejected` (provably violated, an `E06xx` error diagnostic naming
//! equation, region and instruction). Arrays whose every access is proven
//! may skip the runtime's checked-writes shadow tags entirely; see
//! [`Report::verified_mask`].

#![forbid(unsafe_code)]

mod eq;
mod interval;
mod ir;
mod report;

pub use eq::{analyze_eq, EqOutcome, LoadOutcome, LoopCtx, StoreOutcome};
pub use interval::{fmt_affine, Facts, Ival};
pub use ir::{
    ADim, AProgram, ArrayInfo, ArrayIx, CmpInfo, CmpOp, DimInfo, EqIx, EqTape, IVal, Node, Reg,
    Step, StoreSpec,
};
pub use report::{ArrayReport, Report, Verdict};

use ps_lang::Affine;
use ps_support::diag::Diagnostic;

struct StoreRec {
    array: ArrayIx,
    eq_label: String,
    in_bounds: Verdict,
    injective: bool,
    overlap: bool,
    dims: Vec<Ival>,
}

struct Acc {
    diags: Vec<Diagnostic>,
    eq_lines: Vec<String>,
    loads: Vec<Vec<Verdict>>,
    stores: Vec<StoreRec>,
}

struct StackLoop<'a> {
    parallel: bool,
    name: &'a str,
    lo: &'a Affine,
    hi: &'a Affine,
    bindings: &'a [(EqIx, u16)],
}

/// Run all three analyses over `p`.
pub fn analyze(p: &AProgram) -> Report {
    // Premise base: every declared array dimension `lo..hi` is non-empty
    // for any parameter vector the runtime accepts (instantiation fails
    // otherwise), so `lo ≤ hi` are global facts.
    let mut base = Facts::new();
    for a in &p.arrays {
        for d in &a.dims {
            base.push(d.lo.clone(), d.hi.clone());
        }
    }
    let mut acc = Acc {
        diags: Vec::new(),
        eq_lines: Vec::new(),
        loads: vec![Vec::new(); p.arrays.len()],
        stores: Vec::new(),
    };
    let mut facts = base.clone();
    let mut stack = Vec::new();
    walk(p, &p.schedule, &mut stack, &mut facts, &mut acc);

    let mut arrays = Vec::with_capacity(p.arrays.len());
    for (aix, info) in p.arrays.iter().enumerate() {
        let loads = &acc.loads[aix];
        let stores: Vec<&StoreRec> = acc.stores.iter().filter(|s| s.array == aix).collect();
        let mut notes: Vec<String> = Vec::new();
        let rejected = loads.iter().any(|v| *v == Verdict::Rejected)
            || stores
                .iter()
                .any(|s| s.in_bounds == Verdict::Rejected || s.overlap);
        let mut writes_ok = stores
            .iter()
            .all(|s| s.in_bounds == Verdict::Proven && s.injective && !s.overlap);
        // Cross-equation disjointness: two equations targeting the same
        // array must be separated in at least one dimension. Only the
        // global fact base applies here (loop-local facts are conditional
        // on that loop running).
        for i in 0..stores.len() {
            for j in i + 1..stores.len() {
                if !dims_disjoint(&stores[i].dims, &stores[j].dims, &base) {
                    writes_ok = false;
                    notes.push(format!(
                        "writes of {} and {} not provably disjoint",
                        stores[i].eq_label, stores[j].eq_label
                    ));
                }
            }
        }
        let reads_ok = loads.iter().all(|v| *v == Verdict::Proven);
        let verdict = if rejected {
            Verdict::Rejected
        } else if writes_ok && reads_ok {
            Verdict::Proven
        } else {
            Verdict::RuntimeChecks
        };
        // Windowed arrays keep their tags even when proven: the tags also
        // catch window evictions, which the interval domain does not model.
        let verified = info.elidable && !info.windowed && verdict == Verdict::Proven;
        let mut detail = format!(
            "{} write site(s), {} load site(s)",
            stores.len(),
            loads.len()
        );
        if info.input {
            detail.push_str(", input");
        }
        if info.windowed {
            detail.push_str(", windowed");
        }
        for n in notes {
            detail.push_str("; ");
            detail.push_str(&n);
        }
        arrays.push(ArrayReport {
            name: info.name.clone(),
            verdict,
            verified,
            detail,
        });
    }
    Report {
        diags: acc.diags,
        eq_lines: acc.eq_lines,
        arrays,
    }
}

/// Provable disjointness of two write regions: separated in some dimension.
fn dims_disjoint(a: &[Ival], b: &[Ival], facts: &Facts) -> bool {
    let lt = |h: &Option<Affine>, l: &Option<Affine>| matches!((h, l), (Some(h), Some(l)) if facts.lt(h, l));
    a.iter()
        .zip(b)
        .any(|(x, y)| lt(&x.hi, &y.lo) || lt(&y.hi, &x.lo))
}

fn walk<'a>(
    p: &'a AProgram,
    nodes: &'a [Node],
    stack: &mut Vec<StackLoop<'a>>,
    facts: &mut Facts,
    acc: &mut Acc,
) {
    for node in nodes {
        match node {
            Node::Eq(ix) => {
                let loops: Vec<LoopCtx<'a>> = stack
                    .iter()
                    .filter_map(|l| {
                        l.bindings
                            .iter()
                            .find(|(e, _)| e == ix)
                            .map(|&(_, reg)| LoopCtx {
                                parallel: l.parallel,
                                name: l.name,
                                lo: l.lo,
                                hi: l.hi,
                                counter: reg,
                            })
                    })
                    .collect();
                let region = if stack.is_empty() {
                    "top level".to_string()
                } else {
                    stack
                        .iter()
                        .map(|l| format!("{} {}", if l.parallel { "DOALL" } else { "DO" }, l.name))
                        .collect::<Vec<_>>()
                        .join(" · ")
                };
                let out = analyze_eq(p, *ix, &loops, facts, &region);
                let eq_label = p.eqs[*ix].label.clone();
                let mut line = match &out.store {
                    Some(s) => {
                        let dims = s
                            .dims
                            .iter()
                            .map(|iv| iv.render())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let disj = if s.overlap.is_some() {
                            "OVERLAPPING"
                        } else if s.injective {
                            "injective in all counters"
                        } else if s.doall_injective {
                            "DOALL-disjoint"
                        } else {
                            "disjointness unproven"
                        };
                        format!(
                            "{region}: {eq_label} stores {}[{dims}] — in-bounds {}, {disj}",
                            p.arrays[s.array].name, s.in_bounds
                        )
                    }
                    None => format!("{region}: {eq_label} — scalar result"),
                };
                if !out.loads.is_empty() {
                    let n_p = out
                        .loads
                        .iter()
                        .filter(|l| l.verdict == Verdict::Proven)
                        .count();
                    line.push_str(&format!("; loads {n_p}/{} proven", out.loads.len()));
                }
                acc.eq_lines.push(line);
                acc.diags.extend(out.diags);
                for l in out.loads {
                    acc.loads[l.array].push(l.verdict);
                }
                if let Some(s) = out.store {
                    acc.stores.push(StoreRec {
                        array: s.array,
                        eq_label,
                        in_bounds: s.in_bounds,
                        injective: s.injective,
                        overlap: s.overlap.is_some(),
                        dims: s.dims,
                    });
                }
            }
            Node::Loop {
                parallel,
                name,
                lo,
                hi,
                bindings,
                body,
            } => {
                // Inside the loop its range is non-empty: a sound extra
                // premise for the body only.
                let mark = facts.len();
                facts.push(lo.clone(), hi.clone());
                stack.push(StackLoop {
                    parallel: *parallel,
                    name,
                    lo,
                    hi,
                    bindings,
                });
                walk(p, body, stack, facts, acc);
                stack.pop();
                facts.truncate(mark);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_support::Symbol;

    fn param(name: &str) -> Affine {
        Affine::param(Symbol::intern(name))
    }

    fn arr(name: &str, dims: Vec<(Affine, Affine)>) -> ArrayInfo {
        ArrayInfo {
            name: name.into(),
            dims: dims
                .into_iter()
                .map(|(lo, hi)| DimInfo { lo, hi })
                .collect(),
            windowed: false,
            elidable: true,
            input: false,
        }
    }

    /// Corruption class 1: a register defined on only one branch path.
    #[test]
    fn branch_path_use_before_def_is_rejected() {
        let eq = EqTape {
            label: "eq.1".into(),
            n_f: 2,
            n_i: 0,
            n_b: 1,
            entry_f: vec![0],
            entry_b: vec![0],
            ivals: vec![],
            steps: vec![
                Step::Branch {
                    uses: vec![Reg::B(0)],
                    target: 2,
                    cmp: None,
                },
                Step::Op {
                    uses: vec![Reg::F(0)],
                    def: Some(Reg::F(1)),
                },
                // f1 is defined only on the fall-through path.
                Step::Op {
                    uses: vec![Reg::F(1)],
                    def: Some(Reg::F(1)),
                },
            ],
            store: None,
            result: Reg::F(1),
        };
        let p = AProgram {
            arrays: vec![],
            eqs: vec![eq],
            schedule: vec![Node::Eq(0)],
        };
        let r = analyze(&p);
        assert!(
            r.diags
                .iter()
                .any(|d| d.code == "E0601" && d.message.contains("f1")),
            "{}",
            r.render()
        );
    }

    /// Corruption class 2: an affine store address escaping its bounds.
    #[test]
    fn out_of_bounds_affine_store_is_rejected() {
        // a: array [1..n]; DOALL I = 0..n writes a[I] — index 0 underflows.
        let eq = EqTape {
            label: "eq.1".into(),
            n_f: 1,
            n_i: 1,
            n_b: 0,
            entry_f: vec![0],
            entry_b: vec![],
            ivals: vec![IVal::Counter],
            steps: vec![],
            store: Some(StoreSpec {
                array: 0,
                dims: vec![ADim {
                    base: 0,
                    terms: vec![(0, 1)],
                }],
            }),
            result: Reg::F(0),
        };
        let p = AProgram {
            arrays: vec![arr("a", vec![(Affine::constant(1), param("n"))])],
            eqs: vec![eq],
            schedule: vec![Node::Loop {
                parallel: true,
                name: "I".into(),
                lo: Affine::constant(0),
                hi: param("n"),
                bindings: vec![(0, 0)],
                body: vec![Node::Eq(0)],
            }],
        };
        let r = analyze(&p);
        assert!(r.diags.iter().any(|d| d.code == "E0602"), "{}", r.render());
        assert_eq!(r.arrays[0].verdict, Verdict::Rejected);
        assert!(!r.verified_mask()[0]);
    }

    /// Corruption class 3: DOALL iterations all writing the same element.
    #[test]
    fn overlapping_doall_writes_are_rejected() {
        let eq = EqTape {
            label: "eq.1".into(),
            n_f: 1,
            n_i: 1,
            n_b: 0,
            entry_f: vec![0],
            entry_b: vec![],
            ivals: vec![IVal::Counter],
            steps: vec![],
            store: Some(StoreSpec {
                array: 0,
                dims: vec![ADim {
                    base: 3,
                    terms: vec![],
                }],
            }),
            result: Reg::F(0),
        };
        let p = AProgram {
            arrays: vec![arr("a", vec![(Affine::constant(1), param("n"))])],
            eqs: vec![eq],
            schedule: vec![Node::Loop {
                parallel: true,
                name: "I".into(),
                lo: Affine::constant(1),
                hi: param("n"),
                bindings: vec![(0, 0)],
                body: vec![Node::Eq(0)],
            }],
        };
        let r = analyze(&p);
        assert!(
            r.diags
                .iter()
                .any(|d| d.code == "E0603" && d.message.contains('I')),
            "{}",
            r.render()
        );
        assert_eq!(r.arrays[0].verdict, Verdict::Rejected);
    }

    /// Guard refinement: `if I = 0 then a[1] else a[I]` with `I ∈ 0..M+1`
    /// and `a: 1..M+1` — safe only because the else-edge excludes `I = 0`.
    #[test]
    fn guard_refinement_proves_interior_access() {
        let m1 = param("M").add_const(1);
        let eq = EqTape {
            label: "eq.1".into(),
            n_f: 1,
            n_i: 2,
            n_b: 0,
            entry_f: vec![],
            entry_b: vec![],
            ivals: vec![IVal::Counter, IVal::Exact(Affine::constant(0))],
            steps: vec![
                // Fused guard: fall through when I = 0, jump when I ≠ 0.
                Step::Branch {
                    uses: vec![Reg::I(0), Reg::I(1)],
                    target: 3,
                    cmp: Some(CmpInfo {
                        op: CmpOp::Eq,
                        a: Reg::I(0),
                        b: Reg::I(1),
                        jump_on_true: false,
                    }),
                },
                Step::Load {
                    array: 0,
                    addr: vec![ADim {
                        base: 1,
                        terms: vec![],
                    }],
                    def: Reg::F(0),
                },
                Step::Jump { target: 4 },
                Step::Load {
                    array: 0,
                    addr: vec![ADim {
                        base: 0,
                        terms: vec![(0, 1)],
                    }],
                    def: Reg::F(0),
                },
            ],
            store: None,
            result: Reg::F(0),
        };
        let p = AProgram {
            arrays: vec![arr("a", vec![(Affine::constant(1), m1.clone())])],
            eqs: vec![eq],
            schedule: vec![Node::Loop {
                parallel: true,
                name: "I".into(),
                lo: Affine::constant(0),
                hi: m1,
                bindings: vec![(0, 0)],
                body: vec![Node::Eq(0)],
            }],
        };
        let r = analyze(&p);
        assert!(!r.has_errors(), "{}", r.render());
        assert_eq!(r.arrays[0].verdict, Verdict::Proven, "{}", r.render());
    }

    /// Recurrence shape: `a[1] = c; DO K = 2..n: a[K] = a[K-1]` — injective,
    /// cross-equation disjoint, in-bounds through the non-empty-dim fact.
    #[test]
    fn recurrence_writes_verify_for_elision() {
        let eq1 = EqTape {
            label: "eq.1".into(),
            n_f: 1,
            n_i: 0,
            n_b: 0,
            entry_f: vec![0],
            entry_b: vec![],
            ivals: vec![],
            steps: vec![],
            store: Some(StoreSpec {
                array: 0,
                dims: vec![ADim {
                    base: 1,
                    terms: vec![],
                }],
            }),
            result: Reg::F(0),
        };
        let eq2 = EqTape {
            label: "eq.2".into(),
            n_f: 1,
            n_i: 1,
            n_b: 0,
            entry_f: vec![],
            entry_b: vec![],
            ivals: vec![IVal::Counter],
            steps: vec![Step::Load {
                array: 0,
                addr: vec![ADim {
                    base: -1,
                    terms: vec![(0, 1)],
                }],
                def: Reg::F(0),
            }],
            store: Some(StoreSpec {
                array: 0,
                dims: vec![ADim {
                    base: 0,
                    terms: vec![(0, 1)],
                }],
            }),
            result: Reg::F(0),
        };
        let p = AProgram {
            arrays: vec![arr("a", vec![(Affine::constant(1), param("n"))])],
            eqs: vec![eq1, eq2],
            schedule: vec![
                Node::Eq(0),
                Node::Loop {
                    parallel: false,
                    name: "K".into(),
                    lo: Affine::constant(2),
                    hi: param("n"),
                    bindings: vec![(1, 0)],
                    body: vec![Node::Eq(1)],
                },
            ],
        };
        let r = analyze(&p);
        assert!(!r.has_errors(), "{}", r.render());
        assert_eq!(r.arrays[0].verdict, Verdict::Proven, "{}", r.render());
        assert!(r.verified_mask()[0], "{}", r.render());
        assert_eq!(r.eq_lines.len(), 2);
    }

    /// Windowed arrays report proven but never elide their tags.
    #[test]
    fn windowed_array_keeps_runtime_tags() {
        let eq = EqTape {
            label: "eq.1".into(),
            n_f: 1,
            n_i: 1,
            n_b: 0,
            entry_f: vec![0],
            entry_b: vec![],
            ivals: vec![IVal::Counter],
            steps: vec![],
            store: Some(StoreSpec {
                array: 0,
                dims: vec![ADim {
                    base: 0,
                    terms: vec![(0, 1)],
                }],
            }),
            result: Reg::F(0),
        };
        let mut a = arr("a", vec![(Affine::constant(1), param("n"))]);
        a.windowed = true;
        a.elidable = false;
        let p = AProgram {
            arrays: vec![a],
            eqs: vec![eq],
            schedule: vec![Node::Loop {
                parallel: false,
                name: "K".into(),
                lo: Affine::constant(1),
                hi: param("n"),
                bindings: vec![(0, 0)],
                body: vec![Node::Eq(0)],
            }],
        };
        let r = analyze(&p);
        assert!(!r.has_errors(), "{}", r.render());
        assert_eq!(r.arrays[0].verdict, Verdict::Proven);
        assert!(!r.verified_mask()[0]);
    }

    /// A dynamic subscript downgrades to RuntimeChecks — never an error.
    #[test]
    fn dynamic_subscript_needs_runtime_checks() {
        // out[I] = xs[ks[I]]: the xs load address flows through a loaded
        // integer register with unknown interval.
        let eq = EqTape {
            label: "eq.1".into(),
            n_f: 1,
            n_i: 2,
            n_b: 0,
            entry_f: vec![],
            entry_b: vec![],
            ivals: vec![IVal::Counter, IVal::Temp],
            steps: vec![
                Step::Load {
                    array: 2,
                    addr: vec![ADim {
                        base: 0,
                        terms: vec![(0, 1)],
                    }],
                    def: Reg::I(1),
                },
                Step::Load {
                    array: 1,
                    addr: vec![ADim {
                        base: 0,
                        terms: vec![(1, 1)],
                    }],
                    def: Reg::F(0),
                },
            ],
            store: Some(StoreSpec {
                array: 0,
                dims: vec![ADim {
                    base: 0,
                    terms: vec![(0, 1)],
                }],
            }),
            result: Reg::F(0),
        };
        let bounds = || (Affine::constant(1), param("n"));
        let mut xs = arr("xs", vec![bounds()]);
        xs.input = true;
        let mut ks = arr("ks", vec![bounds()]);
        ks.input = true;
        let p = AProgram {
            arrays: vec![arr("out", vec![bounds()]), xs, ks],
            eqs: vec![eq],
            schedule: vec![Node::Loop {
                parallel: true,
                name: "I".into(),
                lo: Affine::constant(1),
                hi: param("n"),
                bindings: vec![(0, 0)],
                body: vec![Node::Eq(0)],
            }],
        };
        let r = analyze(&p);
        assert!(!r.has_errors(), "{}", r.render());
        // The gathered-from array cannot be proven...
        assert_eq!(r.arrays[1].verdict, Verdict::RuntimeChecks);
        // ...but the written array still verifies and elides.
        assert_eq!(r.arrays[0].verdict, Verdict::Proven);
        assert!(r.verified_mask()[0]);
        assert!(r.verified_mask()[2], "ks reads are affine and proven");
    }
}
