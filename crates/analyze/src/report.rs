//! Analysis results: per-array verdicts, region lines, diagnostics.

use ps_support::diag::{Diagnostic, Severity};
use std::fmt;

/// Safety verdict for an access, an array, or a region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Proven safe for every admissible parameter vector.
    Proven,
    /// Not decidable statically (dynamic subscripts, incomparable affine
    /// bounds) — the runtime's checked mode remains responsible.
    RuntimeChecks,
    /// Provably violated: surfaced as an error diagnostic.
    Rejected,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Proven => write!(f, "proven"),
            Verdict::RuntimeChecks => write!(f, "needs runtime checks"),
            Verdict::Rejected => write!(f, "REJECTED"),
        }
    }
}

/// Summary verdict for one array.
#[derive(Clone, Debug)]
pub struct ArrayReport {
    pub name: String,
    pub verdict: Verdict,
    /// All writes proven in-bounds, injective and cross-equation disjoint,
    /// all reads proven in-bounds, and producer policy allows elision —
    /// the runtime may skip this array's checked-writes tags.
    pub verified: bool,
    pub detail: String,
}

/// The full result of one [`crate::analyze`] run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub diags: Vec<Diagnostic>,
    /// One human-readable line per analyzed equation occurrence.
    pub eq_lines: Vec<String>,
    /// One entry per [`crate::AProgram`] array, same order.
    pub arrays: Vec<ArrayReport>,
}

impl Report {
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Per-array elision mask, index-aligned with `AProgram::arrays`.
    pub fn verified_mask(&self) -> Vec<bool> {
        self.arrays.iter().map(|a| a.verified).collect()
    }

    /// Render the whole report (region lines, array verdicts, diagnostics)
    /// without needing a source map — analysis diagnostics are spanless.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.eq_lines {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        for a in &self.arrays {
            let elide = if a.verified {
                " [checked-writes elided]"
            } else {
                ""
            };
            out.push_str(&format!(
                "  array {}: {}{} — {}\n",
                a.name, a.verdict, elide, a.detail
            ));
        }
        for d in &self.diags {
            out.push_str(&format!("  {}[{}]: {}\n", d.severity, d.code, d.message));
            for (note, _) in &d.notes {
                out.push_str(&format!("    = note: {note}\n"));
            }
        }
        out
    }
}
