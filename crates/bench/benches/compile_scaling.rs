//! Perf D: scheduler throughput on synthetic equation chains, plus the
//! loop-fusion ablation.
//!
//! Expected shape: scheduling scales roughly linearly in the number of
//! equations; fusion collapses the N independent DOALL nests into one.

use ps_bench::{synthetic_chain, Harness};
use ps_core::{compile, CompileOptions};
use std::hint::black_box;

fn main() {
    let mut g = Harness::new("compile_scaling");
    for &n in &[8usize, 32, 128] {
        let src = synthetic_chain(n);
        // Sanity: it compiles, and fusion collapses the chain.
        let plain = compile(&src, CompileOptions::default()).unwrap();
        let mut fuse_opts = CompileOptions::default();
        fuse_opts.schedule.fuse_loops = true;
        let fused = compile(&src, fuse_opts).unwrap();
        let (_, plain_doall) = plain.schedule.flowchart.loop_counts();
        let (_, fused_doall) = fused.schedule.flowchart.loop_counts();
        assert_eq!(plain_doall, n);
        assert_eq!(fused_doall, 1, "fusion merges the whole chain");

        g.bench(&format!("compile/{n}"), || {
            compile(black_box(&src), CompileOptions::default()).unwrap()
        });
        g.bench(&format!("compile_fused/{n}"), || {
            let mut opts = CompileOptions::default();
            opts.schedule.fuse_loops = true;
            compile(black_box(&src), opts).unwrap()
        });
    }
    g.finish();
}
