//! Perf C (runtime overhead): per-region dispatch latency of the executor.
//!
//! The paper's speedups live in DOALL regions whose iterations are cheap
//! (a handful of flops), so the time to *launch* a parallel region — wake
//! workers, publish the closure, detect completion — bounds how small a
//! region can profitably go parallel. This bench times batches of back-to-
//! back regions at sizes 1, 4 and 64 iterations with a near-empty body, so
//! the measurement is almost pure dispatch cost.
//!
//! Throughput is declared in *regions*, so the JSON/stdout `Melem/s` figure
//! is regions per second and `median / REGIONS` is the per-region latency.
//!
//! Expected shape: `Sequential` and `par1` (zero workers, inline) set the
//! floor; the work-stealing pool keeps `par2`..`par8` within a small
//! multiple of it instead of the per-worker-channel-send multiple.
//!
//! The `parN_concurrent` rows split the same region count across two
//! submitter threads sharing one pool: each publishes on its own lane, so
//! their regions are in flight simultaneously. Against a pool that admits
//! only one live region (the pre-work-stealing design), this shape
//! serializes on the submit lock and costs *more* than the single-threaded
//! row; with per-lane publication it must come out cheaper.

use ps_bench::Harness;
use ps_core::{Executor, Sequential, ThreadPool};
use std::sync::atomic::{AtomicI64, Ordering};

/// Split `REGIONS` regions of `size` iterations across `submitters`
/// concurrent threads sharing `pool`; returns the combined checksum.
fn concurrent_burst(pool: &ThreadPool, size: i64, submitters: usize) -> i64 {
    let total = AtomicI64::new(0);
    std::thread::scope(|s| {
        for _ in 0..submitters {
            s.spawn(|| {
                let sink = AtomicI64::new(0);
                for _ in 0..REGIONS / submitters {
                    pool.for_range(0, size - 1, &|i| {
                        sink.fetch_add(i + 1, Ordering::Relaxed);
                    });
                }
                total.fetch_add(sink.load(Ordering::Relaxed), Ordering::Relaxed);
            });
        }
    });
    total.load(Ordering::Relaxed)
}

/// Regions per timed call: enough to amortise `Instant` resolution while
/// keeping one sample well under a millisecond at the expected latencies.
const REGIONS: usize = 256;

/// Drive `REGIONS` regions of `size` iterations and return the checksum.
fn dispatch_burst(ex: &dyn Executor, size: i64) -> i64 {
    let sink = AtomicI64::new(0);
    for _ in 0..REGIONS {
        ex.for_range(0, size - 1, &|i| {
            sink.fetch_add(i + 1, Ordering::Relaxed);
        });
    }
    sink.load(Ordering::Relaxed)
}

fn main() {
    let mut g = Harness::new("exec_dispatch");
    let pools: Vec<(String, Box<dyn Executor>)> = vec![
        ("seq".into(), Box::new(Sequential)),
        ("par1".into(), Box::new(ThreadPool::new(1))),
        ("par2".into(), Box::new(ThreadPool::new(2))),
        ("par4".into(), Box::new(ThreadPool::new(4))),
    ];
    for &size in &[1i64, 4, 64] {
        // Every iteration of every region must run exactly once — checked
        // inside the benched closure, so every warmup and timed sample is
        // validated (an intermittent loss cannot hide behind a clean rerun).
        let expected = REGIONS as i64 * (size * (size + 1) / 2);
        for (name, ex) in &pools {
            g.bench_with_elements(&format!("{name}/m{size}"), REGIONS as u64, || {
                let got = dispatch_burst(ex.as_ref(), size);
                assert_eq!(got, expected, "{name}/m{size} lost iterations");
            });
        }
    }
    // Multi-submitter rows: the same total region count, two racing
    // submitter lanes (thread spawn cost is part of the shape and is
    // identical across pool widths, so the rows stay comparable).
    for &threads in &[2usize, 4] {
        let pool = ThreadPool::new(threads);
        for &size in &[4i64, 64] {
            let expected = REGIONS as i64 * (size * (size + 1) / 2);
            g.bench_with_elements(
                &format!("par{threads}_concurrent/m{size}"),
                REGIONS as u64,
                || {
                    let got = concurrent_burst(&pool, size, 2);
                    assert_eq!(
                        got, expected,
                        "par{threads}_concurrent/m{size} lost iterations"
                    );
                },
            );
        }
    }
    g.finish();
}
