//! Perf D (PR 3): per-iteration evaluation cost of the two engines.
//!
//! PR 2 made region dispatch nearly free, so a DOALL iteration's cost is
//! now the equation body itself. This bench times the same workloads under
//! `Engine::TreeWalk` (recursive `HExpr` walk, tagged values, environment
//! scans) and `Engine::Compiled` (typed register tape, strength-reduced
//! subscripts) on the sequential executor, so the difference is pure
//! per-iteration evaluation cost:
//!
//! * `jacobi/*` — Relaxation v1's guarded five-point stencil body
//!   (Figure 6), the paper's flagship DOALL loop;
//! * `wavefront/*` — the transformed Gauss–Seidel body (Section 4), whose
//!   general affine subscripts (`K' - 2I' - J'`-style) are exactly the
//!   addressing the strength reduction targets.
//!
//! Throughput is in grid cells. In smoke mode both engines run once and
//! the outputs are asserted identical, so the bench doubles as a
//! cross-engine regression test.

use ps_bench::{compile_v1, compile_v2, relaxation_inputs, Harness};
use ps_core::{
    compile, execute, execute_transformed, programs, AnalysisLevel, CompileOptions, Engine, Inputs,
    OwnedArray, Program, RuntimeOptions, Sequential, StorageMode,
};

fn opts(engine: Engine) -> RuntimeOptions {
    RuntimeOptions {
        engine,
        ..Default::default()
    }
}

const ENGINES: [(&str, Engine); 2] = [
    ("compiled", Engine::Compiled),
    ("treewalk", Engine::TreeWalk),
];

fn main() {
    let mut g = Harness::new("exec_eval");

    let v1 = compile_v1();
    for &m in &[32i64, 64] {
        let maxk = 8i64;
        let inputs = relaxation_inputs(m, maxk);
        let cells = ((m + 2) * (m + 2) * maxk) as u64;
        let baseline = execute(&v1, &inputs, &Sequential, opts(Engine::TreeWalk)).unwrap();
        for (name, engine) in ENGINES {
            g.bench_with_elements(&format!("jacobi/{name}/{m}"), cells, || {
                let out = execute(&v1, &inputs, &Sequential, opts(engine)).unwrap();
                assert_eq!(
                    out.array("newA").max_abs_diff(baseline.array("newA")),
                    0.0,
                    "engines must agree bitwise"
                );
                out
            });
        }
    }

    let v2 = compile_v2(Some(StorageMode::Windowed));
    for &m in &[48i64] {
        let maxk = 8i64;
        let inputs = relaxation_inputs(m, maxk);
        let cells = ((m + 2) * (m + 2) * maxk) as u64;
        let baseline =
            execute_transformed(&v2, &inputs, &Sequential, opts(Engine::TreeWalk)).unwrap();
        for (name, engine) in ENGINES {
            g.bench_with_elements(&format!("wavefront/{name}/{m}"), cells, || {
                let out = execute_transformed(&v2, &inputs, &Sequential, opts(engine)).unwrap();
                assert_eq!(
                    out.array("newA").max_abs_diff(baseline.array("newA")),
                    0.0,
                    "engines must agree bitwise"
                );
                out
            });
        }
    }

    // Perf F (PR 6): checked-writes cost, with and without static
    // elision. Every array of the pipeline program proves safe, so
    // `AnalysisLevel::Verify` drops all tag allocations and per-write
    // tag swaps; the residual gap to the unchecked row is what the
    // verifier cannot remove (instantiation, output copies).
    let pipe = compile(programs::PIPELINE, CompileOptions::default()).unwrap();
    let n = 16384i64;
    let xs: Vec<f64> = (0..n).map(|i| ((i % 97) as f64) * 0.25 - 12.0).collect();
    let inputs = Inputs::new()
        .set_int("n", n)
        .set_array("xs", OwnedArray::real(vec![(1, n)], xs));
    let rows: [(&str, bool, AnalysisLevel); 3] = [
        ("unchecked", false, AnalysisLevel::Off),
        ("checked", true, AnalysisLevel::Off),
        ("checked_elide", true, AnalysisLevel::Verify),
    ];
    let baseline = {
        let prog = Program::compile(&pipe, RuntimeOptions::default());
        prog.run(&inputs, &Sequential).unwrap()
    };
    for (name, check_writes, analysis) in rows {
        let prog = Program::compile(
            &pipe,
            RuntimeOptions {
                check_writes,
                analysis,
                ..Default::default()
            },
        );
        if analysis == AnalysisLevel::Verify {
            assert!(prog.verified_arrays() > 0, "pipeline arrays must elide");
        }
        g.bench_with_elements(&format!("pipeline/{name}/{n}"), n as u64, || {
            let out = prog.run(&inputs, &Sequential).unwrap();
            assert_eq!(
                out.array("out").max_abs_diff(baseline.array("out")),
                0.0,
                "checked modes must agree bitwise"
            );
            out
        });
    }

    g.finish();
}
