//! Perf A (implied by the paper): DOALL concurrency — Jacobi relaxation,
//! sequential vs thread pools, across grid sizes.
//!
//! Expected shape: near-linear speedup of the DOALL-parallel inner loops
//! for grids large enough to amortize pool overhead.

use ps_bench::{compile_v1, relaxation_inputs, Harness};
use ps_core::{execute, RuntimeOptions, Sequential, ThreadPool};

fn main() {
    let comp = compile_v1();
    let maxk = 8i64;

    let mut g = Harness::new("exec_jacobi");
    for &m in &[64i64, 128] {
        let inputs = relaxation_inputs(m, maxk);
        let cells = ((m + 2) * (m + 2) * maxk) as u64;
        g.bench_with_elements(&format!("seq/{m}"), cells, || {
            execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap()
        });
        for threads in [2usize, 4, 8] {
            let pool = ThreadPool::new(threads);
            g.bench_with_elements(&format!("par{threads}/{m}"), cells, || {
                execute(&comp, &inputs, &pool, RuntimeOptions::default()).unwrap()
            });
        }
    }
    g.finish();
}
