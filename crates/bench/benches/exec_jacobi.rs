//! Perf A (implied by the paper): DOALL concurrency — Jacobi relaxation,
//! sequential vs thread pools, across grid sizes.
//!
//! Expected shape: near-linear speedup of the DOALL-parallel inner loops
//! for grids large enough to amortize pool overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ps_bench::{compile_v1, relaxation_inputs};
use ps_core::{execute, Executor, RuntimeOptions, Sequential, ThreadPool};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let comp = compile_v1();
    let maxk = 8i64;

    let mut g = c.benchmark_group("exec_jacobi");
    g.measurement_time(Duration::from_secs(4)).sample_size(10);
    for &m in &[64i64, 128] {
        let inputs = relaxation_inputs(m, maxk);
        let cells = ((m + 2) * (m + 2) * maxk) as u64;
        g.throughput(Throughput::Elements(cells));
        g.bench_with_input(BenchmarkId::new("seq", m), &m, |b, _| {
            b.iter(|| {
                execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap()
            })
        });
        for threads in [2usize, 4, 8] {
            let pool = ThreadPool::new(threads);
            g.bench_with_input(
                BenchmarkId::new(format!("par{threads}"), m),
                &m,
                |b, _| {
                    b.iter(|| {
                        execute(&comp, &inputs, &pool, RuntimeOptions::default()).unwrap()
                    })
                },
            );
            let _ = pool.threads();
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
