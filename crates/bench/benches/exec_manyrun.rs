//! Perf E (PR 4): amortized per-run latency of the compile-once /
//! run-many path.
//!
//! The serving shape the ROADMAP's north star implies — many small solves
//! against one compiled module — used to pay full compilation on every
//! call: `run_module` re-laid the store and re-lowered every tape,
//! folding the live parameter values in. `Program` splits that: lowering
//! happens once, each parameter layout is specialized once (then cached),
//! and run state (frames, buffers, slot tables) is pooled.
//!
//! Two workloads, each at small problem sizes M ∈ {4, 8, 16} so the gap
//! *is* the per-call overhead the split removes:
//!
//! * `chain/*` — an 18-equation pointwise pipeline over length-M arrays
//!   (`ps_bench::synthetic_chain(16)`): the many-equations / small-data
//!   shape where compilation dominates a solve. `M` is the array length
//!   `n`.
//! * `jacobi/*` — Relaxation v1 on an (M+2)² grid, 6 planes: few
//!   equations, more compute per solve, so the amortization margin is
//!   structurally smaller.
//!
//! Variants: `percall` (today's baseline — `execute` per call: store
//! build + tape lowering + validation + run) vs `program`
//! (`Program::run` on a pre-built artifact; the first run, which builds
//! the address specialization, happens before timing).
//!
//! Each variant is asserted bit-identical to a tree-walk baseline — in
//! smoke mode inside the (single-run) closures, in full timing mode
//! outside them so verification never inflates the measured latencies.

use ps_bench::{compile_v1, relaxation_inputs, synthetic_chain, Harness};
use ps_core::{
    compile, execute, CompileOptions, Engine, Inputs, OwnedArray, Program, RuntimeOptions,
    Sequential,
};

fn opts(engine: Engine) -> RuntimeOptions {
    RuntimeOptions {
        engine,
        ..Default::default()
    }
}

fn main() {
    let mut g = Harness::new("exec_manyrun");

    // Many equations, tiny data: the compile-overhead-dominated shape.
    let chain = compile(&synthetic_chain(16), CompileOptions::default()).expect("chain compiles");
    for &m in &[4i64, 8, 16] {
        let xs: Vec<f64> = (0..m).map(|i| (i % 7) as f64 * 0.5 - 1.0).collect();
        let inputs = Inputs::new()
            .set_int("n", m)
            .set_array("xs", OwnedArray::real(vec![(1, m)], xs));
        let baseline = execute(&chain, &inputs, &Sequential, opts(Engine::TreeWalk)).unwrap();
        let elems = (18 * m) as u64;

        // Verification stays outside the timed closures (smoke mode runs
        // each closure exactly once, so it still checks every variant).
        let verify = |out: &ps_core::Outputs, label: &str| {
            assert_eq!(
                out.scalar("y").as_real().to_bits(),
                baseline.scalar("y").as_real().to_bits(),
                "{label} must agree bitwise with the tree-walk baseline"
            );
        };
        let full = g.is_full();
        verify(
            &execute(&chain, &inputs, &Sequential, opts(Engine::Compiled)).unwrap(),
            "per-call",
        );
        g.bench_with_elements(&format!("chain/percall/m{m}"), elems, || {
            let out = execute(&chain, &inputs, &Sequential, opts(Engine::Compiled)).unwrap();
            if !full {
                verify(&out, "per-call");
            }
            out
        });

        let prog = Program::compile(&chain, opts(Engine::Compiled));
        prog.run(&inputs, &Sequential).unwrap(); // specialize + fill pools
        verify(&prog.run(&inputs, &Sequential).unwrap(), "pooled run");
        g.bench_with_elements(&format!("chain/program/m{m}"), elems, || {
            let out = prog.run(&inputs, &Sequential).unwrap();
            if !full {
                verify(&out, "pooled run");
            }
            out
        });
        assert_eq!(
            prog.specialization_count(),
            1,
            "steady-state serving never re-specializes"
        );
    }

    // Few equations, real stencil compute: the margin is smaller because
    // the solve itself dominates even at small M.
    let jacobi = compile_v1();
    for &m in &[4i64, 8, 16] {
        let maxk = 6i64;
        let inputs = relaxation_inputs(m, maxk);
        let cells = ((m + 2) * (m + 2) * maxk) as u64;
        let baseline = execute(&jacobi, &inputs, &Sequential, opts(Engine::TreeWalk)).unwrap();

        let verify = |out: &ps_core::Outputs, label: &str| {
            assert_eq!(
                out.array("newA").max_abs_diff(baseline.array("newA")),
                0.0,
                "{label} must agree bitwise with the tree-walk baseline"
            );
        };
        let full = g.is_full();
        verify(
            &execute(&jacobi, &inputs, &Sequential, opts(Engine::Compiled)).unwrap(),
            "per-call",
        );
        g.bench_with_elements(&format!("jacobi/percall/m{m}"), cells, || {
            let out = execute(&jacobi, &inputs, &Sequential, opts(Engine::Compiled)).unwrap();
            if !full {
                verify(&out, "per-call");
            }
            out
        });

        let prog = Program::compile(&jacobi, opts(Engine::Compiled));
        prog.run(&inputs, &Sequential).unwrap();
        verify(&prog.run(&inputs, &Sequential).unwrap(), "pooled run");
        g.bench_with_elements(&format!("jacobi/program/m{m}"), cells, || {
            let out = prog.run(&inputs, &Sequential).unwrap();
            if !full {
                verify(&out, "pooled run");
            }
            out
        });
        assert_eq!(prog.specialization_count(), 1);
    }

    g.finish();
}
