//! Perf F (PR 5): end-to-end solve-service throughput.
//!
//! The ROADMAP's north star is "serve heavy traffic": this bench measures
//! requests/sec through the full `ps-service` stack — queue, registry,
//! micro-batching, pooled run-slot sessions — on the chain workload of
//! `exec_manyrun` (18 equations over a length-8 array: the
//! compile-overhead-dominated shape a solve service amortizes).
//!
//! Variants:
//!
//! * `chain/percall_compile_run` — the baseline a caller without the
//!   service must hand-roll: compile the source *and* run it, per request.
//! * `chain/serve_warm/w{1,2,4}` — a burst of requests through a service
//!   with a warm registry at 1/2/4 worker threads (one artifact, zero
//!   compiles in the timed region).
//! * `chain/serve_cold` — a fresh service per call: spawn workers, compile
//!   into the registry, one solve, drain — the worst-case first request.
//!
//! Full mode asserts the acceptance bar: warm-registry requests/sec beat
//! per-call compile+run by ≥ 3×. (On the 1-CPU CI box extra workers
//! measure dispatch overhead, not scaling.)

use ps_bench::{synthetic_chain, Harness};
use ps_core::{
    compile, execute, CompileOptions, Inputs, OwnedArray, RuntimeOptions, Sequential, Service,
    ServiceOptions, SolveRequest,
};

/// Requests per timed closure call (the burst the throughput figures are
/// normalized by, via `bench_with_elements`).
const BURST: u64 = 32;

fn main() {
    let mut g = Harness::new("exec_serve");
    let source = synthetic_chain(16);
    let m = 8i64;
    let xs: Vec<f64> = (0..m).map(|i| (i % 7) as f64 * 0.5 - 1.0).collect();
    let inputs = Inputs::new()
        .set_int("n", m)
        .set_array("xs", OwnedArray::real(vec![(1, m)], xs));

    // The reference answer every variant must reproduce bitwise.
    let reference = {
        let comp = compile(&source, CompileOptions::default()).expect("chain compiles");
        execute(&comp, &inputs, &Sequential, RuntimeOptions::default())
            .unwrap()
            .scalar("y")
            .as_real()
            .to_bits()
    };
    let verify = |bits: u64, label: &str| {
        assert_eq!(
            bits, reference,
            "{label} must agree bitwise with the baseline"
        );
    };

    // Baseline: compile + run per request (what hand-rolled callers pay).
    let percall = g.bench_with_elements("chain/percall_compile_run/m8", BURST, || {
        let mut last = 0u64;
        for _ in 0..BURST {
            let comp = compile(&source, CompileOptions::default()).expect("chain compiles");
            let out = execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
            last = out.scalar("y").as_real().to_bits();
        }
        verify(last, "per-call compile+run");
        last
    });

    // Warm service: the registry holds the compiled artifact; a burst of
    // requests rides the queue, batching, and pooled sessions.
    let mut warm_medians = Vec::new();
    for &workers in &[1usize, 2, 4] {
        let service = Service::new(ServiceOptions {
            workers,
            ..Default::default()
        });
        let key = service
            .register(&source)
            .expect("service compiles the chain");
        // Warm the registry, the spec cache, and the slot pool.
        verify(
            service
                .solve(&key, inputs.clone())
                .unwrap()
                .scalar("y")
                .as_real()
                .to_bits(),
            "warm-up solve",
        );
        let summary =
            g.bench_with_elements(&format!("chain/serve_warm/w{workers}/m8"), BURST, || {
                let handles: Vec<_> = (0..BURST)
                    .map(|_| service.submit(SolveRequest::new(key.clone(), inputs.clone())))
                    .collect();
                let mut last = 0u64;
                for h in handles {
                    last = h.wait().unwrap().scalar("y").as_real().to_bits();
                }
                verify(last, "warm service burst");
                last
            });
        let stats = service.stats();
        assert!(
            stats.cache_hits > stats.compiles,
            "warm path must hit the registry (hits {}, compiles {})",
            stats.cache_hits,
            stats.compiles
        );
        if let Some(s) = summary {
            warm_medians.push((workers, s.median));
        }
    }

    // Cold service: worker spawn + first compile + first solve.
    g.bench("chain/serve_cold", || {
        let service = Service::new(ServiceOptions {
            workers: 1,
            ..Default::default()
        });
        let key = service
            .register(&source)
            .expect("service compiles the chain");
        let out = service.solve(&key, inputs.clone()).unwrap();
        verify(out.scalar("y").as_real().to_bits(), "cold service solve");
        out
    });

    // Acceptance bar (full mode only; smoke runs once, untimed): the warm
    // service beats per-call compile+run by ≥ 3× on requests/sec.
    if let Some(percall) = percall {
        for (workers, warm) in &warm_medians {
            let speedup = percall.median.as_secs_f64() / warm.as_secs_f64().max(1e-12);
            println!(
                "  warm w{workers}: {speedup:.1}x over per-call compile+run \
                 ({:.1} vs {:.1} us/request)",
                warm.as_secs_f64() * 1e6 / BURST as f64,
                percall.median.as_secs_f64() * 1e6 / BURST as f64,
            );
            assert!(
                speedup >= 3.0,
                "warm registry must beat per-call compile+run 3x, got {speedup:.2}x at \
                 {workers} workers"
            );
        }
    }

    g.finish();
}
