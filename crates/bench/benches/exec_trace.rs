//! Perf H (PR 10): the tracing layer's overhead contract.
//!
//! ps-trace instrumentation is compiled into release builds and stays in
//! the hot path forever, so its *disabled* cost is a standing tax on every
//! request. This bench prices that tax and asserts the acceptance bar:
//! a generously over-counted 64 instrumentation sites per request must
//! cost ≤ 2% of a warm-service request with tracing off.
//!
//! Variants:
//!
//! * `trace/emit_off` — one instrumentation site, tracing disabled (the
//!   single relaxed load every site pays in production).
//! * `trace/emit_on` — the same site with tracing enabled (ring write +
//!   monotonic clock read), for the record.
//! * `trace/serve_off` — the `exec_serve` warm-service burst with tracing
//!   disabled: the denominator of the overhead budget.
//! * `trace/serve_on` — the same burst fully traced (rings + per-stage
//!   histograms + span minting), to keep the enabled cost honest too.
//!
//! Full mode asserts `64 × emit_off ≤ 2% × (serve_off / request)`.

use ps_bench::{synthetic_chain, Harness};
use ps_core::ps_trace::{self, EvKind, Phase, Stage};
use ps_core::{Inputs, OwnedArray, Service, ServiceOptions, SolveRequest};

/// Emits per timed closure call (normalized out via elements).
const EMITS: u64 = 1024;
/// Requests per warm-service burst (mirrors `exec_serve`).
const BURST: u64 = 32;
/// Instrumentation sites charged against one request — a deliberate
/// over-count (a real request crosses ~15 sites; see the payload table in
/// `ps-trace`'s event module).
const SITES_PER_REQUEST: f64 = 64.0;
/// Disabled-tracing overhead budget as a fraction of a warm request.
const BUDGET: f64 = 0.02;

fn emit_burst() {
    for i in 0..EMITS {
        ps_trace::emit(EvKind::Steal, Phase::Instant, i, i, i);
        std::hint::black_box(i);
    }
}

fn serve_burst(service: &Service, key: &ps_core::ProgramKey, inputs: &Inputs) -> u64 {
    let handles: Vec<_> = (0..BURST)
        .map(|_| service.submit(SolveRequest::new(key.clone(), inputs.clone())))
        .collect();
    let mut last = 0u64;
    for h in handles {
        last = h.wait().unwrap().scalar("y").as_real().to_bits();
    }
    last
}

fn warm_service(source: &str, inputs: &Inputs) -> (Service, ps_core::ProgramKey) {
    let service = Service::new(ServiceOptions {
        workers: 2,
        ..Default::default()
    });
    let key = service.register(source).expect("chain compiles");
    // Warm the registry, spec cache, and slot pool out of the timed region.
    service.solve(&key, inputs.clone()).expect("warm-up solve");
    (service, key)
}

fn main() {
    let mut g = Harness::new("exec_trace");
    assert!(
        !ps_trace::enabled(),
        "bench must start with tracing disabled"
    );

    // The production-path cost: one relaxed load per site.
    let emit_off = g.bench_with_elements("emit_off", EMITS, emit_burst);

    // The enabled cost: clock read + five relaxed stores + head bump.
    ps_trace::enable();
    emit_burst(); // first emit on this thread allocates its ring
    g.bench_with_elements("emit_on", EMITS, emit_burst);
    ps_trace::disable();

    let source = synthetic_chain(16);
    let m = 8i64;
    let xs: Vec<f64> = (0..m).map(|i| (i % 7) as f64 * 0.5 - 1.0).collect();
    let inputs = Inputs::new()
        .set_int("n", m)
        .set_array("xs", OwnedArray::real(vec![(1, m)], xs));

    // Denominator: warm service burst, tracing off.
    let (service_off, key_off) = warm_service(&source, &inputs);
    let serve_off = g.bench_with_elements("serve_off", BURST, || {
        serve_burst(&service_off, &key_off, &inputs)
    });
    let reference = serve_burst(&service_off, &key_off, &inputs);
    service_off.shutdown();

    // Fully traced burst: rings, span minting, per-stage histograms.
    ps_trace::enable();
    let (service_on, key_on) = warm_service(&source, &inputs);
    let serve_on = g.bench_with_elements("serve_on", BURST, || {
        serve_burst(&service_on, &key_on, &inputs)
    });
    assert_eq!(
        serve_burst(&service_on, &key_on, &inputs),
        reference,
        "tracing must not change results"
    );
    // The traced service really recorded its lifecycle: one solve sample
    // per response, spans minted, rings populated.
    let stats = service_on.stats();
    assert_eq!(
        stats.stages.get(Stage::Solve).count,
        stats.responses,
        "per-stage histograms reconcile with the response counter"
    );
    assert!(
        ps_trace::snapshot().iter().any(|t| !t.events.is_empty()),
        "traced bursts leave events in the rings"
    );
    service_on.shutdown();
    ps_trace::disable();

    // Acceptance bar (full mode only): 64 disabled sites ≤ 2% of a warm
    // request. Also report the honest enabled-path ratio.
    if let (Some(emit_off), Some(serve_off)) = (emit_off, serve_off) {
        let per_emit_off = emit_off.median.as_secs_f64() / EMITS as f64;
        let per_request = serve_off.median.as_secs_f64() / BURST as f64;
        let overhead = SITES_PER_REQUEST * per_emit_off;
        println!(
            "  disabled overhead: {SITES_PER_REQUEST} sites x {:.2} ns = {:.1} ns \
             vs request {:.1} us ({:.3}% of budgeted {:.0}%)",
            per_emit_off * 1e9,
            overhead * 1e9,
            per_request * 1e6,
            overhead / per_request * 100.0,
            BUDGET * 100.0,
        );
        assert!(
            overhead <= BUDGET * per_request,
            "disabled tracing must cost <= {:.0}% of a warm request: \
             {SITES_PER_REQUEST} sites x {:.2} ns = {:.1} ns vs {:.1} ns budget",
            BUDGET * 100.0,
            per_emit_off * 1e9,
            overhead * 1e9,
            BUDGET * per_request * 1e9,
        );
        if let Some(serve_on) = serve_on {
            let ratio = serve_on.median.as_secs_f64() / serve_off.median.as_secs_f64().max(1e-12);
            println!("  enabled tracing serve ratio: {ratio:.3}x over disabled");
        }
    }

    g.finish();
}
