//! Perf B (implied by Section 4): the hyperplane transform turns the
//! serial Gauss–Seidel nest into a parallel wavefront.
//!
//! Series: sequential Gauss–Seidel (baseline), sequential wavefront
//! (transform overhead), parallel wavefront (the win). Expected shape:
//! sequential wavefront is slower than the baseline (rectangular sweep
//! overhead ≈ 2×); the parallel wavefront crosses over and wins as threads
//! grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps_bench::{compile_v2, relaxation_inputs};
use ps_core::{
    execute, execute_transformed, RuntimeOptions, Sequential, StorageMode, ThreadPool,
};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let comp = compile_v2(Some(StorageMode::Windowed));
    let (m, maxk) = (96i64, 12i64);
    let inputs = relaxation_inputs(m, maxk);

    let mut g = c.benchmark_group("exec_wavefront");
    g.measurement_time(Duration::from_secs(4)).sample_size(10);
    g.bench_function(BenchmarkId::new("gauss_seidel_seq", m), |b| {
        b.iter(|| execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap())
    });
    g.bench_function(BenchmarkId::new("wavefront_seq", m), |b| {
        b.iter(|| {
            execute_transformed(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap()
        })
    });
    for threads in [2usize, 4, 8] {
        let pool = ThreadPool::new(threads);
        g.bench_function(BenchmarkId::new(format!("wavefront_par{threads}"), m), |b| {
            b.iter(|| {
                execute_transformed(&comp, &inputs, &pool, RuntimeOptions::default()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
