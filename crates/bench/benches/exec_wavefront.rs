//! Perf B (implied by Section 4): the hyperplane transform turns the
//! serial Gauss–Seidel nest into a parallel wavefront.
//!
//! Series: sequential Gauss–Seidel (baseline), sequential wavefront
//! (transform overhead), parallel wavefront (the win). Expected shape:
//! sequential wavefront is slower than the baseline (rectangular sweep
//! overhead ≈ 2×); the parallel wavefront crosses over and wins as threads
//! grow.

use ps_bench::{compile_v2, relaxation_inputs, Harness};
use ps_core::{execute, execute_transformed, RuntimeOptions, Sequential, StorageMode, ThreadPool};

fn main() {
    let comp = compile_v2(Some(StorageMode::Windowed));
    let (m, maxk) = (96i64, 12i64);
    let inputs = relaxation_inputs(m, maxk);

    let mut g = Harness::new("exec_wavefront");
    g.bench(&format!("gauss_seidel_seq/{m}"), || {
        execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap()
    });
    g.bench(&format!("wavefront_seq/{m}"), || {
        execute_transformed(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap()
    });
    for threads in [2usize, 4, 8] {
        let pool = ThreadPool::new(threads);
        g.bench(&format!("wavefront_par{threads}/{m}"), || {
            execute_transformed(&comp, &inputs, &pool, RuntimeOptions::default()).unwrap()
        });
    }
    g.finish();
}
