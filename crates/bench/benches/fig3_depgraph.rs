//! Figure 3: dependency-graph construction for the Relaxation module.
//!
//! Asserts the paper's graph structure (8 nodes, 15 edges in our edge
//! taxonomy) and measures front-end + graph-construction throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ps_core::programs;
use ps_depgraph::build_depgraph;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let module = ps_lang::frontend(programs::RELAXATION_V1).unwrap();

    // Structural assertions (the "figure" itself).
    let dg = build_depgraph(&module);
    let s = ps_depgraph::stats::stats(&dg);
    assert_eq!((s.data_nodes, s.equation_nodes), (5, 3));
    assert_eq!((s.read_edges, s.def_edges, s.bound_edges), (8, 3, 4));

    let mut g = c.benchmark_group("fig3_depgraph");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    g.bench_function("frontend_relaxation", |b| {
        b.iter(|| ps_lang::frontend(black_box(programs::RELAXATION_V1)).unwrap())
    });
    g.bench_function("build_depgraph_relaxation", |b| {
        b.iter(|| build_depgraph(black_box(&module)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
