//! Figure 3: dependency-graph construction for the Relaxation module.
//!
//! Asserts the paper's graph structure (8 nodes, 15 edges in our edge
//! taxonomy) and measures front-end + graph-construction throughput.

use ps_bench::Harness;
use ps_core::programs;
use ps_depgraph::build_depgraph;
use std::hint::black_box;

fn main() {
    let module = ps_lang::frontend(programs::RELAXATION_V1).unwrap();

    // Structural assertions (the "figure" itself).
    let dg = build_depgraph(&module);
    let s = ps_depgraph::stats::stats(&dg);
    assert_eq!((s.data_nodes, s.equation_nodes), (5, 3));
    assert_eq!((s.read_edges, s.def_edges, s.bound_edges), (8, 3, 4));

    let mut g = Harness::new("fig3_depgraph");
    g.bench("frontend_relaxation", || {
        ps_lang::frontend(black_box(programs::RELAXATION_V1)).unwrap()
    });
    g.bench("build_depgraph_relaxation", || {
        build_depgraph(black_box(&module))
    });
    g.finish();
}
