//! Figure 5: MSCC decomposition of the Relaxation dependency graph.
//!
//! Asserts the 7-component structure and measures the Tarjan + ordered
//! condensation pass in isolation.

use ps_bench::Harness;
use ps_core::programs;
use ps_depgraph::build_depgraph;
use ps_graph::ordered_components_filtered;
use std::hint::black_box;

fn main() {
    let module = ps_lang::frontend(programs::RELAXATION_V1).unwrap();
    let dg = build_depgraph(&module);

    let sccs = ordered_components_filtered(&dg.graph, |_| true);
    assert_eq!(sccs.len(), 7, "Figure 5: seven components");
    assert_eq!(
        sccs.iter().filter(|(_, ns)| ns.len() > 1).count(),
        1,
        "one multi-node MSCC: {{A, eq.3}}"
    );

    let mut g = Harness::new("fig5_components");
    g.bench("mscc_decomposition", || {
        ordered_components_filtered(black_box(&dg.graph), |_| true)
    });
    g.finish();
}
