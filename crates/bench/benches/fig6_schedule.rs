//! Figure 6: scheduling the Jacobi Relaxation module.
//!
//! Asserts the exact flowchart and window, and measures Schedule-Graph /
//! Schedule-Component end to end.

use ps_bench::Harness;
use ps_core::programs;
use ps_depgraph::build_depgraph;
use ps_scheduler::{schedule_module, ScheduleOptions};
use std::hint::black_box;

fn main() {
    let module = ps_lang::frontend(programs::RELAXATION_V1).unwrap();
    let dg = build_depgraph(&module);

    let r = schedule_module(&module, &dg, ScheduleOptions::default()).unwrap();
    assert_eq!(
        r.flowchart.compact(&|e| module.equations[e].label.clone()),
        "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); DOALL I (DOALL J (eq.2))"
    );
    let a = module.data_by_name("A").unwrap();
    assert_eq!(r.memory.window(a, 0), Some(2));

    let mut g = Harness::new("fig6_schedule");
    g.bench("schedule_relaxation_v1", || {
        schedule_module(
            black_box(&module),
            black_box(&dg),
            ScheduleOptions::default(),
        )
        .unwrap()
    });
    g.finish();
}
