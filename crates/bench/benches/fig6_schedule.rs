//! Figure 6: scheduling the Jacobi Relaxation module.
//!
//! Asserts the exact flowchart and window, and measures Schedule-Graph /
//! Schedule-Component end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use ps_core::programs;
use ps_depgraph::build_depgraph;
use ps_scheduler::{schedule_module, ScheduleOptions};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let module = ps_lang::frontend(programs::RELAXATION_V1).unwrap();
    let dg = build_depgraph(&module);

    let r = schedule_module(&module, &dg, ScheduleOptions::default()).unwrap();
    assert_eq!(
        r.flowchart.compact(&|e| module.equations[e].label.clone()),
        "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); DOALL I (DOALL J (eq.2))"
    );
    let a = module.data_by_name("A").unwrap();
    assert_eq!(r.memory.window(a, 0), Some(2));

    let mut g = c.benchmark_group("fig6_schedule");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    g.bench_function("schedule_relaxation_v1", |b| {
        b.iter(|| {
            schedule_module(
                black_box(&module),
                black_box(&dg),
                ScheduleOptions::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
