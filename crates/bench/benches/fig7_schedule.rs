//! Figure 7: scheduling the revised (Gauss–Seidel) eq.3 — all loops
//! iterative — plus the PreferParallel pick-policy ablation.

use ps_bench::Harness;
use ps_core::programs;
use ps_depgraph::build_depgraph;
use ps_scheduler::{schedule_module, PickPolicy, ScheduleOptions};
use std::hint::black_box;

fn main() {
    let module = ps_lang::frontend(programs::RELAXATION_V2).unwrap();
    let dg = build_depgraph(&module);

    let r = schedule_module(&module, &dg, ScheduleOptions::default()).unwrap();
    assert_eq!(
        r.flowchart.compact(&|e| module.equations[e].label.clone()),
        "DOALL I (DOALL J (eq.1)); DO K (DO I (DO J (eq.3))); DOALL I (DOALL J (eq.2))"
    );

    // Ablation: PreferParallel cannot rescue v2 (every dimension of the
    // recursive component deletes edges), so the schedule is unchanged.
    let alt = schedule_module(
        &module,
        &dg,
        ScheduleOptions {
            pick: PickPolicy::PreferParallel,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(alt.flowchart.loop_counts(), r.flowchart.loop_counts());

    let mut g = Harness::new("fig7_schedule");
    g.bench("schedule_relaxation_v2", || {
        schedule_module(
            black_box(&module),
            black_box(&dg),
            ScheduleOptions::default(),
        )
        .unwrap()
    });
    g.finish();
}
