//! Section 4: the hyperplane derivation and transformation.
//!
//! Asserts π = (2,1,1), the paper's T, and window 3; measures the solver
//! and the full transform + reschedule.

use ps_bench::Harness;
use ps_core::programs;
use ps_hyperplane::{
    find_recursive_target, hyperplane_transform, schedule_transformed, solve_time_vector,
    StorageMode,
};
use ps_scheduler::ScheduleOptions;
use std::hint::black_box;

fn main() {
    let module = ps_lang::frontend(programs::RELAXATION_V2).unwrap();
    let target = find_recursive_target(&module).unwrap();

    let r = hyperplane_transform(&module, target, StorageMode::Windowed).unwrap();
    assert_eq!(r.pi, vec![2, 1, 1]);
    assert_eq!(r.t_mat.row(1), &[1, 0, 0]);
    assert_eq!(r.window, 3);

    let deps = r.dep_vectors.clone();
    let mut g = Harness::new("sec4_hyperplane");
    g.bench("solve_time_vector", || {
        solve_time_vector(black_box(&deps)).unwrap()
    });
    g.bench("transform_windowed", || {
        hyperplane_transform(black_box(&module), target, StorageMode::Windowed).unwrap()
    });
    g.bench("transform_and_schedule", || {
        let r = hyperplane_transform(black_box(&module), target, StorageMode::Windowed).unwrap();
        schedule_transformed(&r, ScheduleOptions::default()).unwrap()
    });
    g.finish();
}
