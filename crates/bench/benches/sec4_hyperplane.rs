//! Section 4: the hyperplane derivation and transformation.
//!
//! Asserts π = (2,1,1), the paper's T, and window 3; measures the solver
//! and the full transform + reschedule.

use criterion::{criterion_group, criterion_main, Criterion};
use ps_core::programs;
use ps_hyperplane::{
    find_recursive_target, hyperplane_transform, schedule_transformed, solve_time_vector,
    StorageMode,
};
use ps_scheduler::ScheduleOptions;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let module = ps_lang::frontend(programs::RELAXATION_V2).unwrap();
    let target = find_recursive_target(&module).unwrap();

    let r = hyperplane_transform(&module, target, StorageMode::Windowed).unwrap();
    assert_eq!(r.pi, vec![2, 1, 1]);
    assert_eq!(r.t_mat.row(1), &[1, 0, 0]);
    assert_eq!(r.window, 3);

    let deps = r.dep_vectors.clone();
    let mut g = c.benchmark_group("sec4_hyperplane");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    g.bench_function("solve_time_vector", |b| {
        b.iter(|| solve_time_vector(black_box(&deps)).unwrap())
    });
    g.bench_function("transform_windowed", |b| {
        b.iter(|| {
            hyperplane_transform(black_box(&module), target, StorageMode::Windowed).unwrap()
        })
    });
    g.bench_function("transform_and_schedule", |b| {
        b.iter(|| {
            let r =
                hyperplane_transform(black_box(&module), target, StorageMode::Windowed).unwrap();
            schedule_transformed(&r, ScheduleOptions::default()).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
