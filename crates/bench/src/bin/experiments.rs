//! Regenerate every figure of the paper plus the implied performance
//! experiments, in one run:
//!
//! ```sh
//! cargo run --release -p ps-bench --bin experiments
//! ```
//!
//! Sections mirror DESIGN.md §5 and feed EXPERIMENTS.md.

use ps_bench::{compile_v1, compile_v2, relaxation_inputs, synthetic_chain};
use ps_core::{
    compile, execute, execute_transformed, CompileOptions, Executor, RuntimeOptions, Sequential,
    StorageMode, ThreadPool,
};
use ps_support::{FxHashMap, Symbol};
use std::time::{Duration, Instant};

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn time_runs(mut f: impl FnMut(), reps: usize) -> Duration {
    // Warm up once, then report the best of `reps` (stable for short runs).
    f();
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

fn main() {
    println!("PS compiler reproduction — experiment suite");
    println!("paper: Gokhale, 'Exploiting Loop Level Parallelism in");
    println!("        Nonprocedural Dataflow Programs', ICPP 1987");

    // ---- Figure 1 ------------------------------------------------------
    header("Figure 1 — the Relaxation module (PS source, round-tripped)");
    let sink = ps_support::DiagnosticSink::new();
    let prog = ps_lang::parser::parse_program(
        &ps_lang::lexer::lex(ps_core::programs::RELAXATION_V1, &sink),
        &sink,
    );
    print!("{}", ps_lang::print::print_module(&prog.modules[0]));

    // ---- Figure 3 ------------------------------------------------------
    let v1 = compile_v1();
    header("Figure 3 — dependency graph for Relaxation");
    print!("{}", ps_core::report::figure3(&v1));

    // ---- Figure 5 ------------------------------------------------------
    header("Figure 5 — component graph and corresponding flowcharts");
    print!("{}", ps_core::report::figure5(&v1));

    // ---- Figure 6 ------------------------------------------------------
    header("Figure 6 — flowchart for Relaxation (v1, Jacobi)");
    print!("{}", ps_core::report::figure6or7(&v1));

    // ---- Figure 7 ------------------------------------------------------
    let v2 = compile_v2(Some(StorageMode::Windowed));
    header("Figure 7 — flowchart with revised eq.3 (v2, Gauss-Seidel)");
    print!("{}", ps_core::report::figure6or7(&v2));

    // ---- Section 4 -----------------------------------------------------
    header("Section 4 — hyperplane restructuring transformation");
    print!("{}", ps_core::report::section4(&v2));

    // ---- Perf A: DOALL scaling (Jacobi) --------------------------------
    header("Perf A — DOALL concurrency: Jacobi relaxation");
    let (m, maxk) = (192i64, 10i64);
    let inputs = relaxation_inputs(m, maxk);
    println!("grid {0}x{0}, {maxk} sweeps", m + 2);
    let t_seq = time_runs(
        || {
            execute(&v1, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
        },
        3,
    );
    println!("  threads=1 (Sequential): {t_seq:>10.2?}   speedup 1.00x");
    for threads in [2usize, 4, 8] {
        let pool = ThreadPool::new(threads);
        let t = time_runs(
            || {
                execute(&v1, &inputs, &pool, RuntimeOptions::default()).unwrap();
            },
            3,
        );
        println!(
            "  threads={threads}             : {t:>10.2?}   speedup {:.2}x",
            t_seq.as_secs_f64() / t.as_secs_f64()
        );
        let _ = pool.threads();
    }

    // ---- Perf B: wavefront vs Gauss-Seidel ------------------------------
    header("Perf B — hyperplane wavefront vs sequential Gauss-Seidel");
    let (m, maxk) = (192i64, 10i64);
    let inputs = relaxation_inputs(m, maxk);
    println!("grid {0}x{0}, {maxk} sweeps", m + 2);
    let t_gs = time_runs(
        || {
            execute(&v2, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
        },
        3,
    );
    println!("  Gauss-Seidel sequential DO K(DO I(DO J)) : {t_gs:>10.2?}   1.00x");
    let t_wseq = time_runs(
        || {
            execute_transformed(&v2, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
        },
        3,
    );
    println!(
        "  wavefront sequential                     : {t_wseq:>10.2?}   {:.2}x",
        t_gs.as_secs_f64() / t_wseq.as_secs_f64()
    );
    for threads in [2usize, 4, 8] {
        let pool = ThreadPool::new(threads);
        let t = time_runs(
            || {
                execute_transformed(&v2, &inputs, &pool, RuntimeOptions::default()).unwrap();
            },
            3,
        );
        println!(
            "  wavefront {threads} threads                      : {t:>10.2?}   {:.2}x",
            t_gs.as_secs_f64() / t.as_secs_f64()
        );
    }

    // ---- Perf C: memory ------------------------------------------------
    header("Perf C — storage: full vs window-2 vs transformed window-3");
    let mut params: FxHashMap<Symbol, i64> = FxHashMap::default();
    params.insert(Symbol::intern("M"), 192);
    params.insert(Symbol::intern("maxK"), 100);
    let a = v2.module.data_by_name("A").unwrap();
    let full = ps_scheduler::MemoryPlan::full_elements(&v2.module, a, &params).unwrap();
    let windowed = v2
        .schedule
        .memory
        .alloc_elements(&v2.module, a, &params)
        .unwrap();
    let art = v2.transformed.as_ref().unwrap();
    let wave = art
        .schedule
        .memory
        .alloc_elements(&art.result.module, art.result.new_array, &params)
        .unwrap();
    println!("M = 192, maxK = 100, 8-byte reals:");
    println!(
        "  full maxK x (M+2)^2     : {full:>12} elements = {:>8.1} MiB",
        full as f64 * 8.0 / (1 << 20) as f64
    );
    println!(
        "  window-2 (Sec. 3.4)     : {windowed:>12} elements = {:>8.1} MiB  ({:.1}x smaller)",
        windowed as f64 * 8.0 / (1 << 20) as f64,
        full as f64 / windowed as f64
    );
    println!(
        "  wavefront window-3      : {wave:>12} elements = {:>8.1} MiB  ({:.1}x smaller)",
        wave as f64 * 8.0 / (1 << 20) as f64,
        full as f64 / wave as f64
    );

    // ---- Perf D: compile scaling + fusion ablation ----------------------
    header("Perf D — scheduler throughput and fusion ablation");
    for n in [8usize, 32, 128] {
        let src = synthetic_chain(n);
        let t = time_runs(
            || {
                compile(&src, CompileOptions::default()).unwrap();
            },
            3,
        );
        let mut fuse = CompileOptions::default();
        fuse.schedule.fuse_loops = true;
        let plain = compile(&src, CompileOptions::default()).unwrap();
        let fused = compile(&src, fuse).unwrap();
        let (_, d_plain) = plain.schedule.flowchart.loop_counts();
        let (_, d_fused) = fused.schedule.flowchart.loop_counts();
        println!(
            "  {n:>4} chained equations: compile {t:>9.2?}, DOALL loops {d_plain} -> {d_fused} fused"
        );
    }

    println!("\ndone.");
}
