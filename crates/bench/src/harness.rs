//! A minimal, std-only timing harness replacing `criterion`.
//!
//! Each bench target sets `harness = false` and drives a [`Harness`] from
//! its `main`. Two modes:
//!
//! * **Full** (`cargo bench`, which passes `--bench` to the binary):
//!   warmup runs followed by `N` timed samples per benchmark; reports
//!   min / median / max wall-clock per iteration.
//! * **Smoke** (`cargo test`, no `--bench` argument): every closure runs
//!   exactly once so the structural assertions in each bench file stay
//!   part of the test suite, without paying for timing.
//!
//! Tuning knobs (full mode): `PS_BENCH_WARMUP` (default 3) and
//! `PS_BENCH_SAMPLES` (default 15) iterations per benchmark.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One summarised benchmark measurement.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    pub min: Duration,
    pub median: Duration,
    pub max: Duration,
    pub samples: usize,
}

/// A named group of benchmarks, mirroring criterion's `benchmark_group`.
pub struct Harness {
    group: String,
    full: bool,
    warmup: usize,
    samples: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Render a duration compactly (ns / µs / ms / s, three significant-ish
/// digits), close to criterion's formatting.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

impl Harness {
    /// Create a group. Mode is taken from the command line: `cargo bench`
    /// invokes bench binaries with `--bench`, `cargo test` does not.
    pub fn new(group: &str) -> Harness {
        let full = std::env::args().any(|a| a == "--bench");
        let h = Harness {
            group: group.to_string(),
            full,
            warmup: env_usize("PS_BENCH_WARMUP", 3),
            samples: env_usize("PS_BENCH_SAMPLES", 15),
        };
        if h.full {
            println!(
                "## {} (warmup {}, samples {})",
                h.group, h.warmup, h.samples
            );
        } else {
            println!("## {} (smoke mode; run `cargo bench` for timings)", h.group);
        }
        h
    }

    /// True when timing for real (`--bench` present).
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Time `f`, printing a `group/label` line. Returns the summary in full
    /// mode, `None` in smoke mode (where `f` runs once for its assertions).
    pub fn bench<T>(&mut self, label: &str, mut f: impl FnMut() -> T) -> Option<Summary> {
        if !self.full {
            black_box(f());
            println!("  {}/{label}: ok", self.group);
            return None;
        }
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        let s = Summary {
            min: times[0],
            median: times[times.len() / 2],
            max: times[times.len() - 1],
            samples: times.len(),
        };
        println!(
            "  {}/{label:<40} min {:>11}  median {:>11}  max {:>11}",
            self.group,
            fmt_duration(s.min),
            fmt_duration(s.median),
            fmt_duration(s.max)
        );
        Some(s)
    }

    /// Like [`Harness::bench`] but also reports element throughput
    /// (elements / second at the median), criterion's `Throughput::Elements`.
    pub fn bench_with_elements<T>(
        &mut self,
        label: &str,
        elements: u64,
        f: impl FnMut() -> T,
    ) -> Option<Summary> {
        let s = self.bench(label, f)?;
        let secs = s.median.as_secs_f64();
        if secs > 0.0 {
            println!(
                "  {}/{label:<40} throughput {:.1} Melem/s",
                self.group,
                elements as f64 / secs / 1e6
            );
        }
        Some(s)
    }

    /// End the group (symmetry with criterion's `finish`; also flushes).
    pub fn finish(self) {
        use std::io::Write;
        let _ = std::io::stdout().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_covers_all_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.000 s");
    }

    #[test]
    fn smoke_mode_runs_once() {
        // Unit tests see no `--bench` argument, so this exercises smoke mode.
        let mut h = Harness::new("harness_selftest");
        let mut runs = 0;
        let out = h.bench("counts", || {
            runs += 1;
            runs
        });
        assert!(out.is_none());
        assert_eq!(runs, 1);
        h.finish();
    }
}
