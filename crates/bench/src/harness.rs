//! A minimal, std-only timing harness replacing `criterion`.
//!
//! Each bench target sets `harness = false` and drives a [`Harness`] from
//! its `main`. Two modes:
//!
//! * **Full** (`cargo bench`, which passes `--bench` to the binary):
//!   warmup runs followed by `N` timed samples per benchmark; reports
//!   min / median / max wall-clock per iteration.
//! * **Smoke** (`cargo test`, no `--bench` argument): every closure runs
//!   exactly once so the structural assertions in each bench file stay
//!   part of the test suite, without paying for timing.
//!
//! Two accuracy mechanisms (full mode):
//!
//! * **Iteration batching** — a calibration run sizes a batch of `B`
//!   closure calls per `Instant` sample so each sample is well above the
//!   clock resolution; reported durations are per-iteration (`elapsed / B`).
//!   Sub-microsecond benches (`solve_time_vector` and friends) would
//!   otherwise sit at the timer floor.
//! * **IQR outlier rejection** — samples outside
//!   `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` (scheduler preemptions, page faults)
//!   are discarded before min/median/max are taken; the JSON records how
//!   many were rejected.
//!
//! Tuning knobs (full mode): `PS_BENCH_WARMUP` (default 3) and
//! `PS_BENCH_SAMPLES` (default 15) samples per benchmark, and
//! `PS_BENCH_BATCH` to force a fixed batch size (0 = auto-calibrate).
//!
//! Machine-readable output: pass `--bench-json <path>` (after `--` under
//! `cargo bench`) and [`Harness::finish`] writes every measurement as a
//! JSON document — name, samples, batch, rejected-outlier count,
//! min/median/max in nanoseconds, and element throughput where declared —
//! so CI can diff runs and track regressions. Smoke mode records its
//! single run so the JSON pipeline itself can be exercised cheaply.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target per-sample wall time the auto-calibrator aims for: comfortably
/// above `Instant` resolution, small enough to keep full runs quick.
const BATCH_TARGET: Duration = Duration::from_micros(200);

/// Hard cap on the calibrated batch size.
const BATCH_MAX: usize = 16_384;

/// One summarised benchmark measurement. Durations are per iteration
/// (batch-normalised); `samples` counts the measurements kept after
/// outlier rejection and `rejected` those discarded by the IQR fence.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    pub min: Duration,
    pub median: Duration,
    pub max: Duration,
    pub samples: usize,
    /// Closure invocations per timed sample.
    pub batch: usize,
    /// Samples discarded as IQR outliers.
    pub rejected: usize,
}

/// One benchmark's row in the `--bench-json` report.
#[derive(Clone, Debug)]
struct JsonEntry {
    name: String,
    summary: Summary,
    /// Elements per call, when declared via [`Harness::bench_with_elements`].
    elements: Option<u64>,
}

/// A named group of benchmarks, mirroring criterion's `benchmark_group`.
pub struct Harness {
    group: String,
    full: bool,
    warmup: usize,
    samples: usize,
    /// Forced batch size (`PS_BENCH_BATCH`); 0 auto-calibrates per bench.
    batch: usize,
    json_path: Option<String>,
    entries: Vec<JsonEntry>,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Render a duration compactly (ns / µs / ms / s, three significant-ish
/// digits), close to criterion's formatting.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Size a batch so one sample spans roughly [`BATCH_TARGET`], given one
/// timed run of the closure.
fn calibrate_batch(once: Duration) -> usize {
    if once >= BATCH_TARGET {
        return 1;
    }
    let once_ns = once.as_nanos().max(1);
    ((BATCH_TARGET.as_nanos() / once_ns).max(1) as usize).min(BATCH_MAX)
}

/// Drop samples outside the Tukey fences `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]`.
/// Input must be sorted ascending; the result is never empty (the
/// quartiles themselves always sit inside the fences).
fn reject_outliers(sorted: &[Duration]) -> Vec<Duration> {
    if sorted.len() < 4 {
        return sorted.to_vec();
    }
    let q1 = sorted[sorted.len() / 4];
    let q3 = sorted[(3 * sorted.len()) / 4];
    let margin = {
        let iqr = q3.saturating_sub(q1);
        iqr + iqr / 2
    };
    let lo = q1.saturating_sub(margin);
    let hi = q3.saturating_add(margin);
    let kept: Vec<Duration> = sorted
        .iter()
        .copied()
        .filter(|&t| t >= lo && t <= hi)
        .collect();
    if kept.is_empty() {
        sorted.to_vec()
    } else {
        kept
    }
}

impl Harness {
    /// Create a group. Mode is taken from the command line: `cargo bench`
    /// invokes bench binaries with `--bench`, `cargo test` does not. A
    /// `--bench-json <path>` pair selects the machine-readable report.
    pub fn new(group: &str) -> Harness {
        let args: Vec<String> = std::env::args().collect();
        let full = args.iter().any(|a| a == "--bench");
        let json_path = args
            .iter()
            .position(|a| a == "--bench-json")
            .and_then(|i| args.get(i + 1))
            .cloned();
        let h = Harness {
            group: group.to_string(),
            full,
            warmup: env_usize("PS_BENCH_WARMUP", 3),
            samples: env_usize("PS_BENCH_SAMPLES", 15),
            batch: std::env::var("PS_BENCH_BATCH")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            json_path,
            entries: Vec::new(),
        };
        if h.full {
            println!(
                "## {} (warmup {}, samples {})",
                h.group, h.warmup, h.samples
            );
        } else {
            println!("## {} (smoke mode; run `cargo bench` for timings)", h.group);
        }
        h
    }

    /// True when timing for real (`--bench` present).
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Time `f`, printing a `group/label` line. Returns the summary in full
    /// mode, `None` in smoke mode (where `f` runs once for its assertions).
    pub fn bench<T>(&mut self, label: &str, f: impl FnMut() -> T) -> Option<Summary> {
        self.bench_inner(label, None, f)
    }

    /// Like [`Harness::bench`] but also reports element throughput
    /// (elements / second at the median), criterion's `Throughput::Elements`.
    pub fn bench_with_elements<T>(
        &mut self,
        label: &str,
        elements: u64,
        f: impl FnMut() -> T,
    ) -> Option<Summary> {
        self.bench_inner(label, Some(elements), f)
    }

    fn bench_inner<T>(
        &mut self,
        label: &str,
        elements: Option<u64>,
        mut f: impl FnMut() -> T,
    ) -> Option<Summary> {
        let name = format!("{}/{label}", self.group);
        if !self.full {
            // Smoke: one timed run keeps the JSON pipeline exercisable
            // without paying for warmup and sampling.
            let t0 = Instant::now();
            black_box(f());
            let once = t0.elapsed();
            println!("  {name}: ok");
            self.entries.push(JsonEntry {
                name,
                summary: Summary {
                    min: once,
                    median: once,
                    max: once,
                    samples: 1,
                    batch: 1,
                    rejected: 0,
                },
                elements,
            });
            return None;
        }
        for _ in 0..self.warmup {
            black_box(f());
        }
        // Calibrate the batch size off one timed run (which doubles as an
        // extra warmup): fast closures get batched until a sample spans
        // BATCH_TARGET, slow ones keep batch = 1.
        let batch = if self.batch > 0 {
            self.batch
        } else {
            let t0 = Instant::now();
            black_box(f());
            calibrate_batch(t0.elapsed())
        };
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            times.push(t0.elapsed() / batch as u32);
        }
        times.sort();
        let kept = reject_outliers(&times);
        let rejected = times.len() - kept.len();
        let s = Summary {
            min: kept[0],
            median: kept[kept.len() / 2],
            max: kept[kept.len() - 1],
            samples: kept.len(),
            batch,
            rejected,
        };
        println!(
            "  {}/{label:<40} min {:>11}  median {:>11}  max {:>11}  \
             (batch {}, {} outliers)",
            self.group,
            fmt_duration(s.min),
            fmt_duration(s.median),
            fmt_duration(s.max),
            batch,
            rejected
        );
        if let Some(elements) = elements {
            let secs = s.median.as_secs_f64();
            if secs > 0.0 {
                println!(
                    "  {}/{label:<40} throughput {:.1} Melem/s",
                    self.group,
                    elements as f64 / secs / 1e6
                );
            }
        }
        self.entries.push(JsonEntry {
            name,
            summary: s,
            elements,
        });
        Some(s)
    }

    /// Render the collected measurements as a JSON document.
    fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"group\": \"{}\",\n  \"mode\": \"{}\",\n  \"benchmarks\": [\n",
            json_escape(&self.group),
            if self.full { "full" } else { "smoke" }
        ));
        for (i, e) in self.entries.iter().enumerate() {
            let s = &e.summary;
            let throughput = match e.elements {
                Some(n) if s.median.as_secs_f64() > 0.0 => {
                    format!("{:.1}", n as f64 / s.median.as_secs_f64())
                }
                _ => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"samples\": {}, \"batch\": {}, \
                 \"rejected_outliers\": {}, \"min_ns\": {}, \
                 \"median_ns\": {}, \"max_ns\": {}, \"elements\": {}, \
                 \"throughput_elems_per_s\": {}}}{}\n",
                json_escape(&e.name),
                s.samples,
                s.batch,
                s.rejected,
                s.min.as_nanos(),
                s.median.as_nanos(),
                s.max.as_nanos(),
                e.elements.map_or("null".to_string(), |n| n.to_string()),
                throughput,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// End the group: flush stdout and, when `--bench-json <path>` was
    /// given, write the machine-readable report.
    pub fn finish(self) {
        use std::io::Write;
        if let Some(path) = &self.json_path {
            let doc = self.render_json();
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("bench-json: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("  bench-json written to {path}");
        }
        let _ = std::io::stdout().flush();
    }
}

/// Escape a string for a JSON literal (labels are plain ASCII identifiers,
/// so only quotes and backslashes matter; control characters are dropped).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {}
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_covers_all_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.000 s");
    }

    #[test]
    fn smoke_mode_runs_once() {
        // Unit tests see no `--bench` argument, so this exercises smoke mode.
        let mut h = Harness::new("harness_selftest");
        let mut runs = 0;
        let out = h.bench("counts", || {
            runs += 1;
            runs
        });
        assert!(out.is_none());
        assert_eq!(runs, 1);
        h.finish();
    }

    #[test]
    fn json_report_has_all_fields() {
        let mut h = Harness::new("json_selftest");
        h.bench("plain", || 1);
        h.bench_with_elements("with_elems", 1000, || 2);
        let doc = h.render_json();
        assert!(doc.contains("\"group\": \"json_selftest\""));
        assert!(doc.contains("\"mode\": \"smoke\""));
        assert!(doc.contains("\"name\": \"json_selftest/plain\""));
        assert!(doc.contains("\"elements\": null"));
        assert!(doc.contains("\"elements\": 1000"));
        assert!(doc.contains("\"samples\": 1"));
        for key in [
            "min_ns",
            "median_ns",
            "max_ns",
            "throughput_elems_per_s",
            "batch",
            "rejected_outliers",
        ] {
            assert!(doc.contains(&format!("\"{key}\"")), "missing {key}\n{doc}");
        }
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn batch_calibration_targets_sample_floor() {
        // Slow closures stay unbatched.
        assert_eq!(calibrate_batch(Duration::from_millis(5)), 1);
        assert_eq!(calibrate_batch(BATCH_TARGET), 1);
        // A 100 ns closure needs ~2000 iterations to span 200 µs.
        assert_eq!(calibrate_batch(Duration::from_nanos(100)), 2000);
        // Zero-duration runs clamp at the cap instead of dividing by zero.
        assert_eq!(calibrate_batch(Duration::ZERO), BATCH_MAX);
    }

    #[test]
    fn iqr_rejection_drops_only_outliers() {
        let ms = Duration::from_millis;
        // Tight cluster plus one wild sample: the fence removes it.
        let mut times: Vec<Duration> = (0..15).map(|i| ms(10 + i % 3)).collect();
        times.push(ms(500));
        times.sort();
        let kept = reject_outliers(&times);
        assert_eq!(kept.len(), 15, "exactly the wild sample goes");
        assert!(kept.iter().all(|&t| t <= ms(12)));
        // A uniform set survives untouched.
        let flat = vec![ms(7); 9];
        assert_eq!(reject_outliers(&flat).len(), 9);
        // Tiny sets are passed through (quartiles are meaningless).
        let few = vec![ms(1), ms(900)];
        assert_eq!(reject_outliers(&few).len(), 2);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tabhere");
        assert_eq!(json_escape("plain/label_1"), "plain/label_1");
    }
}
