//! Shared helpers for the benchmark harness and the `experiments` binary.
//!
//! Every bench regenerates one figure (or implied performance claim) of the
//! paper; see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! recorded paper-vs-measured results.

#![forbid(unsafe_code)]

pub mod harness;

pub use harness::{fmt_duration, Harness, Summary};

use ps_core::{compile, Compilation, CompileOptions, Inputs, OwnedArray, StorageMode};

/// Deterministic relaxation inputs: an (M+2)² grid with a mixed pattern.
pub fn relaxation_inputs(m: i64, maxk: i64) -> Inputs {
    let side = (m + 2) as usize;
    let data: Vec<f64> = (0..side * side)
        .map(|i| ((i * 31 + 7) % 101) as f64 * 0.25)
        .collect();
    Inputs::new()
        .set_int("M", m)
        .set_int("maxK", maxk)
        .set_array(
            "InitialA",
            OwnedArray::real(vec![(0, m + 1), (0, m + 1)], data),
        )
}

/// Compile Relaxation v1 (Jacobi / Figure 6).
pub fn compile_v1() -> Compilation {
    compile(ps_core::programs::RELAXATION_V1, CompileOptions::default()).expect("v1 compiles")
}

/// Compile Relaxation v2 (Gauss–Seidel / Figure 7), optionally transformed.
pub fn compile_v2(hyperplane: Option<StorageMode>) -> Compilation {
    compile(
        ps_core::programs::RELAXATION_V2,
        CompileOptions {
            hyperplane,
            ..Default::default()
        },
    )
    .expect("v2 compiles")
}

/// Generate a synthetic PS module with `n` chained equation groups, used by
/// the compile-scaling bench: group g defines `a<g>[I] = a<g-1>[I] * 2 + 1`
/// plus a recurrence `r[K] = r[K-1] + a<last>[K]`.
pub fn synthetic_chain(n: usize) -> String {
    let mut eqs = String::new();
    let mut vars = String::new();
    for g in 0..n {
        vars.push_str(&format!("    a{g}: array [1 .. n] of real;\n"));
        if g == 0 {
            eqs.push_str("    a0[I] = xs[I] * 2.0 + 1.0;\n");
        } else {
            eqs.push_str(&format!("    a{g}[I] = a{}[I] * 2.0 + 1.0;\n", g - 1));
        }
    }
    format!(
        "Chain: module (xs: array[I] of real; n: int): [y: real];
         type I = 1 .. n; K = 2 .. n;
         var
         {vars}
             r: array [1 .. n] of real;
         define
         {eqs}
             r[1] = a{last}[1];
             r[K] = r[K-1] + a{last}[K];
             y = r[n];
         end Chain;",
        last = n - 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let c1 = compile_v1();
        assert!(c1.compact_flowchart().contains("DO K"));
        let c2 = compile_v2(Some(StorageMode::Windowed));
        assert!(c2.transformed.is_some());
        let src = synthetic_chain(5);
        ps_lang::frontend(&src).expect("synthetic program checks");
        let _ = relaxation_inputs(4, 3);
    }
}
