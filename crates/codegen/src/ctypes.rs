//! Minimal C-type inference over HIR expressions.
//!
//! The checker has already inserted every widening cast, so types are
//! derivable bottom-up without an environment beyond the module tables.

use ps_lang::ast::BinOp;
use ps_lang::hir::{Builtin, Equation, HExpr, HirModule};
use ps_lang::{ScalarTy, Ty};

/// The three C carrier types used by the emitter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CTy {
    /// `long`
    Int,
    /// `double`
    Real,
    /// `int` (0/1)
    Bool,
}

impl CTy {
    pub fn c_name(&self) -> &'static str {
        match self {
            CTy::Int => "long",
            CTy::Real => "double",
            CTy::Bool => "int",
        }
    }

    pub fn of_scalar(s: ScalarTy) -> CTy {
        match s {
            ScalarTy::Int | ScalarTy::Char => CTy::Int,
            ScalarTy::Real => CTy::Real,
            ScalarTy::Bool => CTy::Bool,
        }
    }
}

/// Infer the C carrier type of an expression.
#[allow(clippy::only_used_in_recursion)] // uniform signature for callers
pub fn infer(module: &HirModule, eq: &Equation, e: &HExpr) -> CTy {
    match e {
        HExpr::Int(_) | HExpr::Char(_) | HExpr::EnumConst(..) | HExpr::Iv(_) => CTy::Int,
        HExpr::Real(_) => CTy::Real,
        HExpr::Bool(_) => CTy::Bool,
        HExpr::ReadScalar(d) => match &module.data[*d].ty {
            Ty::Scalar(s) => CTy::of_scalar(*s),
            Ty::Enum(_) => CTy::Int,
            other => panic!("scalar read of {other}"),
        },
        HExpr::ReadField(d, idx) => match &module.data[*d].ty {
            Ty::Record(rid) => match &module.records[*rid].fields[*idx].1 {
                Ty::Scalar(s) => CTy::of_scalar(*s),
                Ty::Enum(_) => CTy::Int,
                other => panic!("field of type {other}"),
            },
            other => panic!("field read of {other}"),
        },
        HExpr::ReadArray { array, .. } => CTy::of_scalar(
            module.data[*array]
                .elem_scalar()
                .expect("arrays have scalar elements"),
        ),
        HExpr::Binary { op, lhs, .. } => match op {
            BinOp::Div => CTy::Real,
            BinOp::IntDiv | BinOp::Mod => CTy::Int,
            op if op.is_comparison() || op.is_logical() => CTy::Bool,
            _ => infer(module, eq, lhs),
        },
        HExpr::Unary { op, operand } => match op {
            ps_lang::ast::UnOp::Not => CTy::Bool,
            ps_lang::ast::UnOp::Neg => infer(module, eq, operand),
        },
        HExpr::If { arms, else_ } => {
            // Arms are unified by the checker; any arm's type works, but a
            // real in any arm means the whole expression is real.
            let mut ty = infer(module, eq, else_);
            for (_, v) in arms {
                if infer(module, eq, v) == CTy::Real {
                    ty = CTy::Real;
                }
            }
            ty
        }
        HExpr::Call { builtin, args } => match builtin {
            Builtin::Sqrt
            | Builtin::Exp
            | Builtin::Ln
            | Builtin::Sin
            | Builtin::Cos
            | Builtin::RealFn => CTy::Real,
            Builtin::Trunc | Builtin::Round | Builtin::Ord => CTy::Int,
            Builtin::Abs | Builtin::Min | Builtin::Max => infer(module, eq, &args[0]),
        },
        HExpr::CastReal(_) => CTy::Real,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carrier_names() {
        assert_eq!(CTy::Int.c_name(), "long");
        assert_eq!(CTy::Real.c_name(), "double");
        assert_eq!(CTy::Bool.c_name(), "int");
        assert_eq!(CTy::of_scalar(ScalarTy::Char), CTy::Int);
    }

    #[test]
    fn infer_over_relaxation() {
        let m = ps_lang::frontend(
            "T: module (x: int): [y: real];
             define y = if x > 0 then 1.0 else real(x) / 2.0;
             end T;",
        )
        .unwrap();
        let eq = &m.equations[ps_lang::EqId(0)];
        assert_eq!(infer(&m, eq, &eq.rhs), CTy::Real);
        if let HExpr::If { arms, .. } = &eq.rhs {
            assert_eq!(infer(&m, eq, &arms[0].0), CTy::Bool);
        } else {
            panic!("expected if");
        }
    }
}
