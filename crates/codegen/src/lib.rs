//! C code generation — the back end of the paper's compiler.
//!
//! > "The code generation phase generates C declarations and assignment
//! > statements. [...] Each loop is annotated to indicate whether it is an
//! > iterative or concurrent for."
//!
//! [`emit_module`] lowers a scheduled module to a self-contained C
//! translation unit:
//!
//! * one function per module taking parameters (scalars by value, arrays as
//!   flat `const double*`/`long*` pointers) and result arrays as out
//!   pointers;
//! * local arrays `malloc`ed with **windowed extents** from the memory plan
//!   and indexed modulo the window, exactly as Section 3.4 prescribes;
//! * `DO` loops as plain `for`; `DOALL` loops annotated with a comment and
//!   an OpenMP `#pragma omp parallel for` so a procedural multiprocessor
//!   compiler can pick them up;
//! * `if` expressions as C conditional expressions;
//! * the windowed-hyperplane *drain* as a guarded copy nest inside the
//!   wavefront loop.
//!
//! [`emit_main`] additionally generates a `main` that fills inputs with a
//! deterministic pattern and prints a checksum — used by the end-to-end
//! test that compiles the emitted C with the system compiler and compares
//! against the Rust interpreter.

#![forbid(unsafe_code)]

pub mod cemit;
pub mod ctypes;
pub mod names;

pub use cemit::{emit_main, emit_module, CodegenOptions};
