//! C identifier mangling.
//!
//! PS names are mostly C-compatible; the transformed arrays (`A'`, index
//! variables `K'`) are not, and user names may collide with C keywords.

use ps_lang::hir::HirModule;
use ps_lang::DataId;
use ps_support::FxHashMap;

const C_KEYWORDS: &[&str] = &[
    "auto", "break", "case", "char", "const", "continue", "default", "do", "double", "else",
    "enum", "extern", "float", "for", "goto", "if", "inline", "int", "long", "register",
    "restrict", "return", "short", "signed", "sizeof", "static", "struct", "switch", "typedef",
    "union", "unsigned", "void", "volatile", "while", "main",
];

/// Deterministic mapping from PS names to unique C identifiers.
pub struct Mangler {
    by_data: FxHashMap<DataId, String>,
    used: ps_support::FxHashSet<String>,
}

/// Sanitize a single name (primes become `_p`, other non-alnum becomes `_`).
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => out.push(c),
            '\'' => out.push_str("_p"),
            _ => out.push('_'),
        }
    }
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if C_KEYWORDS.contains(&out.as_str()) {
        out.push('_');
    }
    out
}

impl Mangler {
    /// Pre-assign names for every data item of the module.
    pub fn for_module(module: &HirModule) -> Mangler {
        let mut m = Mangler {
            by_data: FxHashMap::default(),
            used: Default::default(),
        };
        for (id, item) in module.data.iter_enumerated() {
            let mut base = sanitize(item.name.as_str());
            while !m.used.insert(base.clone()) {
                base.push('_');
            }
            m.by_data.insert(id, base);
        }
        m
    }

    pub fn data(&self, id: DataId) -> &str {
        &self.by_data[&id]
    }

    /// A fresh helper identifier derived from `hint`.
    pub fn fresh(&mut self, hint: &str) -> String {
        let mut name = sanitize(hint);
        while !self.used.insert(name.clone()) {
            name.push('_');
        }
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_primes_and_keywords() {
        assert_eq!(sanitize("A'"), "A_p");
        assert_eq!(sanitize("K'"), "K_p");
        assert_eq!(sanitize("for"), "for_");
        assert_eq!(sanitize("main"), "main_");
        assert_eq!(sanitize("2fast"), "_2fast");
        assert_eq!(sanitize("newA"), "newA");
    }

    #[test]
    fn mangler_deduplicates() {
        let m = ps_lang::frontend(
            "T: module (x: int): [y: int];
             var if_, while_: int;
             define if_ = x; while_ = x; y = if_ + while_;
             end T;",
        )
        .unwrap();
        let mangler = Mangler::for_module(&m);
        let names: Vec<&str> = m
            .data
            .iter_enumerated()
            .map(|(id, _)| mangler.data(id))
            .collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "all names unique: {names:?}");
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let m = ps_lang::frontend("T: module (x: int): [y: int]; define y = x; end T;").unwrap();
        let mut mangler = Mangler::for_module(&m);
        let a = mangler.fresh("x");
        let b = mangler.fresh("x");
        assert_ne!(a, b);
        assert_ne!(a, "x", "x is taken by the parameter");
    }
}
