//! `ps-analyze` — lint every built-in program with the static verifier.
//!
//! ```text
//! ps-analyze            per-region safety report for all built-ins
//! ps-analyze <name>     report for one built-in (e.g. `pipeline`)
//! ```
//!
//! For each program, prints the per-region proof lines (def-before-use,
//! in-bounds, `DOALL` disjointness) and the per-array verdicts, then a
//! summary line `N programs, M errors`. Exits nonzero when any program
//! is rejected.

use ps_core::{analyze, compile, programs, CompileOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let filter: Option<String> = std::env::args().nth(1);
    let mut checked = 0usize;
    let mut errors = 0usize;
    for (name, src) in programs::ALL {
        if filter.as_deref().is_some_and(|f| f != *name) {
            continue;
        }
        checked += 1;
        println!("== {name} ==");
        match compile(src, CompileOptions::default()) {
            Ok(comp) => {
                let report = analyze(&comp);
                errors += report.error_count();
                println!("{}", report.render());
            }
            Err(e) => {
                errors += 1;
                println!("compile error: {e}\n");
            }
        }
    }
    if checked == 0 {
        eprintln!(
            "no such built-in: {} (try one of {})",
            filter.unwrap_or_default(),
            programs::ALL
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    }
    println!("{checked} programs, {errors} errors");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
