//! `ps-serve` — the TCP front-end over [`ps_core::Service`], plus a load
//! generator, speaking the newline protocol of `ps_service::proto`.
//!
//! ```text
//! ps-serve listen [--addr 127.0.0.1:0] [--workers N] [--solve-threads N]
//!                 [--batch-max N] [--registry-capacity N] [--queue-cap N]
//! ps-serve load --addr HOST:PORT [--clients C] [--requests R]
//!               [--program NAME] [--param k=v]... [--vary name=lo:hi]
//! ps-serve shutdown --addr HOST:PORT
//! ```
//!
//! `listen` prints `listening on <addr>` (with the kernel-chosen port when
//! `--addr` ends in `:0`) and serves until a client sends `shutdown`.
//! Programs are addressed by built-in name (`psc --list`); each
//! connection's requests are answered in order, while the service workers
//! batch across connections.
//!
//! `load` opens `--clients` concurrent connections, fires `--requests`
//! solve lines each, verifies every response, and reports throughput plus
//! the server's own stats line — the measurable end of the ROADMAP's
//! "serve heavy traffic" goal.
//!
//! `shutdown` drains **every** live connection, not just the issuing one:
//! the server stops accepting, half-closes the read side of all other
//! connections (in-flight requests still complete and their responses
//! still flush — only the *next* read sees EOF), waits for those
//! connection threads to finish, then answers `ok bye` and exits.

use ps_core::{programs, proto, ProgramKey, RuntimeOptions, Service, ServiceOptions};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Live-connection table for the graceful cross-connection drain.
///
/// Each connection thread registers a `try_clone` handle on accept and
/// deregisters on exit. The first `shutdown` command flips `draining`
/// (new connections are refused), half-closes every *other* connection's
/// read side — their in-flight frame still completes and its response
/// flushes, because only the read direction is shut — and waits for the
/// table to drain down to the issuing connection.
#[derive(Default)]
struct ConnTable {
    conns: Mutex<HashMap<u64, TcpStream>>,
    changed: Condvar,
    draining: AtomicBool,
    next_id: AtomicU64,
}

impl ConnTable {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let handle = stream.try_clone().ok()?;
        self.conns
            .lock()
            .expect("connection table poisoned")
            .insert(id, handle);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.conns
            .lock()
            .expect("connection table poisoned")
            .remove(&id);
        self.changed.notify_all();
    }

    /// First caller wins the drain coordinator role; later `shutdown`
    /// commands just close their own connection.
    fn begin_drain(&self, me: u64) -> bool {
        if self
            .draining
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        let conns = self.conns.lock().expect("connection table poisoned");
        for (&id, stream) in conns.iter() {
            if id != me {
                // Half-close: the peer's in-flight request still gets its
                // response; its next read returns EOF and the connection
                // thread exits cleanly.
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        true
    }

    /// Block until only connection `me` remains (bounded: a connection
    /// wedged in a pathological solve cannot hold the exit hostage
    /// forever).
    fn wait_drained(&self, me: u64) {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut conns = self.conns.lock().expect("connection table poisoned");
        while !conns.keys().all(|&id| id == me) {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                eprintln!("shutdown: drain timed out; exiting with connections live");
                return;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(conns, left)
                .expect("connection table poisoned");
            conns = guard;
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         ps-serve listen [--addr 127.0.0.1:0] [--workers N] [--solve-threads N]\n\
         \x20                [--batch-max N] [--registry-capacity N] [--queue-cap N]\n\
         ps-serve load --addr HOST:PORT [--clients C] [--requests R]\n\
         \x20             [--program NAME] [--param k=v]... [--vary name=lo:hi]\n\
         ps-serve shutdown --addr HOST:PORT"
    );
    std::process::exit(2)
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            usage()
        })
        .clone()
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag}: `{s}` is not a number");
        usage()
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("listen") => listen(&args[1..]),
        Some("load") => load(&args[1..]),
        Some("shutdown") => shutdown(&args[1..]),
        _ => usage(),
    }
}

// ---- server ----

fn listen(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut options = ServiceOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take_value(args, &mut i, "--addr"),
            "--workers" => {
                options.workers = parse_num(&take_value(args, &mut i, "--workers"), "--workers")
            }
            "--solve-threads" => {
                options.solve_threads = parse_num(
                    &take_value(args, &mut i, "--solve-threads"),
                    "--solve-threads",
                )
            }
            "--batch-max" => {
                options.batch_max =
                    parse_num(&take_value(args, &mut i, "--batch-max"), "--batch-max")
            }
            "--registry-capacity" => {
                options.registry_capacity = parse_num(
                    &take_value(args, &mut i, "--registry-capacity"),
                    "--registry-capacity",
                )
            }
            "--queue-cap" => {
                options.queue_cap =
                    parse_num(&take_value(args, &mut i, "--queue-cap"), "--queue-cap")
            }
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().expect("bound socket has an address");
    // The port line is the startup handshake scripts wait for.
    println!("listening on {local}");
    std::io::stdout().flush().ok();

    let service = Arc::new(Service::new(options));
    // Program names resolve to built-in sources; keys are precomputed so
    // the per-request path does no hashing of source text.
    let keys: Arc<HashMap<&'static str, ProgramKey>> = Arc::new(
        programs::ALL
            .iter()
            .map(|&(name, src)| (name, ProgramKey::new(src, RuntimeOptions::default())))
            .collect(),
    );

    let table = Arc::new(ConnTable::default());
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        // Refuse connections accepted after a drain began (the drain
        // coordinator exits the process; until then, just close).
        if table.draining.load(Ordering::SeqCst) {
            drop(stream);
            continue;
        }
        let Some(id) = table.register(&stream) else {
            continue;
        };
        let service = Arc::clone(&service);
        let keys = Arc::clone(&keys);
        let table = Arc::clone(&table);
        std::thread::spawn(move || {
            let flow = serve_connection(stream, &service, &keys, &table, id);
            table.deregister(id);
            if flow == Flow::Shutdown {
                // This thread won the drain: every other connection has
                // finished its in-flight frames and closed (see
                // `ConnTable`), so the process can end.
                std::process::exit(0);
            }
        });
    }
    ExitCode::SUCCESS
}

#[derive(PartialEq)]
enum Flow {
    Closed,
    Shutdown,
}

fn serve_connection(
    stream: TcpStream,
    service: &Service,
    keys: &HashMap<&'static str, ProgramKey>,
    table: &ConnTable,
    my_id: u64,
) -> Flow {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return Flow::Closed,
    });
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match proto::parse_request(&line) {
            Err(msg) => proto::format_error(&msg),
            Ok(proto::WireCommand::Quit) => break,
            Ok(proto::WireCommand::Shutdown) => {
                if table.begin_drain(my_id) {
                    // Every other connection finishes its in-flight
                    // frames and closes before we acknowledge.
                    table.wait_drained(my_id);
                    let _ = writeln!(writer, "ok bye");
                    let _ = writer.flush();
                    return Flow::Shutdown;
                }
                // A concurrent shutdown already owns the drain; just
                // acknowledge and close this connection.
                let _ = writeln!(writer, "ok bye");
                let _ = writer.flush();
                break;
            }
            Ok(proto::WireCommand::Stats) => {
                let s = service.stats();
                format!(
                    "ok requests={} rejected={} responses={} errors={} panics={} batches={} \
                     max_batch={} queue_depth={} compiles={} cache_hits={} \
                     cache_evictions={} p50_us={} p99_us={}",
                    s.requests,
                    s.rejected,
                    s.responses,
                    s.errors,
                    s.panics,
                    s.batches,
                    s.max_batch,
                    s.queue_depth,
                    s.compiles,
                    s.cache_hits,
                    s.cache_evictions,
                    s.p50.as_micros(),
                    s.p99.as_micros()
                )
            }
            Ok(proto::WireCommand::Solve { program, inputs }) => {
                match keys.get(program.trim_start_matches('@')) {
                    None => proto::format_error(&format!(
                        "unknown program `{program}` (try psc --list)"
                    )),
                    Some(key) => match service.solve(key, inputs) {
                        Ok(outputs) => proto::format_outputs(&outputs),
                        Err(e) => proto::format_error(&e.to_string()),
                    },
                }
            }
        };
        if writeln!(writer, "{reply}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
    }
    Flow::Closed
}

// ---- load generator ----

fn load(args: &[String]) -> ExitCode {
    let mut addr = String::new();
    let mut clients = 2usize;
    let mut requests = 32usize;
    let mut program = "recurrence_1d".to_string();
    let mut params: Vec<String> = Vec::new();
    let mut vary: Option<(String, i64, i64)> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take_value(args, &mut i, "--addr"),
            "--clients" => clients = parse_num(&take_value(args, &mut i, "--clients"), "--clients"),
            "--requests" => {
                requests = parse_num(&take_value(args, &mut i, "--requests"), "--requests")
            }
            "--program" => program = take_value(args, &mut i, "--program"),
            "--param" => params.push(take_value(args, &mut i, "--param")),
            "--vary" => {
                let spec = take_value(args, &mut i, "--vary");
                let parsed = spec.split_once('=').and_then(|(name, range)| {
                    let (lo, hi) = range.split_once(':')?;
                    Some((name.to_string(), lo.parse().ok()?, hi.parse().ok()?))
                });
                match parsed {
                    Some(v) if v.1 <= v.2 => vary = Some(v),
                    _ => {
                        eprintln!("error: --vary wants name=lo:hi, got `{spec}`");
                        usage()
                    }
                }
            }
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    if addr.is_empty() {
        eprintln!("error: load needs --addr");
        usage()
    }
    if params.is_empty() {
        params = default_params(&program);
    }

    let started = Instant::now();
    let mut ok_total = 0u64;
    let mut err_total = 0u64;
    let results: Vec<Result<(u64, u64), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|c| {
                let addr = addr.clone();
                let program = program.clone();
                let params = params.clone();
                let vary = vary.clone();
                scope.spawn(move || client_loop(&addr, &program, &params, &vary, requests, c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for r in &results {
        match r {
            Ok((ok, err)) => {
                ok_total += ok;
                err_total += err;
            }
            Err(e) => {
                eprintln!("client error: {e}");
                err_total += 1;
            }
        }
    }
    let elapsed = started.elapsed();
    let rate = ok_total as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "load: {clients} clients x {requests} requests -> {ok_total} ok, {err_total} err \
         in {:.1} ms ({rate:.0} req/s)",
        elapsed.as_secs_f64() * 1e3
    );
    // One stats probe so operators (and the verify script) see the
    // registry behave: warm traffic must hit, not recompile.
    match probe_stats(&addr) {
        Ok(line) => println!("server {line}"),
        Err(e) => eprintln!("stats probe failed: {e}"),
    }
    if err_total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Default parameter lists making every scalar-input built-in loadable
/// out of the box.
fn default_params(program: &str) -> Vec<String> {
    match program {
        "recurrence_1d" => vec!["rate=0.05".into(), "n=64".into()],
        "table_2d" => vec!["n=24".into()],
        _ => Vec::new(),
    }
}

fn client_loop(
    addr: &str,
    program: &str,
    params: &[String],
    vary: &Option<(String, i64, i64)>,
    requests: usize,
    client: usize,
) -> Result<(u64, u64), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    let (mut ok, mut err) = (0u64, 0u64);
    let mut response = String::new();
    for r in 0..requests {
        let mut line = format!("solve {program}");
        for p in params {
            line.push(' ');
            line.push_str(p);
        }
        if let Some((name, lo, hi)) = vary {
            // Deterministic per-client cycle through the varied range.
            let span = (hi - lo + 1).max(1);
            let v = lo + ((client * 31 + r) as i64 % span);
            line.push_str(&format!(" {name}={v}"));
        }
        writeln!(writer, "{line}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        response.clear();
        let n = reader.read_line(&mut response).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        if response.starts_with("ok") {
            ok += 1;
        } else {
            err += 1;
            if err <= 3 {
                eprintln!("client {client}: {}", response.trim_end());
            }
        }
    }
    writeln!(writer, "quit").ok();
    writer.flush().ok();
    Ok((ok, err))
}

fn probe_stats(addr: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "stats").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    writeln!(writer, "quit").ok();
    writer.flush().ok();
    Ok(line.trim_end().to_string())
}

// ---- remote shutdown ----

fn shutdown(args: &[String]) -> ExitCode {
    let mut addr = String::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take_value(args, &mut i, "--addr"),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    if addr.is_empty() {
        eprintln!("error: shutdown needs --addr");
        usage()
    }
    let Ok(stream) = TcpStream::connect(&addr) else {
        eprintln!("error: cannot connect {addr}");
        return ExitCode::FAILURE;
    };
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    if writeln!(writer, "shutdown")
        .and_then(|_| writer.flush())
        .is_err()
    {
        return ExitCode::FAILURE;
    }
    let mut line = String::new();
    reader.read_line(&mut line).ok();
    println!("{}", line.trim_end());
    ExitCode::SUCCESS
}
