//! `ps-serve` — the TCP front-end over [`ps_core::Service`], plus a load
//! generator, speaking the newline protocol of `ps_service::proto`.
//!
//! ```text
//! ps-serve listen [--addr 127.0.0.1:0] [--workers N] [--solve-threads N]
//!                 [--batch-max N] [--registry-capacity N] [--queue-cap N]
//!                 [--deadline-ms MS] [--drain-timeout SECS]
//!                 [--io-timeout SECS] [--max-frame BYTES] [--inflight N]
//!                 [--chaos SPEC] [--trace-out FILE]
//! ps-serve load --addr HOST:PORT [--clients C] [--requests R]
//!               [--program NAME] [--param k=v]... [--vary name=lo:hi]
//!               [--seed S] [--retries N]
//! ps-serve shutdown --addr HOST:PORT
//! ```
//!
//! `listen` prints `listening on <addr>` (with the kernel-chosen port when
//! `--addr` ends in `:0`) and serves until a client sends `shutdown`.
//! Programs are addressed by built-in name (`psc --list`); each
//! connection's requests are answered in order (pipelined up to
//! `--inflight` deep), while the service workers batch across
//! connections. Connections are defended: reads and writes time out after
//! `--io-timeout`, a frame longer than `--max-frame` is answered with a
//! structured error (the oversized bytes are discarded, the connection
//! survives), and malformed lines get an `err` reply instead of a
//! disconnect. `--chaos seed=42,panic=50,slow=100,stall=80,disconnect=40`
//! arms the seeded fault injector across the service *and* the socket
//! layer — the chaos suite's reproducible adversary.
//!
//! `--trace-out FILE` turns on `ps_trace` for the process: every request
//! lifecycle event (frame read, parse, queue, batch, compile, solve,
//! per-chunk executor work, reply) lands in per-thread lock-free rings,
//! and at shutdown the rings are exported as Chrome `trace_event` JSON to
//! FILE — open it in `chrome://tracing`/Perfetto or summarize with the
//! `ps-trace` CLI. The wire `stats` reply additionally carries executor
//! counters (`steals`, `max_live_regions`, `cancelled_chunks`) and the
//! per-stage latency histograms (`stages=...`).
//!
//! `load` opens `--clients` concurrent connections, fires `--requests`
//! solve lines each, verifies every response, and reports throughput plus
//! the server's own stats line — the measurable end of the ROADMAP's
//! "serve heavy traffic" goal. Shed (`Busy`/`DeadlineExceeded`) responses
//! and dropped connections are retried with seeded jittered exponential
//! backoff (up to `--retries` attempts); retry and reconnect counts land
//! in the report.
//!
//! `shutdown` drains **every** live connection, not just the issuing one:
//! the server stops accepting, half-closes the read side of all other
//! connections (in-flight requests still complete and their responses
//! still flush — only the *next* read sees EOF), waits for those
//! connection threads to finish (bounded by `--drain-timeout`), then
//! answers `ok bye` and exits.

use ps_core::{
    programs, proto, FaultInjector, FaultPoint, FaultSpec, Lcg, ProgramKey, ResponseHandle,
    RuntimeOptions, Service, ServiceOptions, SolveRequest,
};
use ps_trace::{EvKind, Phase};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Live-connection table for the graceful cross-connection drain.
///
/// Each connection thread registers a `try_clone` handle on accept and
/// deregisters on exit. The first `shutdown` command flips `draining`
/// (new connections are refused), half-closes every *other* connection's
/// read side — their in-flight frame still completes and its response
/// flushes, because only the read direction is shut — and waits for the
/// table to drain down to the issuing connection.
struct ConnTable {
    conns: Mutex<HashMap<u64, TcpStream>>,
    changed: Condvar,
    draining: AtomicBool,
    next_id: AtomicU64,
    /// Budget for `wait_drained` (`--drain-timeout`).
    drain_timeout: Duration,
}

impl ConnTable {
    fn new(drain_timeout: Duration) -> ConnTable {
        ConnTable {
            conns: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            draining: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            drain_timeout,
        }
    }

    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let handle = stream.try_clone().ok()?;
        self.conns
            .lock()
            .expect("connection table poisoned")
            .insert(id, handle);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.conns
            .lock()
            .expect("connection table poisoned")
            .remove(&id);
        self.changed.notify_all();
    }

    /// First caller wins the drain coordinator role; later `shutdown`
    /// commands just close their own connection.
    fn begin_drain(&self, me: u64) -> bool {
        if self
            .draining
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        let conns = self.conns.lock().expect("connection table poisoned");
        for (&id, stream) in conns.iter() {
            if id != me {
                // Half-close: the peer's in-flight request still gets its
                // response; its next read returns EOF and the connection
                // thread exits cleanly.
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        true
    }

    /// Block until only connection `me` remains (bounded by the drain
    /// timeout: a connection wedged in a pathological solve cannot hold
    /// the exit hostage forever).
    fn wait_drained(&self, me: u64) {
        let deadline = Instant::now() + self.drain_timeout;
        let mut conns = self.conns.lock().expect("connection table poisoned");
        while !conns.keys().all(|&id| id == me) {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                eprintln!("shutdown: drain timed out; exiting with connections live");
                return;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(conns, left)
                .expect("connection table poisoned");
            conns = guard;
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         ps-serve listen [--addr 127.0.0.1:0] [--workers N] [--solve-threads N]\n\
         \x20                [--batch-max N] [--registry-capacity N] [--queue-cap N]\n\
         \x20                [--deadline-ms MS] [--drain-timeout SECS]\n\
         \x20                [--io-timeout SECS] [--max-frame BYTES] [--inflight N]\n\
         \x20                [--chaos seed=S,panic=P,slow=P,compile=P,stall=P,disconnect=P]\n\
         \x20                [--trace-out FILE]\n\
         ps-serve load --addr HOST:PORT [--clients C] [--requests R]\n\
         \x20             [--program NAME] [--param k=v]... [--vary name=lo:hi]\n\
         \x20             [--seed S] [--retries N]\n\
         ps-serve shutdown --addr HOST:PORT"
    );
    std::process::exit(2)
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            usage()
        })
        .clone()
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag}: `{s}` is not a number");
        usage()
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("listen") => listen(&args[1..]),
        Some("load") => load(&args[1..]),
        Some("shutdown") => shutdown(&args[1..]),
        _ => usage(),
    }
}

// ---- server ----

/// Per-connection defence knobs shared by every connection thread.
struct ConnLimits {
    /// Socket read/write timeout; a peer silent (or unwritable) this long
    /// is dropped.
    io_timeout: Duration,
    /// Longest accepted request line, in bytes. Longer frames get an
    /// `err` reply and are discarded without unbounded buffering.
    max_frame: usize,
    /// Responses a connection may have in flight before the reader stops
    /// pulling new requests off the socket (pipelining depth).
    inflight: usize,
}

fn listen(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut options = ServiceOptions::default();
    let mut limits = ConnLimits {
        io_timeout: Duration::from_secs(30),
        max_frame: 64 * 1024,
        inflight: 4,
    };
    let mut chaos = FaultInjector::disabled();
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take_value(args, &mut i, "--addr"),
            "--trace-out" => trace_out = Some(take_value(args, &mut i, "--trace-out")),
            "--workers" => {
                options.workers = parse_num(&take_value(args, &mut i, "--workers"), "--workers")
            }
            "--solve-threads" => {
                options.solve_threads = parse_num(
                    &take_value(args, &mut i, "--solve-threads"),
                    "--solve-threads",
                )
            }
            "--batch-max" => {
                options.batch_max =
                    parse_num(&take_value(args, &mut i, "--batch-max"), "--batch-max")
            }
            "--registry-capacity" => {
                options.registry_capacity = parse_num(
                    &take_value(args, &mut i, "--registry-capacity"),
                    "--registry-capacity",
                )
            }
            "--queue-cap" => {
                options.queue_cap =
                    parse_num(&take_value(args, &mut i, "--queue-cap"), "--queue-cap")
            }
            "--deadline-ms" => {
                let ms = parse_num(&take_value(args, &mut i, "--deadline-ms"), "--deadline-ms");
                options.default_deadline = (ms > 0).then(|| Duration::from_millis(ms as u64));
            }
            "--drain-timeout" => {
                options.drain_timeout = Duration::from_secs(parse_num(
                    &take_value(args, &mut i, "--drain-timeout"),
                    "--drain-timeout",
                ) as u64)
            }
            "--io-timeout" => {
                limits.io_timeout = Duration::from_secs(parse_num(
                    &take_value(args, &mut i, "--io-timeout"),
                    "--io-timeout",
                ) as u64)
            }
            "--max-frame" => {
                limits.max_frame =
                    parse_num(&take_value(args, &mut i, "--max-frame"), "--max-frame").max(64)
            }
            "--inflight" => {
                limits.inflight =
                    parse_num(&take_value(args, &mut i, "--inflight"), "--inflight").max(1)
            }
            "--chaos" => {
                let spec = take_value(args, &mut i, "--chaos");
                match FaultSpec::parse(&spec) {
                    Ok(spec) => chaos = FaultInjector::new(spec),
                    Err(e) => {
                        eprintln!("error: --chaos: {e}");
                        usage()
                    }
                }
            }
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    // One injector drives both layers: the service draws the worker-side
    // points (panic, slow, compile), the connection writers draw the
    // socket-side points (stall, disconnect) — all from one seed.
    options.faults = chaos.clone();
    let drain_timeout = options.drain_timeout;
    if trace_out.is_some() {
        ps_trace::enable();
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().expect("bound socket has an address");
    // The port line is the startup handshake scripts wait for.
    println!("listening on {local}");
    std::io::stdout().flush().ok();

    let service = Arc::new(Service::new(options));
    // Program names resolve to built-in sources; keys are precomputed so
    // the per-request path does no hashing of source text.
    let keys: Arc<HashMap<&'static str, ProgramKey>> = Arc::new(
        programs::ALL
            .iter()
            .map(|&(name, src)| (name, ProgramKey::new(src, RuntimeOptions::default())))
            .collect(),
    );

    let limits = Arc::new(limits);
    let chaos = Arc::new(chaos);
    let trace_out = Arc::new(trace_out);
    let table = Arc::new(ConnTable::new(drain_timeout));
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        // Refuse connections accepted after a drain began (the drain
        // coordinator exits the process; until then, just close).
        if table.draining.load(Ordering::SeqCst) {
            drop(stream);
            continue;
        }
        let Some(id) = table.register(&stream) else {
            continue;
        };
        let service = Arc::clone(&service);
        let keys = Arc::clone(&keys);
        let table = Arc::clone(&table);
        let limits = Arc::clone(&limits);
        let chaos = Arc::clone(&chaos);
        let trace_out = Arc::clone(&trace_out);
        std::thread::spawn(move || {
            let flow = serve_connection(stream, &service, &keys, &table, &limits, &chaos, id);
            table.deregister(id);
            if flow == Flow::Shutdown {
                // This thread won the drain: every other connection has
                // finished its in-flight frames and closed (see
                // `ConnTable`), so the process can end — after flushing
                // the trace rings, while the service still lives.
                if let Some(path) = trace_out.as_deref() {
                    match ps_trace::write_chrome_trace(path) {
                        Ok(n) => eprintln!("trace: wrote {n} events to {path}"),
                        Err(e) => eprintln!("trace: cannot write {path}: {e}"),
                    }
                }
                std::process::exit(0);
            }
        });
    }
    ExitCode::SUCCESS
}

#[derive(PartialEq)]
enum Flow {
    Closed,
    Shutdown,
}

/// One frame pulled off a connection.
enum Frame {
    Line(String),
    /// The line exceeded the frame limit; `0` bytes of it were kept. The
    /// payload is how much was buffered when the limit tripped.
    Oversized(usize),
    Closed,
}

/// A bounded, timeout-aware line reader: buffers at most `max_frame`
/// bytes looking for a newline; past it, the frame is reported oversized
/// and its remainder discarded (up to a hard budget) so one hostile line
/// cannot balloon memory or kill the connection.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameReader {
    fn next_frame(&mut self) -> Frame {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                if pos > self.max_frame {
                    // The newline arrived in the same read burst as the
                    // oversized payload: the whole frame is already
                    // buffered, so discarding is just dropping it.
                    self.buf.drain(..=pos);
                    return Frame::Oversized(pos);
                }
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Frame::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > self.max_frame {
                let had = self.buf.len();
                return if self.discard_to_newline() {
                    Frame::Oversized(had)
                } else {
                    Frame::Closed
                };
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Frame::Closed,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                // Read timeout or socket error: drop the connection. A
                // peer that goes silent mid-frame is indistinguishable
                // from a dead one.
                Err(_) => return Frame::Closed,
            }
        }
    }

    /// Swallow the rest of an oversized frame so the *next* line can be
    /// served. Bounded: a peer streaming more than 8× the frame limit
    /// with no newline is cut off instead of drained forever.
    fn discard_to_newline(&mut self) -> bool {
        let mut discarded = 0usize;
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                self.buf.drain(..=pos);
                return true;
            }
            discarded = discarded.saturating_add(self.buf.len());
            self.buf.clear();
            if discarded > self.max_frame.saturating_mul(8) {
                return false;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(_) => return false,
            }
        }
    }
}

/// One queued reply, written strictly in submission order.
enum Reply {
    Line(String),
    /// A pipelined solve; the writer blocks on the handle when its turn
    /// comes, so slow solves never reorder responses.
    Solve(ResponseHandle),
}

fn serve_connection(
    stream: TcpStream,
    service: &Service,
    keys: &HashMap<&'static str, ProgramKey>,
    table: &ConnTable,
    limits: &ConnLimits,
    chaos: &FaultInjector,
    my_id: u64,
) -> Flow {
    let _ = stream.set_read_timeout(Some(limits.io_timeout));
    let _ = stream.set_write_timeout(Some(limits.io_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return Flow::Closed;
    };
    let Ok(ctl) = stream.try_clone() else {
        return Flow::Closed;
    };
    // Writer thread: replies leave in submission order while the reader
    // keeps pulling requests — pipelining bounded by the in-flight cap
    // (the sync_channel depth). `dead` flips when the socket broke, so
    // the reader stops parsing requests whose replies can never land.
    let dead = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::sync_channel::<Reply>(limits.inflight);
    let writer = {
        let dead = Arc::clone(&dead);
        let chaos = chaos.clone();
        let stages = service.stages();
        std::thread::spawn(move || writer_loop(&write_half, &rx, &chaos, &dead, &stages))
    };
    let mut frames = FrameReader {
        stream,
        buf: Vec::new(),
        max_frame: limits.max_frame,
    };
    let mut flow = Flow::Closed;
    loop {
        if dead.load(Ordering::Relaxed) {
            break;
        }
        let line = match frames.next_frame() {
            Frame::Closed => break,
            Frame::Oversized(len) => {
                // Malformed-frame recovery: answer, keep the connection.
                let err = proto::format_error(&format!(
                    "frame exceeds {} bytes (got {len} and counting); request dropped",
                    limits.max_frame
                ));
                if tx.send(Reply::Line(err)).is_err() {
                    break;
                }
                continue;
            }
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        ps_trace::emit(
            EvKind::FrameRead,
            Phase::Instant,
            0,
            line.len() as u64,
            my_id,
        );
        let parse_t0 = ps_trace::enabled().then(Instant::now);
        let parsed = proto::parse_request_limited(&line, limits.max_frame);
        if let Some(t0) = parse_t0 {
            ps_trace::emit(
                EvKind::Parse,
                Phase::Complete,
                0,
                t0.elapsed().as_nanos() as u64,
                my_id,
            );
        }
        let reply = match parsed {
            Err(msg) => Reply::Line(proto::format_error(&msg)),
            Ok(proto::WireCommand::Quit) => break,
            Ok(proto::WireCommand::Shutdown) => {
                flow = Flow::Shutdown;
                break;
            }
            Ok(proto::WireCommand::Stats) => Reply::Line(stats_line(service, chaos)),
            Ok(proto::WireCommand::Solve { program, inputs }) => {
                match keys.get(program.trim_start_matches('@')) {
                    None => Reply::Line(proto::format_error(&format!(
                        "unknown program `{program}` (try psc --list)"
                    ))),
                    // Submit without waiting: the writer resolves the
                    // handle when this reply's turn comes.
                    Some(key) => {
                        Reply::Solve(service.submit(SolveRequest::new(key.clone(), inputs)))
                    }
                }
            }
        };
        if tx.send(reply).is_err() {
            break;
        }
    }
    // Let the writer flush every reply accepted so far (quit and shutdown
    // both promise in-flight responses), then close or coordinate.
    drop(tx);
    let _ = writer.join();
    if flow == Flow::Shutdown {
        let coordinator = table.begin_drain(my_id);
        if coordinator {
            // Every other connection finishes its in-flight frames and
            // closes before we acknowledge.
            table.wait_drained(my_id);
        }
        let mut w = BufWriter::new(ctl);
        let _ = writeln!(w, "ok bye");
        let _ = w.flush();
        if coordinator {
            return Flow::Shutdown;
        }
        // A concurrent shutdown already owns the drain; just acknowledge
        // and close this connection.
    }
    Flow::Closed
}

fn writer_loop(
    stream: &TcpStream,
    rx: &Receiver<Reply>,
    chaos: &FaultInjector,
    dead: &AtomicBool,
    stages: &ps_trace::StageSet,
) {
    let mut writer = BufWriter::new(stream);
    let mut broken = false;
    for reply in rx.iter() {
        if broken {
            // Keep draining so the reader can never wedge on a full
            // channel; dropped solve handles resolve in the service and
            // are simply discarded.
            continue;
        }
        let (line, span) = match reply {
            Reply::Line(line) => (line, 0),
            Reply::Solve(handle) => {
                let span = handle.trace_span();
                let line = match handle.wait() {
                    Ok(outputs) => proto::format_outputs(&outputs),
                    Err(e) => proto::format_error(&e.to_string()),
                };
                (line, span)
            }
        };
        // Reply stage: serialization already happened above; time the
        // write + flush (the socket side of answering), per solve reply.
        let reply_t0 = ps_trace::enabled().then(Instant::now);
        if chaos.should_fire(FaultPoint::SocketStall) {
            ps_trace::emit(
                EvKind::Fault,
                Phase::Instant,
                span,
                ps_trace::label_if_enabled("socket_stall"),
                0,
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        if chaos.should_fire(FaultPoint::MidFrameDisconnect) {
            // A hostile server-side death: half the reply, then the
            // socket drops. Clients must treat the partial line as a
            // failed request and retry on a fresh connection.
            ps_trace::emit(
                EvKind::Fault,
                Phase::Instant,
                span,
                ps_trace::label_if_enabled("mid_frame_disconnect"),
                0,
            );
            let _ = writer.write_all(&line.as_bytes()[..line.len() / 2]);
            let _ = writer.flush();
            let _ = stream.shutdown(Shutdown::Both);
            broken = true;
            dead.store(true, Ordering::Relaxed);
            continue;
        }
        if writeln!(writer, "{line}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            broken = true;
            dead.store(true, Ordering::Relaxed);
        }
        if let Some(t0) = reply_t0 {
            let took = t0.elapsed();
            ps_trace::emit(
                EvKind::Reply,
                Phase::Complete,
                span,
                took.as_nanos() as u64,
                span,
            );
            if span != 0 {
                stages.record(ps_trace::Stage::Reply, took);
            }
        }
    }
}

fn stats_line(service: &Service, chaos: &FaultInjector) -> String {
    let s = service.stats();
    let mut line = format!(
        "ok requests={} rejected={} responses={} errors={} panics={} deadline_expired={} \
         batches={} max_batch={} queue_depth={} compiles={} cache_hits={} \
         cache_evictions={} p50_us={} p99_us={}",
        s.requests,
        s.rejected,
        s.responses,
        s.errors,
        s.panics,
        s.deadline_expired,
        s.batches,
        s.max_batch,
        s.queue_depth,
        s.compiles,
        s.cache_hits,
        s.cache_evictions,
        s.p50.as_micros(),
        s.p99.as_micros()
    );
    // Executor-level counters (the shared solve pool, when one exists):
    // proof of overlap, stealing, and genuine cancellation under load.
    if let Some(pool) = service.pool_stats() {
        line.push_str(&format!(
            " steals={} max_live_regions={} cancelled_chunks={}",
            pool.steals, pool.max_live_regions, pool.cancelled_chunks
        ));
    }
    // Per-stage latency histograms (populated while tracing is on).
    line.push_str(&format!(" stages={}", s.stages.wire_form()));
    if chaos.is_enabled() {
        line.push_str(&format!(" chaos={}", chaos.summary()));
    }
    line
}

// ---- load generator ----

fn load(args: &[String]) -> ExitCode {
    let mut addr = String::new();
    let mut clients = 2usize;
    let mut requests = 32usize;
    let mut program = "recurrence_1d".to_string();
    let mut params: Vec<String> = Vec::new();
    let mut vary: Option<(String, i64, i64)> = None;
    let mut seed = 0x5EED_u64;
    let mut retries = 4u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take_value(args, &mut i, "--addr"),
            "--clients" => clients = parse_num(&take_value(args, &mut i, "--clients"), "--clients"),
            "--requests" => {
                requests = parse_num(&take_value(args, &mut i, "--requests"), "--requests")
            }
            "--program" => program = take_value(args, &mut i, "--program"),
            "--param" => params.push(take_value(args, &mut i, "--param")),
            "--seed" => seed = parse_num(&take_value(args, &mut i, "--seed"), "--seed") as u64,
            "--retries" => {
                retries = parse_num(&take_value(args, &mut i, "--retries"), "--retries") as u32
            }
            "--vary" => {
                let spec = take_value(args, &mut i, "--vary");
                let parsed = spec.split_once('=').and_then(|(name, range)| {
                    let (lo, hi) = range.split_once(':')?;
                    Some((name.to_string(), lo.parse().ok()?, hi.parse().ok()?))
                });
                match parsed {
                    Some(v) if v.1 <= v.2 => vary = Some(v),
                    _ => {
                        eprintln!("error: --vary wants name=lo:hi, got `{spec}`");
                        usage()
                    }
                }
            }
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    if addr.is_empty() {
        eprintln!("error: load needs --addr");
        usage()
    }
    if params.is_empty() {
        params = default_params(&program);
    }

    let started = Instant::now();
    let mut total = ClientReport::default();
    let results: Vec<Result<ClientReport, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|c| {
                let addr = addr.clone();
                let program = program.clone();
                let params = params.clone();
                let vary = vary.clone();
                scope.spawn(move || {
                    client_loop(&addr, &program, &params, &vary, requests, c, seed, retries)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for r in &results {
        match r {
            Ok(report) => {
                total.ok += report.ok;
                total.err += report.err;
                total.retries += report.retries;
                total.reconnects += report.reconnects;
            }
            Err(e) => {
                eprintln!("client error: {e}");
                total.err += 1;
            }
        }
    }
    let elapsed = started.elapsed();
    let rate = total.ok as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "load: {clients} clients x {requests} requests -> {} ok, {} err, {} retries, \
         {} reconnects in {:.1} ms ({rate:.0} req/s)",
        total.ok,
        total.err,
        total.retries,
        total.reconnects,
        elapsed.as_secs_f64() * 1e3
    );
    // One stats probe so operators (and the verify script) see the
    // registry behave: warm traffic must hit, not recompile.
    match probe_stats(&addr) {
        Ok(line) => {
            println!("server {line}");
            // Pull the degradation/overlap counters into one summary line
            // so a load run's outcome is readable without parsing the
            // whole stats reply.
            let picks = [
                "rejected",
                "deadline_expired",
                "panics",
                "steals",
                "max_live_regions",
                "cancelled_chunks",
            ];
            let shed: Vec<String> = picks
                .iter()
                .filter_map(|k| stat_field(&line, k).map(|v| format!("{k}={v}")))
                .collect();
            println!("shed/overlap: {}", shed.join(" "));
        }
        Err(e) => eprintln!("stats probe failed: {e}"),
    }
    if total.err == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Default parameter lists making every scalar-input built-in loadable
/// out of the box.
fn default_params(program: &str) -> Vec<String> {
    match program {
        "recurrence_1d" => vec!["rate=0.05".into(), "n=64".into()],
        "table_2d" => vec!["n=24".into()],
        _ => Vec::new(),
    }
}

#[derive(Default)]
struct ClientReport {
    ok: u64,
    err: u64,
    /// Send attempts beyond the first (shed responses and reconnects).
    retries: u64,
    /// Fresh connections dialled after the server dropped one mid-frame.
    reconnects: u64,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn connect(addr: &str) -> Result<Conn, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    Ok(Conn {
        reader,
        writer: BufWriter::new(stream),
    })
}

/// Send one request line and read its response. `Err` means the
/// connection is unusable (EOF, socket error, or a mid-frame disconnect
/// leaving a partial line) and the caller must redial to retry.
fn send_recv(conn: &mut Conn, line: &str) -> Result<String, String> {
    writeln!(conn.writer, "{line}").map_err(|e| e.to_string())?;
    conn.writer.flush().map_err(|e| e.to_string())?;
    let mut response = String::new();
    let n = conn
        .reader
        .read_line(&mut response)
        .map_err(|e| e.to_string())?;
    if n == 0 {
        return Err("server closed the connection".into());
    }
    if !response.ends_with('\n') {
        return Err("connection dropped mid-response".into());
    }
    Ok(response)
}

/// Responses worth re-sending: transient shedding, not real failures.
fn retryable(response: &str) -> bool {
    response.starts_with("err service queue is full")
        || response.starts_with("err deadline exceeded")
}

/// Seeded jittered exponential backoff: ~2^attempt ms (capped at 64 ms),
/// ±50% jitter from the client's LCG, so retry storms decorrelate
/// deterministically under a fixed seed.
fn backoff(rng: &mut Lcg, attempt: u32) {
    let base_us = 1000u64 << attempt.min(6);
    let jitter = rng.int(-(base_us as i64) / 2, base_us as i64 / 2);
    std::thread::sleep(Duration::from_micros(
        (base_us as i64 + jitter).max(100) as u64
    ));
}

#[allow(clippy::too_many_arguments)]
fn client_loop(
    addr: &str,
    program: &str,
    params: &[String],
    vary: &Option<(String, i64, i64)>,
    requests: usize,
    client: usize,
    seed: u64,
    max_retries: u32,
) -> Result<ClientReport, String> {
    let mut rng = Lcg::new(seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut conn = connect(addr)?;
    let mut report = ClientReport::default();
    for r in 0..requests {
        let mut line = format!("solve {program}");
        for p in params {
            line.push(' ');
            line.push_str(p);
        }
        if let Some((name, lo, hi)) = vary {
            // Deterministic per-client cycle through the varied range.
            let span = (hi - lo + 1).max(1);
            let v = lo + ((client * 31 + r) as i64 % span);
            line.push_str(&format!(" {name}={v}"));
        }
        let mut attempt = 0u32;
        loop {
            match send_recv(&mut conn, &line) {
                Ok(response) if response.starts_with("ok") => {
                    report.ok += 1;
                    break;
                }
                Ok(response) if retryable(&response) && attempt < max_retries => {
                    attempt += 1;
                    report.retries += 1;
                    backoff(&mut rng, attempt);
                }
                Ok(response) => {
                    report.err += 1;
                    if report.err <= 3 {
                        eprintln!("client {client}: {}", response.trim_end());
                    }
                    break;
                }
                Err(_) if attempt < max_retries => {
                    // The connection died (server chaos, or a mid-frame
                    // drop): dial a fresh one and re-send after backoff.
                    attempt += 1;
                    report.retries += 1;
                    report.reconnects += 1;
                    backoff(&mut rng, attempt);
                    conn = connect(addr)?;
                }
                Err(e) => return Err(e),
            }
        }
    }
    writeln!(conn.writer, "quit").ok();
    conn.writer.flush().ok();
    Ok(report)
}

/// Extract `key=value` from a stats reply line (`None` when the server
/// didn't report the key, e.g. no shared pool → no `steals=`).
fn stat_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn probe_stats(addr: &str) -> Result<String, String> {
    // The stats reply flows through the same (possibly chaotic) writer as
    // solve responses; a few redials keep the probe reliable under
    // injected disconnects.
    let mut last_err = String::new();
    for _ in 0..5 {
        let attempt = (|| {
            let mut conn = connect(addr)?;
            let line = send_recv(&mut conn, "stats")?;
            writeln!(conn.writer, "quit").ok();
            conn.writer.flush().ok();
            Ok(line.trim_end().to_string())
        })();
        match attempt {
            Ok(line) => return Ok(line),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

// ---- remote shutdown ----

fn shutdown(args: &[String]) -> ExitCode {
    let mut addr = String::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = take_value(args, &mut i, "--addr"),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    if addr.is_empty() {
        eprintln!("error: shutdown needs --addr");
        usage()
    }
    let Ok(stream) = TcpStream::connect(&addr) else {
        eprintln!("error: cannot connect {addr}");
        return ExitCode::FAILURE;
    };
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    if writeln!(writer, "shutdown")
        .and_then(|_| writer.flush())
        .is_err()
    {
        return ExitCode::FAILURE;
    }
    let mut line = String::new();
    reader.read_line(&mut line).ok();
    println!("{}", line.trim_end());
    ExitCode::SUCCESS
}
