//! `ps-trace` — summarize a Chrome `trace_event` file written by
//! `ps-serve --trace-out` (or [`ps_trace::write_chrome_trace`]).
//!
//! ```text
//! ps-trace summarize FILE    validate + per-stage p50/p99, steal and
//!                            region-overlap counters, top spans by time
//! ps-trace validate FILE     JSON well-formedness check only
//! ```
//!
//! Exits nonzero when the file is missing, not valid JSON, or not a trace
//! array — the verify script leans on that to prove exported traces stay
//! machine-readable.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage:\n  ps-trace summarize FILE\n  ps-trace validate FILE");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(cmd), Some(path)) if args.len() == 2 => (cmd.as_str(), path.as_str()),
        _ => return usage(),
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "validate" => match ps_trace::validate_json(&text) {
            Ok(()) => {
                println!("{path}: valid JSON");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        },
        "summarize" => match ps_trace::parse_trace(&text) {
            Ok(records) => {
                print!("{}", ps_trace::summarize(&records));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
