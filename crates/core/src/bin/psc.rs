//! `psc` — the PS compiler command line.
//!
//! ```text
//! psc <file.ps | @builtin> [--emit c|flowchart|depgraph|components|hir|memory]
//!     [--hyperplane windowed|full] [--fuse] [--prefer-parallel]
//! psc --list                 list built-in programs
//! psc --equation '<tex>'     translate TeX-style recurrence to PS
//! ```

use ps_core::{compile, programs, CompileOptions, StorageMode};
use ps_scheduler::PickPolicy;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: psc <file.ps | @builtin> [options]\n\
         \n\
         options:\n\
           --emit c|flowchart|depgraph|components|hir|memory   (default: flowchart)\n\
           --hyperplane windowed|full   apply the Section-4 transformation\n\
           --fuse                       run the loop-fusion post-pass\n\
           --prefer-parallel            pick dimensions that yield DOALL first\n\
           --list                       list built-in programs (@name)\n\
           --equation '<tex>'           translate e.g. 'A^{{k}}_{{i,j}} = ...' to PS"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    if args[0] == "--list" {
        for (name, _) in programs::ALL {
            println!("@{name}");
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "--equation" {
        let Some(eq) = args.get(1) else { usage() };
        match ps_core::translate_equation(eq, "Translated") {
            Ok(ps) => {
                println!("{ps}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let input = &args[0];
    let mut emit = "flowchart".to_string();
    let mut options = CompileOptions::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--emit" => {
                i += 1;
                emit = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--hyperplane" => {
                i += 1;
                options.hyperplane = match args.get(i).map(|s| s.as_str()) {
                    Some("windowed") => Some(StorageMode::Windowed),
                    Some("full") => Some(StorageMode::Full),
                    _ => usage(),
                };
            }
            "--fuse" => options.schedule.fuse_loops = true,
            "--prefer-parallel" => options.schedule.pick = PickPolicy::PreferParallel,
            _ => usage(),
        }
        i += 1;
    }

    let source = if let Some(name) = input.strip_prefix('@') {
        match programs::ALL.iter().find(|(n, _)| *n == name) {
            Some((_, src)) => src.to_string(),
            None => {
                eprintln!("unknown built-in `@{name}`; try --list");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match std::fs::read_to_string(input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let comp = match compile(&source, options) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    match emit.as_str() {
        "c" => {
            print!("{}", comp.c_code);
            if let Some(t) = &comp.transformed {
                println!("\n/* ---- transformed (hyperplane) version ---- */\n");
                print!("{}", t.c_code);
            }
        }
        "flowchart" => {
            print!("{}", ps_core::report::figure6or7(&comp));
            if comp.transformed.is_some() {
                println!();
                print!("{}", ps_core::report::section4(&comp));
            }
        }
        "depgraph" => print!("{}", ps_core::report::figure3(&comp)),
        "components" => print!("{}", ps_core::report::figure5(&comp)),
        "memory" => {
            print!(
                "{}",
                ps_scheduler::render::render_memory_plan(&comp.module, &comp.schedule)
            );
        }
        "hir" => print!("{}", ps_lang::print::print_hir(&comp.module)),
        other => {
            eprintln!("unknown --emit target `{other}`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
