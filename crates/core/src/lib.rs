//! `ps-core` — the public façade of the PS compiler reproduction.
//!
//! This crate wires the full pipeline of Gokhale's ICPP'87 paper together:
//!
//! ```text
//!        ps-lang          ps-depgraph        ps-scheduler
//! source ──────▶ HIR ───────────▶ dep graph ───────────▶ DO/DOALL flowchart
//!                                                  │            │
//!                     ps-hyperplane (Section 4) ◀──┘            ├─▶ ps-codegen (C)
//!                      wavefront transform                      └─▶ ps-runtime (execute)
//! ```
//!
//! Quick start:
//!
//! ```
//! use ps_core::{compile, programs, CompileOptions};
//!
//! let comp = compile(programs::RELAXATION_V1, CompileOptions::default()).unwrap();
//! let fc = comp.compact_flowchart();
//! assert!(fc.starts_with("DOALL I (DOALL J (eq.1))"));
//! ```
//!
//! # Compile once, run many
//!
//! Execution splits along the compile/run seam: [`Program::compile`]
//! performs schedule analysis, store layout planning, and tape lowering
//! exactly once, and [`Program::run`] serves each request by binding
//! parameter registers and executing against pooled run state — the shape
//! a service answering many small solves needs. `&Program` is
//! `Send + Sync`, so worker threads share one artifact. [`execute`] /
//! [`execute_transformed`] remain as compile-and-run-once conveniences.
//!
//! # Serving many clients
//!
//! On top of that seam, [`Service`] (re-exported from `ps-service`) is the
//! embeddable concurrent solve service: a lock-free compile-once
//! [`Registry`] keyed by `(source, RuntimeOptions)`, worker threads that
//! micro-batch requests sharing a program onto one pooled run-slot
//! session, panic isolation at the request boundary, and p50/p99 latency
//! counters. The `ps-serve` binary puts a newline-delimited TCP protocol
//! plus a load generator in front of it.
//!
//! See `examples/` for runnable end-to-end programs (`quickstart.rs`
//! demonstrates the compile-once / run-many API, `solve_service.rs` the
//! embedded service) and `ps-bench` for the benchmark harness
//! regenerating every figure of the paper (`exec_manyrun` measures the
//! amortization, `exec_serve` the service throughput).

pub mod pipeline;
pub mod programs;
pub mod report;

pub use pipeline::{
    analyze, compile, execute, execute_transformed, Compilation, CompileError, CompileOptions,
    Program, TransformedArtifacts,
};

// Re-export the building blocks so downstream users need one dependency.
pub use ps_codegen::{emit_main, emit_module, CodegenOptions};
pub use ps_depgraph::{build_depgraph, DepGraph};
pub use ps_eqfront::translate_equation;
pub use ps_executor::{
    CancelToken, Cancelled, Executor, PoolStatsSnapshot, Sequential, ThreadPool,
};
pub use ps_hyperplane::{
    find_recursive_target, hyperplane_transform, schedule_transformed, HyperplaneResult,
    StorageMode,
};
pub use ps_lang::{frontend, HirModule};
pub use ps_runtime::{
    analyze_compiled, run_module, run_naive, AnalysisLevel, AnalysisReport, AnalysisVerdict,
    Engine, Inputs, Outputs, OwnedArray, RuntimeOptions, StoreArena, StorePlan, Value,
};
pub use ps_scheduler::{
    schedule_module, validate_flowchart, Flowchart, MemoryPlan, PickPolicy, ScheduleOptions,
    ScheduleResult,
};
pub use ps_service::{
    proto, CompiledProgram, ProgramKey, Registry, ResponseHandle, Service, ServiceError,
    ServiceOptions, ServiceStats, SolveError, SolveRequest,
};
pub use ps_support::faults::{FaultInjector, FaultPoint, FaultSpec};
pub use ps_support::rng::Lcg;
// The tracing layer is a façade citizen too: embedders enable it, export
// Chrome traces, and read per-stage histograms through one dependency.
pub use ps_trace;
