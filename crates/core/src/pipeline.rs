//! The end-to-end compile pipeline.

use ps_codegen::{emit_module, CodegenOptions};
use ps_depgraph::{build_depgraph, DepGraph};
use ps_executor::Executor;
use ps_hyperplane::{
    find_recursive_target, hyperplane_transform, schedule_transformed, HyperplaneError,
    HyperplaneResult, StorageMode,
};
use ps_lang::HirModule;
use ps_runtime::{run_module, Inputs, Outputs, RuntimeOptions};
use ps_scheduler::{schedule_module, ScheduleError, ScheduleOptions, ScheduleResult};
use ps_support::{DiagnosticSink, SourceMap};

/// Options for [`compile`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileOptions {
    pub schedule: ScheduleOptions,
    /// Apply the Section-4 hyperplane transformation to the (unique)
    /// recursive array, producing [`Compilation::transformed`].
    pub hyperplane: Option<StorageMode>,
    pub codegen: CodegenOptions,
}

/// Pipeline failure.
#[derive(Debug)]
pub enum CompileError {
    /// Lexing / parsing / type checking failed; rendered diagnostics.
    Frontend(String),
    Schedule(ScheduleError),
    Hyperplane(HyperplaneError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Frontend(s) => write!(f, "front end:\n{s}"),
            CompileError::Schedule(e) => write!(f, "scheduler: {e}"),
            CompileError::Hyperplane(e) => write!(f, "hyperplane: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Artifacts of the hyperplane transformation.
pub struct TransformedArtifacts {
    pub result: HyperplaneResult,
    pub schedule: ScheduleResult,
    pub c_code: String,
}

/// Everything produced for one module.
pub struct Compilation {
    pub module: HirModule,
    pub depgraph: DepGraph,
    pub schedule: ScheduleResult,
    pub c_code: String,
    pub transformed: Option<TransformedArtifacts>,
}

impl Compilation {
    /// One-line flowchart with `eq.N` labels (Figure 6/7 compact form).
    pub fn compact_flowchart(&self) -> String {
        self.schedule
            .flowchart
            .compact(&|e| self.module.equations[e].label.clone())
    }

    /// Compact flowchart of the transformed program, when present.
    pub fn transformed_flowchart(&self) -> Option<String> {
        self.transformed.as_ref().map(|t| {
            t.schedule
                .flowchart
                .compact(&|e| t.result.module.equations[e].label.clone())
        })
    }
}

/// Compile a single-module source string through the full pipeline.
pub fn compile(source: &str, options: CompileOptions) -> Result<Compilation, CompileError> {
    let mut sources = SourceMap::new();
    let file = sources.add_file("<input>", source);
    let sink = DiagnosticSink::new();
    let tokens = ps_lang::lexer::lex(source, &sink);
    let program = ps_lang::parser::parse_program(&tokens, &sink);
    if sink.has_errors() {
        return Err(CompileError::Frontend(sink.render_all(file, &sources)));
    }
    let Some(ast) = program.modules.into_iter().next() else {
        return Err(CompileError::Frontend("no module in source".into()));
    };
    let module = ps_lang::check::check_module(&ast, &sink);
    if sink.has_errors() {
        return Err(CompileError::Frontend(sink.render_all(file, &sources)));
    }
    let module = module.expect("no errors implies a module");

    let depgraph = build_depgraph(&module);
    let schedule =
        schedule_module(&module, &depgraph, options.schedule).map_err(CompileError::Schedule)?;
    let c_code = emit_module(
        &module,
        &schedule.flowchart,
        &schedule.memory,
        options.codegen,
    );

    let transformed = match options.hyperplane {
        None => None,
        Some(mode) => {
            let target = find_recursive_target(&module)
                .ok_or(CompileError::Hyperplane(HyperplaneError::NoRecursiveArray))?;
            let result =
                hyperplane_transform(&module, target, mode).map_err(CompileError::Hyperplane)?;
            let tsched = schedule_transformed(&result, options.schedule)
                .map_err(CompileError::Hyperplane)?;
            let tc = emit_module(
                &result.module,
                &tsched.flowchart,
                &tsched.memory,
                options.codegen,
            );
            Some(TransformedArtifacts {
                result,
                schedule: tsched,
                c_code: tc,
            })
        }
    };

    Ok(Compilation {
        module,
        depgraph,
        schedule,
        c_code,
        transformed,
    })
}

/// A reusable, shareable execution artifact: compile once, run many.
///
/// Wraps [`ps_runtime::Program`] over a [`Compilation`]'s scheduled (or
/// transformed) module. Construction performs store layout planning and
/// tape lowering exactly once; [`Program::run`] binds parameters,
/// instantiates pooled storage, and executes. `&Program` is
/// `Send + Sync`, so independent runs may execute concurrently from
/// multiple threads sharing one artifact.
///
/// ```
/// use ps_core::{compile, programs, CompileOptions, Program};
/// use ps_core::{Inputs, RuntimeOptions, Sequential};
///
/// let comp = compile(programs::RECURRENCE_1D, CompileOptions::default()).unwrap();
/// let prog = Program::compile(&comp, RuntimeOptions::default());
/// let a = prog
///     .run(&Inputs::new().set_real("rate", 0.5).set_int("n", 10), &Sequential)
///     .unwrap();
/// let b = prog
///     .run(&Inputs::new().set_real("rate", 0.25).set_int("n", 20), &Sequential)
///     .unwrap();
/// assert!((a.scalar("final").as_real() - 1.5f64.powi(9)).abs() < 1e-9);
/// assert!((b.scalar("final").as_real() - 1.25f64.powi(19)).abs() < 1e-9);
/// ```
pub struct Program<'c> {
    inner: ps_runtime::Program<'c>,
}

impl<'c> Program<'c> {
    /// Compile the reusable artifact for `comp`'s scheduled module.
    ///
    /// Panics if [`ps_runtime::AnalysisLevel::Verify`] rejects the
    /// program; use [`Program::try_compile`] to receive the diagnostics.
    pub fn compile(comp: &'c Compilation, options: RuntimeOptions) -> Program<'c> {
        Program {
            inner: ps_runtime::Program::new(
                &comp.module,
                &comp.schedule.flowchart,
                &comp.schedule.memory,
                options,
            ),
        }
    }

    /// Like [`Program::compile`], but surfaces static-verifier
    /// rejections (rendered `E06xx` diagnostics) as an error.
    pub fn try_compile(
        comp: &'c Compilation,
        options: RuntimeOptions,
    ) -> Result<Program<'c>, ps_runtime::store::RuntimeError> {
        Ok(Program {
            inner: ps_runtime::Program::try_new(
                &comp.module,
                &comp.schedule.flowchart,
                &comp.schedule.memory,
                options,
            )?,
        })
    }

    /// Number of arrays the static verifier proved safe for tag elision
    /// (zero when analysis is off).
    pub fn verified_arrays(&self) -> usize {
        self.inner.verified_arrays()
    }

    /// Compile the artifact for `comp`'s hyperplane-transformed module.
    ///
    /// # Panics
    /// When `comp` was compiled without [`CompileOptions::hyperplane`].
    pub fn compile_transformed(comp: &'c Compilation, options: RuntimeOptions) -> Program<'c> {
        let t = comp
            .transformed
            .as_ref()
            .expect("compilation has no transformed artifacts");
        Program {
            inner: ps_runtime::Program::new(
                &t.result.module,
                &t.schedule.flowchart,
                &t.schedule.memory,
                options,
            ),
        }
    }

    /// Execute one run. Reentrant and thread-safe.
    pub fn run(
        &self,
        inputs: &Inputs,
        executor: &dyn Executor,
    ) -> Result<Outputs, ps_runtime::store::RuntimeError> {
        self.inner.run(inputs, executor)
    }

    /// Number of parameter layouts specialized so far (1 in a steady
    /// serving loop over one shape).
    pub fn specialization_count(&self) -> usize {
        self.inner.specialization_count()
    }
}

/// Run the `ps-analyze` static verifier over `comp`'s scheduled module:
/// def-before-use, in-bounds addressing, and `DOALL` write-disjointness,
/// proven per scheduled region from the compiled tapes. The report
/// carries one verdict per array plus any `E06xx` diagnostics.
pub fn analyze(comp: &Compilation) -> ps_runtime::AnalysisReport {
    ps_runtime::analyze_compiled(
        &comp.module,
        &comp.schedule.flowchart,
        &comp.schedule.memory,
    )
}

/// Execute a compiled module on the given inputs (compile-and-run-once;
/// hold a [`Program`] to amortize over many runs).
pub fn execute(
    comp: &Compilation,
    inputs: &Inputs,
    executor: &dyn Executor,
    options: RuntimeOptions,
) -> Result<Outputs, ps_runtime::store::RuntimeError> {
    run_module(
        &comp.module,
        &comp.schedule.flowchart,
        &comp.schedule.memory,
        inputs,
        executor,
        options,
    )
}

/// Execute the transformed (wavefront) program of a compilation.
pub fn execute_transformed(
    comp: &Compilation,
    inputs: &Inputs,
    executor: &dyn Executor,
    options: RuntimeOptions,
) -> Result<Outputs, ps_runtime::store::RuntimeError> {
    let t = comp
        .transformed
        .as_ref()
        .expect("compilation has no transformed artifacts");
    run_module(
        &t.result.module,
        &t.schedule.flowchart,
        &t.schedule.memory,
        inputs,
        executor,
        options,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use ps_executor::Sequential;
    use ps_runtime::OwnedArray;

    #[test]
    fn full_pipeline_v1() {
        let comp = compile(programs::RELAXATION_V1, CompileOptions::default()).unwrap();
        assert_eq!(
            comp.compact_flowchart(),
            "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); \
             DOALL I (DOALL J (eq.2))"
        );
        assert!(comp.c_code.contains("void ps_Relaxation"));
        assert!(comp.transformed.is_none());
    }

    #[test]
    fn full_pipeline_v2_with_hyperplane() {
        let comp = compile(
            programs::RELAXATION_V2,
            CompileOptions {
                hyperplane: Some(StorageMode::Windowed),
                ..Default::default()
            },
        )
        .unwrap();
        // Untransformed: Figure 7 (fully iterative).
        assert!(comp
            .compact_flowchart()
            .contains("DO K (DO I (DO J (eq.3)))"));
        // Transformed: wavefront with a drain.
        let t = comp.transformed_flowchart().unwrap();
        assert!(
            t.contains("DO K' (DOALL I' (DOALL J' (eq.3)); DRAIN K')"),
            "{t}"
        );
        let art = comp.transformed.as_ref().unwrap();
        assert_eq!(art.result.pi, vec![2, 1, 1]);
        assert!(art.c_code.contains("ps_Relaxation2"));
    }

    #[test]
    fn execute_pipeline_end_to_end() {
        let comp = compile(programs::RECURRENCE_1D, CompileOptions::default()).unwrap();
        let out = execute(
            &comp,
            &Inputs::new().set_real("rate", 0.5).set_int("n", 10),
            &Sequential,
            RuntimeOptions::default(),
        )
        .unwrap();
        let expected = 1.5f64.powi(9);
        assert!((out.scalar("final").as_real() - expected).abs() < 1e-9);
    }

    #[test]
    fn frontend_errors_are_reported() {
        let Err(err) = compile(
            "T: module (): [y: int]; define y = zzz; end T;",
            Default::default(),
        ) else {
            panic!("expected a frontend error");
        };
        match err {
            CompileError::Frontend(s) => assert!(s.contains("E0246"), "{s}"),
            other => panic!("expected frontend error, got {other}"),
        }
    }

    #[test]
    fn gather_program_executes() {
        let comp = compile(programs::GATHER, CompileOptions::default()).unwrap();
        let out = execute(
            &comp,
            &Inputs::new()
                .set_int("n", 4)
                .set_array(
                    "xs",
                    OwnedArray::real(vec![(1, 4)], vec![10.0, 20.0, 30.0, 40.0]),
                )
                .set_array("perm", OwnedArray::int(vec![(1, 4)], vec![4, 3, 2, 1])),
            &Sequential,
            RuntimeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.array("out").as_real_slice(), &[40.0, 30.0, 20.0, 10.0]);
    }

    #[test]
    fn table_2d_full_mode_transform() {
        let comp = compile(
            programs::TABLE_2D,
            CompileOptions {
                hyperplane: Some(StorageMode::Full),
                ..Default::default()
            },
        )
        .unwrap();
        let art = comp.transformed.as_ref().unwrap();
        assert_eq!(art.result.pi, vec![1, 1], "anti-diagonal wavefront");
        // Executing both versions gives the same corner value.
        let inputs = Inputs::new().set_int("n", 8);
        let base = execute(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
        let wave =
            execute_transformed(&comp, &inputs, &Sequential, RuntimeOptions::default()).unwrap();
        assert_eq!(
            base.scalar("corner").as_real(),
            wave.scalar("corner").as_real()
        );
    }
}
