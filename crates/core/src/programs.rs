//! Built-in PS programs: the paper's two Relaxation variants plus a small
//! library of example modules used by tests, examples, and benches.

/// Figure 1: point relaxation with all reads from the previous iteration
/// (Jacobi). Schedules to Figure 6: `DO K (DOALL I (DOALL J))`.
pub const RELAXATION_V1: &str = "
Relaxation: module (InitialA: array[I,J] of real;
                    M: int; maxK: int):
            [newA: array[I,J] of real];
type
    I, J = 0 .. M+1;
    K = 2 .. maxK;
var
    A: array [1 .. maxK] of array[I,J] of real;
define
    (*eq.1*) A[1] = InitialA;            (* the first grid is input *)
    (*eq.2*) newA = A[maxK];             (* the grid returned is from the last iteration *)
    (*eq.3*) A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                        then A[K-1,I,J]  (* carry over boundary points *)
                        else ( A[K-1,I,J-1]
                             + A[K-1,I-1,J]
                             + A[K-1,I,J+1]
                             + A[K-1,I+1,J] ) / 4;
end Relaxation;
";

/// Section 4's revised equation 3 (Gauss–Seidel): two reads from the
/// *current* iteration. Schedules to Figure 7: fully iterative
/// `DO K (DO I (DO J))` — until the hyperplane transform recovers
/// `DO K' (DOALL I' (DOALL J'))`.
pub const RELAXATION_V2: &str = "
Relaxation2: module (InitialA: array[I,J] of real;
                     M: int; maxK: int):
             [newA: array[I,J] of real];
type
    I, J = 0 .. M+1;
    K = 2 .. maxK;
var
    A: array [1 .. maxK] of array[I,J] of real;
define
    (*eq.1*) A[1] = InitialA;
    (*eq.2*) newA = A[maxK];
    (*eq.3*) A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                        then A[K-1,I,J]
                        else ( A[K,I,J-1]
                             + A[K,I-1,J]
                             + A[K-1,I,J+1]
                             + A[K-1,I+1,J] ) / 4;
end Relaxation2;
";

/// 1-D heat diffusion (explicit scheme): a Jacobi-style recurrence over a
/// rod, used by the heat example and the 1-D benches.
pub const HEAT_1D: &str = "
Heat: module (u0: array[X] of real; M: int; maxK: int; alpha: real):
      [uT: array[X] of real];
type
    X = 0 .. M+1;
    K = 2 .. maxK;
var
    u: array [1 .. maxK] of array[X] of real;
define
    u[1] = u0;
    uT = u[maxK];
    u[K,X] = if (X = 0) or (X = M+1)
             then u[K-1,X]
             else u[K-1,X] + alpha * (u[K-1,X-1] - 2.0 * u[K-1,X] + u[K-1,X+1]);
end Heat;
";

/// First-order linear recurrence (prefix product): inherently sequential in
/// its single dimension; window 2.
pub const RECURRENCE_1D: &str = "
Compound: module (rate: real; n: int): [final: real];
type
    K = 2 .. n;
var
    balance: array [1 .. n] of real;
define
    balance[1] = 1.0;
    balance[K] = balance[K-1] * (1.0 + rate);
    final = balance[n];
end Compound;
";

/// Independent pointwise pipelines: everything parallel, exercises fusion.
pub const PIPELINE: &str = "
Pipeline: module (xs: array[I] of real; n: int): [out: array[I] of real];
type
    I, L, T = 1 .. n;
var
    scaled, shifted: array [1 .. n] of real;
define
    scaled[I] = xs[I] * 2.0;
    shifted[L] = scaled[L] + 1.0;
    out[T] = sqrt(abs(shifted[T]));
end Pipeline;
";

/// Smoothing with a dynamic (indirect) gather — exercises `other`-form
/// subscripts and dynamic reads.
pub const GATHER: &str = "
Gather: module (xs: array[I] of real; perm: array[I] of int; n: int):
        [out: array[I] of real];
type
    I = 1 .. n;
define
    out[I] = xs[perm[I]];
end Gather;
";

/// Wavefront over a 2-D table (longest-common-subsequence shape): both
/// spatial dimensions carry dependences, so the untransformed schedule is
/// fully iterative and the hyperplane transform finds `t = i + j`.
pub const TABLE_2D: &str = "
Table: module (n: int): [corner: real];
type
    I, J = 2 .. n;
var
    t: array [1 .. n, 1 .. n] of real;
define
    t[1] = 1.0;
    t[I, 1] = 1.0;
    t[I, J] = (t[I-1, J] + t[I, J-1]) / 2.0;
    corner = t[n, n];
end Table;
";

/// 1-D wave equation (second order in time): reads both `K-1` and `K-2`
/// planes, so the window analysis allocates three rod-length planes.
pub const WAVE_1D: &str = "
Wave: module (u0: array[X] of real; M: int; maxK: int; c2: real):
      [uT: array[X] of real];
type
    X = 0 .. M+1;
    K = 3 .. maxK;
var
    u: array [1 .. maxK] of array[X] of real;
define
    u[1] = u0;
    u[2] = u0;
    uT = u[maxK];
    u[K,X] = if (X = 0) or (X = M+1)
             then u[K-1,X]
             else 2.0 * u[K-1,X] - u[K-2,X]
                + c2 * (u[K-1,X-1] - 2.0 * u[K-1,X] + u[K-1,X+1]);
end Wave;
";

/// All built-in programs with names, for CLI listing and sweep tests.
pub const ALL: &[(&str, &str)] = &[
    ("relaxation_v1", RELAXATION_V1),
    ("relaxation_v2", RELAXATION_V2),
    ("heat_1d", HEAT_1D),
    ("recurrence_1d", RECURRENCE_1D),
    ("pipeline", PIPELINE),
    ("gather", GATHER),
    ("table_2d", TABLE_2D),
    ("wave_1d", WAVE_1D),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_pass_the_frontend() {
        for (name, src) in ALL {
            ps_lang::frontend(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn table_2d_region_shape() {
        // t is defined by three equations: row 1, column 1, interior.
        let m = ps_lang::frontend(TABLE_2D).unwrap();
        let t = m.data_by_name("t").unwrap();
        assert_eq!(m.defs_of(t).len(), 3);
    }
}
