//! Figure renderers: regenerate the paper's figures as text.

use crate::pipeline::Compilation;
use ps_depgraph::stats::stats;
use ps_hyperplane::solve::render_inequalities;
use ps_scheduler::render::{render_component_table, render_flowchart, render_memory_plan};
use ps_support::pretty::PrettyWriter;

/// Figure 3: the dependency graph, as a structural summary plus DOT.
pub fn figure3(comp: &Compilation) -> String {
    let mut w = PrettyWriter::new();
    w.line(&format!(
        "Figure 3 — dependency graph for module {}",
        comp.module.name
    ));
    w.line(&format!("{}", stats(&comp.depgraph)));
    w.blank();
    w.line("DOT rendering:");
    w.write(&ps_depgraph::dot::depgraph_dot(
        &comp.module,
        &comp.depgraph,
    ));
    w.finish()
}

/// Figure 5: the component table (MSCCs and their per-component
/// flowcharts).
pub fn figure5(comp: &Compilation) -> String {
    let mut w = PrettyWriter::new();
    w.line("Figure 5 — component graph and corresponding flowchart");
    w.write(&render_component_table(&comp.schedule));
    w.finish()
}

/// Figure 6 / Figure 7: the module flowchart, indented.
pub fn figure6or7(comp: &Compilation) -> String {
    let mut w = PrettyWriter::new();
    w.line(&format!("Flowchart for module {}", comp.module.name));
    w.write(&render_flowchart(&comp.module, &comp.schedule.flowchart));
    w.blank();
    w.line("Virtual dimensions (Section 3.4):");
    w.write(&render_memory_plan(&comp.module, &comp.schedule));
    w.finish()
}

/// Section 4: the hyperplane derivation — dependence inequalities, the time
/// vector, the transform, the transformed schedule and window.
pub fn section4(comp: &Compilation) -> String {
    let Some(t) = &comp.transformed else {
        return "(no hyperplane transformation was requested)".to_string();
    };
    let r = &t.result;
    let mut w = PrettyWriter::new();
    w.line("Section 4 — restructuring transformation");
    w.line("dependence vectors (element x depends on x - d):");
    for d in &r.dep_vectors {
        w.line(&format!("  d = {d:?}"));
    }
    w.line("dependence inequalities:");
    for ineq in render_inequalities(&r.dep_vectors) {
        w.line(&format!("  {ineq}"));
    }
    w.line(&format!("least time vector: pi = {:?}", r.pi));
    w.line("unimodular transform T (first row = pi):");
    for row in r.t_mat.rows() {
        w.line(&format!("  {row:?}"));
    }
    w.line("inverse (original coords from transformed):");
    for row in r.t_inv.rows() {
        w.line(&format!("  {row:?}"));
    }
    w.line("transformed dependences T*d (time offsets first):");
    for d in &r.transformed_deps {
        w.line(&format!("  {d:?}"));
    }
    w.line(&format!("window on the time dimension: {}", r.window));
    w.blank();
    w.line("transformed schedule:");
    w.write(&render_flowchart(&r.module, &t.schedule.flowchart));
    w.blank();
    w.line("memory plan of the transformed module:");
    w.write(&render_memory_plan(&r.module, &t.schedule));
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompileOptions};
    use crate::programs;
    use ps_hyperplane::StorageMode;

    #[test]
    fn figures_render() {
        let comp = compile(
            programs::RELAXATION_V2,
            CompileOptions {
                hyperplane: Some(StorageMode::Windowed),
                ..Default::default()
            },
        )
        .unwrap();
        let f3 = figure3(&comp);
        assert!(f3.contains("8 (5 data + 3 equations)"), "{f3}");
        let f5 = figure5(&comp);
        assert!(f5.contains("A, eq.3") || f5.contains("eq.3, A"), "{f5}");
        let f7 = figure6or7(&comp);
        assert!(f7.contains("DO K ("), "{f7}");
        assert!(f7.contains("A: [virtual(window 2), physical, physical]"));
        let s4 = section4(&comp);
        assert!(s4.contains("pi = [2, 1, 1]"), "{s4}");
        assert!(s4.contains("a > c"), "{s4}");
        assert!(s4.contains("window on the time dimension: 3"), "{s4}");
    }
}
