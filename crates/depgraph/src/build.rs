//! Dependency-graph construction from a checked module.

use crate::graph::*;
use ps_lang::hir::{HirModule, SubscriptExpr};
use ps_lang::{DataId, SubrangeId};
use ps_support::FxHashSet;

/// Build the dependency graph of `module` (paper Section 3.1 / Figure 3).
pub fn build_depgraph(module: &HirModule) -> DepGraph {
    let mut dg = DepGraph::new();

    // Data nodes, with one node label per declared dimension. Record
    // variables additionally get one node per field, linked to the record
    // node by hierarchical edges.
    for (id, item) in module.data.iter_enumerated() {
        let record_node = dg.insert_data(
            id,
            DepNode {
                kind: DepNodeKind::Data(id),
                dim_subranges: item.dims().to_vec(),
                eq_dims: Vec::new(),
                name: item.name.to_string(),
            },
        );
        if let ps_lang::Ty::Record(rid) = &item.ty {
            for (fidx, (fname, _)) in module.records[*rid].fields.iter().enumerate() {
                let fnode = dg.insert_field(
                    id,
                    fidx,
                    DepNode {
                        kind: DepNodeKind::Field(id, fidx),
                        dim_subranges: Vec::new(),
                        eq_dims: Vec::new(),
                        name: format!("{}.{}", item.name, fname),
                    },
                );
                dg.graph.add_edge(
                    fnode,
                    record_node,
                    DepEdge {
                        kind: EdgeKind::Hierarchical,
                        labels: Vec::new(),
                    },
                );
            }
        }
    }

    // Equation nodes, with one node label per bound index variable.
    for (id, eq) in module.equations.iter_enumerated() {
        let eq_dims: Vec<EqDim> = eq
            .ivs
            .iter_enumerated()
            .map(|(iv, info)| EqDim {
                iv,
                subrange: info.subrange,
                name: info.name,
            })
            .collect();
        dg.insert_eq(
            id,
            DepNode {
                kind: DepNodeKind::Equation(id),
                dim_subranges: eq_dims.iter().map(|d| d.subrange).collect(),
                eq_dims,
                name: eq.label.clone(),
            },
        );
    }

    // Read, def and bound edges.
    for (eq_id, eq) in module.equations.iter_enumerated() {
        let eq_node = dg.eq_node(eq_id);

        // Def edge: equation → LHS variable (or record field).
        let lhs_node = match eq.lhs_field {
            Some(fidx) => dg.field_node(eq.lhs, fidx),
            None => dg.data_node(eq.lhs),
        };
        dg.graph.add_edge(
            eq_node,
            lhs_node,
            DepEdge {
                kind: EdgeKind::Def,
                labels: Vec::new(),
            },
        );

        // Read edges: one per array reference, labelled per source dim.
        for (array, subs) in eq.rhs.array_reads() {
            let labels = subs
                .iter()
                .enumerate()
                .map(|(dim, s)| classify(module, eq, array, dim, s))
                .collect();
            let src = dg.data_node(array);
            dg.graph.add_edge(
                src,
                eq_node,
                DepEdge {
                    kind: EdgeKind::Read,
                    labels,
                },
            );
        }

        // Scalar reads (parameters, scalar locals) — deduplicated per
        // (source, equation) pair. Record reads resolve to field nodes.
        let mut seen: FxHashSet<DataId> = FxHashSet::default();
        for d in eq.rhs.scalar_reads() {
            if matches!(module.data[d].ty, ps_lang::Ty::Record(_)) {
                continue; // handled via field_reads below
            }
            if seen.insert(d) {
                let src = dg.data_node(d);
                dg.graph.add_edge(
                    src,
                    eq_node,
                    DepEdge {
                        kind: EdgeKind::Read,
                        labels: Vec::new(),
                    },
                );
            }
        }
        let mut seen_fields: FxHashSet<(DataId, usize)> = FxHashSet::default();
        for (d, fidx) in eq.rhs.field_reads() {
            if seen_fields.insert((d, fidx)) {
                let src = dg.field_node(d, fidx);
                dg.graph.add_edge(
                    src,
                    eq_node,
                    DepEdge {
                        kind: EdgeKind::Read,
                        labels: Vec::new(),
                    },
                );
            }
        }
    }

    // Bound edges: parameter → data item when the parameter appears in one
    // of the item's dimension bounds ("a data dependency edge is drawn from
    // M to InitialA, to A, and to NewA").
    for (id, item) in module.data.iter_enumerated() {
        let mut seen: FxHashSet<DataId> = FxHashSet::default();
        for &dim in item.dims() {
            for param in bound_params(module, dim) {
                if seen.insert(param) {
                    let src = dg.data_node(param);
                    let dst = dg.data_node(id);
                    dg.graph.add_edge(
                        src,
                        dst,
                        DepEdge {
                            kind: EdgeKind::Bound,
                            labels: Vec::new(),
                        },
                    );
                }
            }
        }
    }

    dg
}

/// Parameters appearing in the bounds of `sr`.
fn bound_params(module: &HirModule, sr: SubrangeId) -> Vec<DataId> {
    let subrange = &module.subranges[sr];
    let mut out = Vec::new();
    for sym in subrange.lo.params().chain(subrange.hi.params()) {
        if let Some(d) = module.data_by_name(sym.as_str()) {
            if !out.contains(&d) {
                out.push(d);
            }
        }
    }
    out
}

/// Classify one subscript into its Figure-2 edge label.
fn classify(
    module: &HirModule,
    eq: &ps_lang::hir::Equation,
    array: DataId,
    dim: usize,
    s: &SubscriptExpr,
) -> DimLabel {
    match s {
        SubscriptExpr::Var(iv) => DimLabel {
            form: SubscriptForm::Identity,
            iv: Some(*iv),
            delta: 0,
            at_upper_bound: false,
        },
        SubscriptExpr::VarOffset(iv, delta) => DimLabel {
            form: if *delta < 0 {
                SubscriptForm::OffsetBack
            } else {
                SubscriptForm::Other
            },
            iv: Some(*iv),
            delta: *delta,
            at_upper_bound: false,
        },
        SubscriptExpr::Affine(a) if a.is_constant() => {
            // Constant subscript: check the virtual-dimension rule-2 pattern
            // "subscript = declared upper bound of this dimension".
            let at_ub = module.data[array]
                .dims()
                .get(dim)
                .map(|&sr| module.subranges[sr].hi.const_difference(&a.rest) == Some(0))
                .unwrap_or(false);
            let _ = eq;
            DimLabel {
                form: SubscriptForm::Constant,
                iv: None,
                delta: 0,
                at_upper_bound: at_ub,
            }
        }
        SubscriptExpr::Affine(_) | SubscriptExpr::Dynamic(_) => DimLabel {
            form: SubscriptForm::Other,
            iv: None,
            delta: 0,
            at_upper_bound: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_lang::frontend;

    const RELAXATION_V1: &str = "
        Relaxation: module (InitialA: array[I,J] of real;
                            M: int; maxK: int):
                    [newA: array[I,J] of real];
        type
            I, J = 0 .. M+1;
            K = 2 .. maxK;
        var
            A: array [1 .. maxK] of array[I,J] of real;
        define
            A[1] = InitialA;
            newA = A[maxK];
            A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                       then A[K-1,I,J]
                       else ( A[K-1,I,J-1]
                            + A[K-1,I-1,J]
                            + A[K-1,I,J+1]
                            + A[K-1,I+1,J] ) / 4;
        end Relaxation;
    ";

    #[test]
    fn figure3_node_structure() {
        let m = frontend(RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        // Data: InitialA, M, maxK, newA, A. Equations: eq.1..eq.3.
        let (data, eqs) = dg.node_counts();
        assert_eq!(data, 5);
        assert_eq!(eqs, 3);
    }

    #[test]
    fn figure3_edge_structure() {
        let m = frontend(RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let (read, def, bound) = dg.edge_counts();
        // Reads: InitialA→eq1 (1), A→eq2 (1), A→eq3 (5), M→eq3 (1, deduped).
        assert_eq!(read, 8);
        // Defs: eq1→A, eq2→newA, eq3→A.
        assert_eq!(def, 3);
        // Bounds: M→InitialA, M→newA, M→A, maxK→A.
        assert_eq!(bound, 4);
    }

    #[test]
    fn recursive_edges_are_parallel() {
        let m = frontend(RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let a = dg.data_node(m.data_by_name("A").unwrap());
        let eq3 = dg.eq_node(m.equation_by_label("eq.3").unwrap());
        let edges = dg.read_edges_from(a, eq3);
        assert_eq!(edges.len(), 5);
        // All five references use K-1 in dimension 0.
        for e in &edges {
            let lbl = &dg.graph.edge(*e).labels[0];
            assert_eq!(lbl.form, SubscriptForm::OffsetBack);
            assert_eq!(lbl.back_offset(), Some(1));
        }
    }

    #[test]
    fn eq3_ij_labels_include_other_forms() {
        let m = frontend(RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let a = dg.data_node(m.data_by_name("A").unwrap());
        let eq3 = dg.eq_node(m.equation_by_label("eq.3").unwrap());
        let forms: Vec<(SubscriptForm, SubscriptForm)> = dg
            .read_edges_from(a, eq3)
            .into_iter()
            .map(|e| {
                let l = &dg.graph.edge(e).labels;
                (l[1].form, l[2].form)
            })
            .collect();
        // Boundary carry-over A[K-1,I,J]: identity in both I and J.
        assert!(forms.contains(&(SubscriptForm::Identity, SubscriptForm::Identity)));
        // A[K-1,I,J+1] gives an Other in J; A[K-1,I-1,J] an OffsetBack in I.
        assert!(forms.iter().any(|f| f.1 == SubscriptForm::Other));
        assert!(forms.iter().any(|f| f.0 == SubscriptForm::OffsetBack));
    }

    #[test]
    fn upper_bound_read_detected() {
        let m = frontend(RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let a = dg.data_node(m.data_by_name("A").unwrap());
        let eq2 = dg.eq_node(m.equation_by_label("eq.2").unwrap());
        let edges = dg.read_edges_from(a, eq2);
        assert_eq!(edges.len(), 1);
        let lbl = &dg.graph.edge(edges[0]).labels[0];
        assert_eq!(lbl.form, SubscriptForm::Constant);
        assert!(lbl.at_upper_bound, "A[maxK] reads the upper bound plane");
    }

    #[test]
    fn equation_node_dims_are_ivs() {
        let m = frontend(RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let eq3 = dg.eq_node(m.equation_by_label("eq.3").unwrap());
        let node = dg.graph.node(eq3);
        assert_eq!(node.eq_dims.len(), 3);
        let names: Vec<&str> = node.eq_dims.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["K", "I", "J"]);
    }

    #[test]
    fn bound_edges_match_paper_quote() {
        // "a data dependency edge is drawn from M to InitialA, to A, and to
        //  NewA. A data dependency edge is drawn from maxK to A."
        let m = frontend(RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let m_node = dg.data_node(m.data_by_name("M").unwrap());
        let maxk_node = dg.data_node(m.data_by_name("maxK").unwrap());
        let targets: Vec<String> = dg
            .graph
            .successors(m_node)
            .map(|n| dg.graph.node(n).name.clone())
            .collect();
        assert!(targets.contains(&"InitialA".to_string()));
        assert!(targets.contains(&"A".to_string()));
        assert!(targets.contains(&"newA".to_string()));
        let maxk_targets: Vec<String> = dg
            .graph
            .successors(maxk_node)
            .map(|n| dg.graph.node(n).name.clone())
            .collect();
        assert!(maxk_targets.contains(&"A".to_string()));
    }
}
