//! DOT rendering of dependency graphs (Figure 3 as Graphviz).

use crate::graph::{DepGraph, DepNodeKind, EdgeKind};
use ps_graph::dot::{to_dot, DotOptions};
use ps_lang::HirModule;

/// Render the dependency graph to Graphviz DOT. Equations are boxes, data
/// items are ellipses; read edges carry their subscript labels (`K-1,I,J+1`),
/// bound edges are dotted.
pub fn depgraph_dot(module: &HirModule, dg: &DepGraph) -> String {
    let name = format!("{}_deps", module.name);
    let opts = DotOptions::new(&name)
        .with_node_label(|_, n: &crate::graph::DepNode| n.name.clone())
        .with_node_attrs(|_, n: &crate::graph::DepNode| match n.kind {
            DepNodeKind::Equation(_) => Some("shape=box".to_string()),
            DepNodeKind::Field(..) => Some("shape=diamond".to_string()),
            DepNodeKind::Data(_) => None,
        })
        .with_edge_label(|eid, e: &crate::graph::DepEdge| match e.kind {
            EdgeKind::Read if !e.labels.is_empty() => {
                // Reconstruct iv names from the target equation node.
                let target = dg.graph.edge_target(eid);
                let node = dg.graph.node(target);
                let name_of = |iv: ps_lang::IvId| {
                    node.eq_dims
                        .iter()
                        .find(|d| d.iv == iv)
                        .map(|d| d.name.to_string())
                        .unwrap_or_else(|| format!("{iv:?}"))
                };
                e.labels
                    .iter()
                    .map(|l| l.render(name_of))
                    .collect::<Vec<_>>()
                    .join(",")
            }
            EdgeKind::Bound => "bound".to_string(),
            EdgeKind::Hierarchical => "field-of".to_string(),
            _ => String::new(),
        });
    to_dot(&dg.graph, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_depgraph;
    use ps_lang::frontend;

    #[test]
    fn dot_contains_labelled_recursive_edge() {
        let m = frontend(
            "T: module (n: int): [y: real];
             type K = 2 .. n;
             var a: array [1 .. n] of real;
             define
                a[1] = 0.0;
                a[K] = a[K-1] + 1.0;
                y = a[n];
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let dot = depgraph_dot(&m, &dg);
        assert!(dot.contains("digraph"), "{dot}");
        assert!(dot.contains("label=\"K-1\""), "{dot}");
        assert!(dot.contains("shape=box"), "{dot}");
        assert!(dot.contains("label=\"bound\""), "{dot}");
    }
}
