//! Node, edge, and label types for the dependency graph.

use ps_graph::{DiGraph, EdgeId, NodeId};
use ps_lang::{DataId, EqId, IvId, SubrangeId};
use ps_support::{FxHashMap, Symbol};

/// What a dependency-graph node represents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepNodeKind {
    /// A data item (parameter, result, or local variable).
    Data(DataId),
    /// One field of a record variable (the paper's hierarchical structure:
    /// fields are nodes of their own, related to the record node).
    Field(DataId, usize),
    /// An equation.
    Equation(EqId),
}

/// One dimension of an equation node: the bound index variable and its
/// subrange. Data-node dimensions are just the declared subranges, kept on
/// the `HirModule`; equation dimensions need the iv ↔ subrange pairing.
#[derive(Clone, Copy, Debug)]
pub struct EqDim {
    pub iv: IvId,
    pub subrange: SubrangeId,
    pub name: Symbol,
}

/// A dependency-graph node with its per-dimension node labels.
#[derive(Clone, Debug)]
pub struct DepNode {
    pub kind: DepNodeKind,
    /// Node labels: for data nodes, the declared dimension subranges; for
    /// equation nodes, the subranges of the bound index variables.
    pub dim_subranges: Vec<SubrangeId>,
    /// Equation dimensions (empty for data nodes).
    pub eq_dims: Vec<EqDim>,
    /// Display name (`A`, `eq.3`).
    pub name: String,
}

/// The paper's Figure-2 "Subscript Expression Type".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubscriptForm {
    /// `I` — the identity reference.
    Identity,
    /// `I - constant` with positive offset: a *recursive* reference to an
    /// element produced `offset` iterations back. These are the edges
    /// Schedule-Component deletes (footnote 3 of the paper).
    OffsetBack,
    /// A parameter-affine constant subscript (`1`, `maxK`).
    Constant,
    /// Any other expression (`I + constant`, multi-variable affine,
    /// dynamic).
    Other,
}

/// Edge label for one dimension of the *source* node of a read edge
/// (Figure 2: position in target, subscript expression type, offset).
#[derive(Clone, Debug)]
pub struct DimLabel {
    /// The form of the subscript used at this source dimension.
    pub form: SubscriptForm,
    /// For `Identity`/`OffsetBack`/single-variable `Other` forms: the index
    /// variable of the *target equation* used here — the paper's "position
    /// in target of this source subscript".
    pub iv: Option<IvId>,
    /// Subscript = `iv + delta` when `iv` is set (`delta < 0` ⇔ OffsetBack).
    pub delta: i64,
    /// For `Constant` forms: does the subscript provably equal the declared
    /// upper bound of this dimension's subrange? (Virtual-dimension rule 2.)
    pub at_upper_bound: bool,
}

impl DimLabel {
    /// The paper's "offset amount" for `I - constant` labels.
    pub fn back_offset(&self) -> Option<i64> {
        (self.form == SubscriptForm::OffsetBack).then_some(-self.delta)
    }

    /// Render as the paper writes subscripts (`K-1`, `I`, `maxK`, `other`).
    pub fn render(&self, iv_name: impl Fn(IvId) -> String) -> String {
        match (self.form, self.iv) {
            (SubscriptForm::Identity, Some(iv)) => iv_name(iv),
            (SubscriptForm::OffsetBack, Some(iv)) => {
                format!("{}-{}", iv_name(iv), -self.delta)
            }
            (SubscriptForm::Other, Some(iv)) if self.delta > 0 => {
                format!("{}+{}", iv_name(iv), self.delta)
            }
            (SubscriptForm::Constant, _) => {
                if self.at_upper_bound {
                    "hi".to_string()
                } else {
                    "const".to_string()
                }
            }
            _ => "other".to_string(),
        }
    }
}

/// The kind of a dependency edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// RHS reference: `variable → equation`. Carries one [`DimLabel`] per
    /// source dimension.
    Read,
    /// Definition: `equation → variable`.
    Def,
    /// Subrange-bound dependence: `parameter → variable`.
    Bound,
    /// Record structure: `field → record` ("used to show the relationship
    /// between the fields of a record and the record itself").
    Hierarchical,
}

/// Edge payload.
#[derive(Clone, Debug)]
pub struct DepEdge {
    pub kind: EdgeKind,
    /// One label per source-node dimension (read edges only).
    pub labels: Vec<DimLabel>,
}

/// The dependency graph of one module.
#[derive(Clone, Debug)]
pub struct DepGraph {
    pub graph: DiGraph<DepNode, DepEdge>,
    data_nodes: FxHashMap<DataId, NodeId>,
    field_nodes: FxHashMap<(DataId, usize), NodeId>,
    eq_nodes: FxHashMap<EqId, NodeId>,
}

impl DepGraph {
    pub(crate) fn new() -> DepGraph {
        DepGraph {
            graph: DiGraph::new(),
            data_nodes: FxHashMap::default(),
            field_nodes: FxHashMap::default(),
            eq_nodes: FxHashMap::default(),
        }
    }

    pub(crate) fn insert_data(&mut self, id: DataId, node: DepNode) -> NodeId {
        let n = self.graph.add_node(node);
        self.data_nodes.insert(id, n);
        n
    }

    pub(crate) fn insert_field(&mut self, id: DataId, field: usize, node: DepNode) -> NodeId {
        let n = self.graph.add_node(node);
        self.field_nodes.insert((id, field), n);
        n
    }

    pub(crate) fn insert_eq(&mut self, id: EqId, node: DepNode) -> NodeId {
        let n = self.graph.add_node(node);
        self.eq_nodes.insert(id, n);
        n
    }

    /// Graph node for a data item.
    pub fn data_node(&self, id: DataId) -> NodeId {
        self.data_nodes[&id]
    }

    /// Graph node for an equation.
    pub fn eq_node(&self, id: EqId) -> NodeId {
        self.eq_nodes[&id]
    }

    /// Graph node for a record field.
    pub fn field_node(&self, id: DataId, field: usize) -> NodeId {
        self.field_nodes[&(id, field)]
    }

    /// Reverse lookup.
    pub fn node_kind(&self, node: NodeId) -> DepNodeKind {
        self.graph.node(node).kind
    }

    /// Is this node an equation node?
    pub fn is_equation(&self, node: NodeId) -> bool {
        matches!(self.node_kind(node), DepNodeKind::Equation(_))
    }

    /// Is this node a data node (including record fields)?
    pub fn is_data(&self, node: NodeId) -> bool {
        matches!(
            self.node_kind(node),
            DepNodeKind::Data(_) | DepNodeKind::Field(..)
        )
    }

    /// All read edges arriving at equation `eq` from data node `src`.
    pub fn read_edges_from(&self, src: NodeId, eq: NodeId) -> Vec<EdgeId> {
        self.graph
            .edges_connecting(src, eq)
            .into_iter()
            .filter(|&e| self.graph.edge(e).kind == EdgeKind::Read)
            .collect()
    }

    /// Number of nodes by kind: `(data, equations)`.
    pub fn node_counts(&self) -> (usize, usize) {
        let mut data = 0;
        let mut eqs = 0;
        for n in self.graph.node_ids() {
            match self.node_kind(n) {
                DepNodeKind::Data(_) | DepNodeKind::Field(..) => data += 1,
                DepNodeKind::Equation(_) => eqs += 1,
            }
        }
        (data, eqs)
    }

    /// Number of edges by kind: `(read, def, bound)`. Hierarchical edges
    /// are reported separately by [`DepGraph::hierarchical_edge_count`].
    pub fn edge_counts(&self) -> (usize, usize, usize) {
        let mut read = 0;
        let mut def = 0;
        let mut bound = 0;
        for e in self.graph.edge_ids() {
            match self.graph.edge(e).kind {
                EdgeKind::Read => read += 1,
                EdgeKind::Def => def += 1,
                EdgeKind::Bound => bound += 1,
                EdgeKind::Hierarchical => {}
            }
        }
        (read, def, bound)
    }

    /// Number of hierarchical (field → record) edges.
    pub fn hierarchical_edge_count(&self) -> usize {
        self.graph
            .edge_ids()
            .filter(|&e| self.graph.edge(e).kind == EdgeKind::Hierarchical)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_label_rendering() {
        let name = |_: IvId| "K".to_string();
        let identity = DimLabel {
            form: SubscriptForm::Identity,
            iv: Some(IvId(0)),
            delta: 0,
            at_upper_bound: false,
        };
        assert_eq!(identity.render(name), "K");
        let back = DimLabel {
            form: SubscriptForm::OffsetBack,
            iv: Some(IvId(0)),
            delta: -2,
            at_upper_bound: false,
        };
        assert_eq!(back.render(name), "K-2");
        assert_eq!(back.back_offset(), Some(2));
        let fwd = DimLabel {
            form: SubscriptForm::Other,
            iv: Some(IvId(0)),
            delta: 1,
            at_upper_bound: false,
        };
        assert_eq!(fwd.render(name), "K+1");
        assert_eq!(fwd.back_offset(), None);
        let ub = DimLabel {
            form: SubscriptForm::Constant,
            iv: None,
            delta: 0,
            at_upper_bound: true,
        };
        assert_eq!(ub.render(name), "hi");
    }
}
