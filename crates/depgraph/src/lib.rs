//! The paper's **data dependency graph** (Section 3.1).
//!
//! > "The dependency graph G = (N, E), where the set of nodes N contains the
//! > data items and equations of the module, and E contains directed edges
//! > between nodes. A directed edge is drawn from node i to node j if data
//! > produced in i is used in j."
//!
//! Nodes are *data items* (parameters, results, locals) and *equations*.
//! Edges are:
//!
//! * **read edges** `variable → equation` for every right-hand-side
//!   reference (one edge per reference — eq.3 of the Relaxation module gets
//!   five parallel `A → eq.3` edges),
//! * **def edges** `equation → variable` for the left-hand side,
//! * **bound edges** `parameter → variable` when the parameter appears in a
//!   subrange bound of one of the variable's dimensions (`M → InitialA`),
//!
//! Each node carries one *node label* per dimension; each read edge carries
//! one *edge label* per source dimension classifying the subscript in the
//! Figure-2 forms ([`SubscriptForm`]).
//!
//! The paper also mentions *hierarchical* edges relating record fields to
//! their record; this implementation does not give fields their own nodes —
//! field definitions appear as def edges on the record's node (documented
//! substitution, see DESIGN.md).

#![forbid(unsafe_code)]

pub mod build;
pub mod dot;
pub mod graph;
pub mod stats;

pub use build::build_depgraph;
pub use graph::{
    DepEdge, DepGraph, DepNode, DepNodeKind, DimLabel, EdgeKind, EqDim, SubscriptForm,
};
pub use stats::GraphStats;
