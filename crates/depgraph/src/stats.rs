//! Structural statistics for a dependency graph (Figure 3 reporting).

use crate::graph::{DepGraph, EdgeKind};
use std::fmt;

/// Summary counts used by the Figure-3 experiment and the `psc` CLI.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GraphStats {
    pub data_nodes: usize,
    pub equation_nodes: usize,
    pub read_edges: usize,
    pub def_edges: usize,
    pub bound_edges: usize,
    /// Read edges whose dimension labels include an `I - constant` form
    /// (candidate recursive references).
    pub offset_back_edges: usize,
    /// Read edges with at least one `other`-form label.
    pub other_form_edges: usize,
}

impl GraphStats {
    pub fn total_nodes(&self) -> usize {
        self.data_nodes + self.equation_nodes
    }

    pub fn total_edges(&self) -> usize {
        self.read_edges + self.def_edges + self.bound_edges
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "nodes: {} ({} data + {} equations)",
            self.total_nodes(),
            self.data_nodes,
            self.equation_nodes
        )?;
        writeln!(
            f,
            "edges: {} ({} read + {} def + {} bound)",
            self.total_edges(),
            self.read_edges,
            self.def_edges,
            self.bound_edges
        )?;
        write!(
            f,
            "read-edge forms: {} with I-constant, {} with other",
            self.offset_back_edges, self.other_form_edges
        )
    }
}

/// Compute summary statistics.
pub fn stats(dg: &DepGraph) -> GraphStats {
    let (data_nodes, equation_nodes) = dg.node_counts();
    let (read_edges, def_edges, bound_edges) = dg.edge_counts();
    let mut offset_back_edges = 0;
    let mut other_form_edges = 0;
    for e in dg.graph.edge_ids() {
        let edge = dg.graph.edge(e);
        if edge.kind != EdgeKind::Read {
            continue;
        }
        if edge
            .labels
            .iter()
            .any(|l| l.form == crate::graph::SubscriptForm::OffsetBack)
        {
            offset_back_edges += 1;
        }
        if edge
            .labels
            .iter()
            .any(|l| l.form == crate::graph::SubscriptForm::Other)
        {
            other_form_edges += 1;
        }
    }
    GraphStats {
        data_nodes,
        equation_nodes,
        read_edges,
        def_edges,
        bound_edges,
        offset_back_edges,
        other_form_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_depgraph;
    use ps_lang::frontend;

    #[test]
    fn relaxation_stats() {
        let m = frontend(
            "Relaxation: module (InitialA: array[I,J] of real;
                                 M: int; maxK: int):
                         [newA: array[I,J] of real];
             type I, J = 0 .. M+1; K = 2 .. maxK;
             var A: array [1 .. maxK] of array[I,J] of real;
             define
                A[1] = InitialA;
                newA = A[maxK];
                A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                           then A[K-1,I,J]
                           else ( A[K-1,I,J-1] + A[K-1,I-1,J]
                                + A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
             end Relaxation;",
        )
        .unwrap();
        let s = stats(&build_depgraph(&m));
        assert_eq!(s.total_nodes(), 8);
        assert_eq!(s.data_nodes, 5);
        assert_eq!(s.equation_nodes, 3);
        assert_eq!(s.read_edges, 8);
        assert_eq!(s.def_edges, 3);
        assert_eq!(s.bound_edges, 4);
        assert_eq!(s.offset_back_edges, 5, "all five A refs use K-1");
        assert_eq!(s.other_form_edges, 2, "J+1 and I+1 references");
        let rendered = format!("{s}");
        assert!(rendered.contains("8 (5 data + 3 equations)"));
    }
}
