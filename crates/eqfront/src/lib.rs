//! Equation-notation front end.
//!
//! The paper's introduction: *"Our ultimate goal is a translator of
//! equations in the form of (1), perhaps as TeX or Postscript files, to
//! modules in this language."* This crate implements that translator for
//! the paper's equation shape — a grid recurrence with one iteration
//! superscript and spatial subscripts:
//!
//! ```text
//! A^{k}_{i,j} = (A^{k-1}_{i,j-1} + A^{k-1}_{i-1,j} + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}) / 4
//! ```
//!
//! [`translate_equation`] parses the TeX-style notation and emits a
//! complete PS module in the style of the paper's Figure 1: the iteration
//! superscript becomes the first array subscript, boundary points carry
//! over from the previous iteration, the initial plane comes from an input
//! array, and the result is the final plane.

#![forbid(unsafe_code)]

use ps_support::{Diagnostic, DiagnosticSink};

/// Translation failure with a human-readable reason.
#[derive(Clone, Debug)]
pub struct EqFrontError(pub String);

impl std::fmt::Display for EqFrontError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for EqFrontError {}

/// A parsed array reference `A^{k-1}_{i,j+1}`.
#[derive(Clone, Debug, PartialEq)]
struct Ref {
    name: String,
    /// Iteration offset relative to the superscript variable (0 or < 0).
    super_offset: i64,
    /// Spatial offsets relative to the subscript variables.
    sub_offsets: Vec<i64>,
}

/// A token of the equation notation.
#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ref(Ref),
    Num(String),
    Op(char),
    LParen,
    RParen,
}

/// Translate one TeX-style recurrence into a PS module named `module_name`.
///
/// The generated module has the Figure-1 shape:
/// * input `Initial<A>`: the starting grid,
/// * `M`, `maxK` parameters,
/// * boundary rows/columns carried over from the previous iteration,
/// * result `new<A>`: the grid after `maxK` iterations.
pub fn translate_equation(equation: &str, module_name: &str) -> Result<String, EqFrontError> {
    let (lhs, rhs) = equation
        .split_once('=')
        .ok_or_else(|| EqFrontError("equation needs `=`".into()))?;

    let lhs_toks = tokenize(lhs)?;
    let [Tok::Ref(target)] = lhs_toks.as_slice() else {
        return Err(EqFrontError(
            "left-hand side must be a single reference like A^{k}_{i,j}".into(),
        ));
    };
    if target.super_offset != 0 || target.sub_offsets.iter().any(|&o| o != 0) {
        return Err(EqFrontError(
            "left-hand side must be unoffset (A^{k}_{i,j})".into(),
        ));
    }
    let rank = target.sub_offsets.len();
    if rank == 0 {
        return Err(EqFrontError("need at least one spatial subscript".into()));
    }

    let rhs_toks = tokenize(rhs)?;
    // Validate references and collect dependence sanity.
    for t in &rhs_toks {
        if let Tok::Ref(r) = t {
            if r.name != target.name {
                return Err(EqFrontError(format!(
                    "only self-references to `{}` are supported, found `{}`",
                    target.name, r.name
                )));
            }
            if r.sub_offsets.len() != rank {
                return Err(EqFrontError(format!(
                    "reference has {} subscripts, target has {rank}",
                    r.sub_offsets.len()
                )));
            }
            if r.super_offset > 0 {
                return Err(EqFrontError(
                    "references to future iterations (^{k+1}) are not causal".into(),
                ));
            }
        }
    }

    // Index variable names: K for iteration, then I, J, L, P, Q...
    let spatial_names: Vec<String> = ["I", "J", "L", "P", "Q", "R"]
        .iter()
        .take(rank)
        .map(|s| s.to_string())
        .collect();
    if spatial_names.len() < rank {
        return Err(EqFrontError("at most 6 spatial dimensions".into()));
    }

    let a = &target.name;
    let mut out = String::new();
    out.push_str(&format!(
        "{module_name}: module (Initial{a}: array[{dims}] of real;\n",
        dims = spatial_names.join(",")
    ));
    out.push_str(&format!(
        "        M: int; maxK: int):\n    [new{a}: array[{dims}] of real];\n",
        dims = spatial_names.join(",")
    ));
    out.push_str(&format!(
        "type\n    {names} = 0 .. M+1;\n    K = 2 .. maxK;\n",
        names = spatial_names.join(", ")
    ));
    out.push_str(&format!(
        "var\n    {a}: array [1 .. maxK] of array[{dims}] of real;\n",
        dims = spatial_names.join(",")
    ));
    out.push_str("define\n");
    out.push_str(&format!("    {a}[1] = Initial{a};\n"));
    out.push_str(&format!("    new{a} = {a}[maxK];\n"));

    // Boundary guard: any spatial index at 0 or M+1.
    let guard: Vec<String> = spatial_names
        .iter()
        .flat_map(|n| [format!("({n} = 0)"), format!("({n} = M+1)")])
        .collect();
    let carry_subs: Vec<String> = std::iter::once("K-1".to_string())
        .chain(spatial_names.iter().cloned())
        .collect();

    out.push_str(&format!(
        "    {a}[K,{vars}] = if {guard}\n               then {a}[{carry}]\n               else ",
        vars = spatial_names.join(","),
        guard = guard.join(" or "),
        carry = carry_subs.join(",")
    ));
    out.push_str(&render_rhs(&rhs_toks, &spatial_names));
    out.push_str(";\n");
    out.push_str(&format!("end {module_name};\n"));

    // Sanity: the output must survive the real front end.
    let sink = DiagnosticSink::new();
    let toks = ps_lang::lexer::lex(&out, &sink);
    let prog = ps_lang::parser::parse_program(&toks, &sink);
    if sink.has_errors() {
        return Err(EqFrontError(format!(
            "internal: generated PS does not parse:\n{out}\n{:?}",
            sink.snapshot()
                .iter()
                .map(|d: &Diagnostic| d.message.clone())
                .collect::<Vec<_>>()
        )));
    }
    let _ = prog;
    Ok(out)
}

fn render_rhs(toks: &[Tok], spatial: &[String]) -> String {
    let mut out = String::new();
    for t in toks {
        match t {
            Tok::Ref(r) => {
                let mut subs = Vec::with_capacity(1 + spatial.len());
                subs.push(offset_str("K", r.super_offset));
                for (name, &off) in spatial.iter().zip(&r.sub_offsets) {
                    subs.push(offset_str(name, off));
                }
                out.push_str(&format!("{}[{}]", r.name, subs.join(",")));
            }
            Tok::Num(n) => out.push_str(n),
            Tok::Op(c) => out.push_str(&format!(" {c} ")),
            Tok::LParen => out.push('('),
            Tok::RParen => out.push(')'),
        }
    }
    out
}

fn offset_str(base: &str, off: i64) -> String {
    match off.cmp(&0) {
        std::cmp::Ordering::Equal => base.to_string(),
        std::cmp::Ordering::Greater => format!("{base}+{off}"),
        std::cmp::Ordering::Less => format!("{base}-{}", -off),
    }
}

fn tokenize(s: &str) -> Result<Vec<Tok>, EqFrontError> {
    let mut out = Vec::new();
    let b = s.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '+' | '-' | '*' | '/' => {
                out.push(Tok::Op(c));
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                out.push(Tok::Num(s[start..i].to_string()));
            }
            'a'..='z' | 'A'..='Z' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_alphanumeric() {
                    i += 1;
                }
                let name = s[start..i].to_string();
                let (super_offset, ni) = parse_script(s, i, '^')?;
                i = ni;
                let (subs, ni) = parse_subscripts(s, i)?;
                i = ni;
                out.push(Tok::Ref(Ref {
                    name,
                    super_offset: super_offset.unwrap_or(0),
                    sub_offsets: subs,
                }));
            }
            other => {
                return Err(EqFrontError(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(out)
}

/// Parse `^{k}` / `^{k-1}` at position `i`; returns the offset.
fn parse_script(s: &str, i: usize, sigil: char) -> Result<(Option<i64>, usize), EqFrontError> {
    let b = s.as_bytes();
    if i >= b.len() || b[i] as char != sigil {
        return Ok((None, i));
    }
    let (inner, ni) = braced(s, i + 1)?;
    let off = offset_of(&inner)?;
    Ok((Some(off), ni))
}

/// Parse `_{i,j-1}`; returns the offsets.
fn parse_subscripts(s: &str, i: usize) -> Result<(Vec<i64>, usize), EqFrontError> {
    let b = s.as_bytes();
    if i >= b.len() || b[i] != b'_' {
        return Ok((Vec::new(), i));
    }
    let (inner, ni) = braced(s, i + 1)?;
    let mut subs = Vec::new();
    for part in inner.split(',') {
        subs.push(offset_of(part)?);
    }
    Ok((subs, ni))
}

fn braced(s: &str, i: usize) -> Result<(String, usize), EqFrontError> {
    let b = s.as_bytes();
    if i >= b.len() || b[i] != b'{' {
        return Err(EqFrontError("expected `{` after ^ or _".into()));
    }
    let mut j = i + 1;
    while j < b.len() && b[j] != b'}' {
        j += 1;
    }
    if j >= b.len() {
        return Err(EqFrontError("unterminated `{`".into()));
    }
    Ok((s[i + 1..j].to_string(), j + 1))
}

/// `k` → 0, `k-1` → -1, `i+2` → 2.
fn offset_of(script: &str) -> Result<i64, EqFrontError> {
    let t = script.trim();
    let split = t.find(['+', '-']);
    match split {
        None => {
            if t.chars().all(|c| c.is_ascii_alphanumeric()) && !t.is_empty() {
                Ok(0)
            } else {
                Err(EqFrontError(format!("bad index `{t}`")))
            }
        }
        Some(pos) => {
            let magnitude: i64 = t[pos + 1..]
                .trim()
                .parse()
                .map_err(|_| EqFrontError(format!("bad offset in `{t}`")))?;
            Ok(if t.as_bytes()[pos] == b'-' {
                -magnitude
            } else {
                magnitude
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JACOBI: &str =
        "A^{k}_{i,j} = (A^{k-1}_{i,j-1} + A^{k-1}_{i-1,j} + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}) / 4";
    const GAUSS_SEIDEL: &str =
        "A^{k}_{i,j} = (A^{k}_{i,j-1} + A^{k}_{i-1,j} + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}) / 4";

    #[test]
    fn equation1_translates_and_checks() {
        let ps = translate_equation(JACOBI, "Relaxation").unwrap();
        assert!(ps.contains("A[1] = InitialA;"), "{ps}");
        assert!(ps.contains("newA = A[maxK];"), "{ps}");
        assert!(ps.contains("A[K-1,I,J-1]"), "{ps}");
        // The generated module passes the full front end.
        let m = ps_lang::frontend(&ps).expect("generated PS type-checks");
        assert_eq!(m.equations.len(), 3);
    }

    #[test]
    fn equation2_translates() {
        let ps = translate_equation(GAUSS_SEIDEL, "Relaxation2").unwrap();
        assert!(ps.contains("A[K,I,J-1]"), "{ps}");
        assert!(ps.contains("A[K-1,I,J+1]"), "{ps}");
        ps_lang::frontend(&ps).expect("generated PS type-checks");
    }

    #[test]
    fn one_dimensional_recurrence() {
        let ps =
            translate_equation("u^{k}_{i} = (u^{k-1}_{i-1} + u^{k-1}_{i+1}) / 2", "Heat").unwrap();
        assert!(
            ps.contains("u: array [1 .. maxK] of array[I] of real;"),
            "{ps}"
        );
        ps_lang::frontend(&ps).expect("generated PS type-checks");
    }

    #[test]
    fn future_reference_rejected() {
        let err = translate_equation("A^{k}_{i} = A^{k+1}_{i}", "Bad").unwrap_err();
        assert!(err.0.contains("causal"), "{err}");
    }

    #[test]
    fn offset_parsing() {
        assert_eq!(offset_of("k").unwrap(), 0);
        assert_eq!(offset_of("k-1").unwrap(), -1);
        assert_eq!(offset_of("i+2").unwrap(), 2);
        assert!(offset_of("").is_err());
    }

    #[test]
    fn foreign_reference_rejected() {
        let err = translate_equation("A^{k}_{i} = B^{k-1}_{i}", "Bad").unwrap_err();
        assert!(err.0.contains("self-references"), "{err}");
    }

    #[test]
    fn lhs_must_be_unoffset() {
        let err = translate_equation("A^{k-1}_{i} = A^{k-2}_{i}", "Bad").unwrap_err();
        assert!(err.0.contains("unoffset"), "{err}");
    }
}
