//! Cooperative cancellation for region execution.
//!
//! A [`CancelToken`] is a cheap, cloneable flag (optionally armed with a
//! deadline) that callers thread *implicitly* to the executor: the
//! submitting thread wraps its solve in [`CancelToken::enter`], and the
//! pool picks the token up via [`CancelToken::current`] when a region is
//! submitted. Workers never see the token directly — the region checks it
//! at chunk boundaries, which is the natural cancellation grain: a chunk
//! is the unit of work a thread claims atomically, so cancellation never
//! tears an iteration in half.
//!
//! Cancellation is reported by unwinding with the [`Cancelled`] payload
//! (via `panic_any`), reusing the pool's existing panic plumbing: the
//! region fast-forwards its cursor so stealers stop claiming, retires the
//! skipped items so the latch still settles, and the submitter re-raises
//! `Cancelled` once the region quiesces. The pool is *not* poisoned — the
//! payload type lets callers (and the service worker) distinguish "told to
//! stop" from "crashed".

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The unwind payload used when a region stops because its token fired.
///
/// Catch with `payload.is::<Cancelled>()` to tell a cancellation apart
/// from a genuine worker panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

struct TokenInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation flag, optionally with a wall-clock deadline.
///
/// All clones share one flag: [`cancel`](CancelToken::cancel) on any clone
/// is visible through every other. A deadline token additionally reports
/// cancelled once `Instant::now()` passes the deadline, with no timer
/// thread — expiry is evaluated lazily at each
/// [`is_cancelled`](CancelToken::is_cancelled) poll.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](CancelToken::cancel) is called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that auto-cancels at `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that auto-cancels `timeout` from now.
    pub fn after(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Request cancellation. Idempotent; visible through all clones.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// `true` once [`cancel`](CancelToken::cancel) was called or the
    /// deadline (if any) has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
            || self.inner.deadline.map_or(false, |d| Instant::now() >= d)
    }

    /// The deadline this token was armed with, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Install this token as the calling thread's current token until the
    /// returned scope is dropped. Regions submitted (or run inline) while
    /// the scope is live observe it via [`CancelToken::current`].
    ///
    /// Scopes nest; the innermost wins.
    pub fn enter(&self) -> CancelScope {
        CURRENT.with(|stack| stack.borrow_mut().push(self.clone()));
        CancelScope { _private: () }
    }

    /// The calling thread's innermost entered token, if any.
    pub fn current() -> Option<CancelToken> {
        CURRENT.with(|stack| stack.borrow().last().cloned())
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`CancelToken::enter`]; pops the token on drop.
pub struct CancelScope {
    _private: (),
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// `true` when the calling thread's current token (if any) is cancelled.
pub fn current_cancelled() -> bool {
    CancelToken::current().map_or(false, |t| t.is_cancelled())
}

/// Unwind with [`Cancelled`] if the calling thread's current token fired.
/// Executors call this at submission boundaries so even inline execution
/// respects the token.
pub fn check_current() {
    if current_cancelled() {
        std::panic::panic_any(Cancelled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_token_expires() {
        let t = CancelToken::after(Duration::from_millis(10));
        assert!(!t.is_cancelled());
        std::thread::sleep(Duration::from_millis(20));
        assert!(t.is_cancelled());
    }

    #[test]
    fn enter_scopes_nest_and_pop() {
        assert!(CancelToken::current().is_none());
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        {
            let _a = outer.enter();
            {
                let _b = inner.enter();
                inner.cancel();
                assert!(current_cancelled());
            }
            // Inner scope popped; outer is still clean.
            assert!(!current_cancelled());
            assert!(CancelToken::current().is_some());
        }
        assert!(CancelToken::current().is_none());
    }

    #[test]
    fn tokens_do_not_leak_across_threads() {
        let t = CancelToken::new();
        let _scope = t.enter();
        t.cancel();
        std::thread::spawn(|| {
            assert!(CancelToken::current().is_none());
            assert!(!current_cancelled());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn check_current_unwinds_with_cancelled_payload() {
        let t = CancelToken::new();
        t.cancel();
        let _scope = t.enter();
        let err = std::panic::catch_unwind(check_current).unwrap_err();
        assert!(err.is::<Cancelled>());
    }
}
