//! Counting latch: blocks one thread until N completions are signalled.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A one-shot countdown latch.
///
/// The counter starts at `n`; workers call [`CountLatch::count_down`] once
/// each; the owner calls [`CountLatch::wait`] and returns once the counter
/// reaches zero. The fast path is a single atomic, followed by a bounded
/// spin (the work-stealing pool counts a small region down within
/// nanoseconds of the waiter arriving); the `std::sync` mutex / condvar
/// pair only engages when the waiter actually sleeps.
pub struct CountLatch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    cond: Condvar,
}

/// Spin iterations in [`CountLatch::wait`] before parking.
const WAIT_SPINS: usize = 128;

impl CountLatch {
    pub fn new(n: usize) -> CountLatch {
        CountLatch {
            remaining: AtomicUsize::new(n),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Signal one completion. The release ordering pairs with the acquire
    /// in [`CountLatch::wait`] so work done before `count_down` is visible
    /// to the waiter.
    pub fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            // Last signal: wake the waiter. Taking the lock here avoids the
            // lost-wakeup race with a waiter that just checked the counter.
            let _guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
            self.cond.notify_all();
        }
    }

    /// Current count (test/diagnostic aid).
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Block until the counter reaches zero.
    pub fn wait(&self) {
        // Fast path: already signalled, or signalled within a short spin.
        for _ in 0..WAIT_SPINS {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.cond.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_latch_does_not_block() {
        CountLatch::new(0).wait();
    }

    #[test]
    fn waits_for_all_signals() {
        let latch = Arc::new(CountLatch::new(4));
        let flag = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = latch.clone();
            let f = flag.clone();
            handles.push(std::thread::spawn(move || {
                f.fetch_add(1, Ordering::SeqCst);
                l.count_down();
            }));
        }
        latch.wait();
        assert_eq!(
            flag.load(Ordering::SeqCst),
            4,
            "all work visible after wait"
        );
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(latch.remaining(), 0);
    }

    #[test]
    fn repeated_waits_after_completion() {
        let latch = CountLatch::new(1);
        latch.count_down();
        latch.wait();
        latch.wait(); // idempotent
    }
}
