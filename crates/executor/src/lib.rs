//! MIMD surrogate: a from-scratch persistent worker pool with chunked,
//! dynamically scheduled `parallel_for`.
//!
//! The paper targets MIMD machines whose compilers consume annotated
//! `DOALL` loops. This crate is the executable stand-in: the runtime maps
//! each `DOALL` loop onto [`Executor::for_range`], which a [`ThreadPool`]
//! serves with worker threads grabbing chunks off a shared atomic counter
//! (self-scheduling, in the spirit of the era's *guided self-scheduling*
//! literature the paper cites).
//!
//! Built strictly from the standard library — a lock-free work-stealing
//! pool admits many concurrent in-flight regions: each submitter
//! publishes regions on its own *lane* (an epoch-validated slot stack),
//! idle workers steal chunks off every live region's atomic cursor, and
//! an item-counted mutex/condvar latch detects completion (see [`pool`]
//! for the full protocol) — following the construction patterns of *Rust
//! Atomics and Locks*. Concurrent submitters never serialize, and a
//! `DOALL` spawned from inside a running chunk publishes a real nested
//! region instead of inlining. The workspace carries zero external
//! dependencies.

pub mod cancel;
pub mod latch;
pub mod pool;
pub mod stats;

pub use cancel::{CancelScope, CancelToken, Cancelled};
pub use pool::{Sequential, ThreadPool};
pub use stats::PoolStatsSnapshot;

/// Something that can run an index range, possibly concurrently.
///
/// The contract mirrors a `DOALL` loop: `f` is invoked exactly once for
/// every index in `lo..=hi`, in unspecified order, possibly from several
/// threads concurrently. `f` must therefore only perform disjoint writes —
/// which the scheduler guarantees for single-assignment equations.
pub trait Executor: Send + Sync {
    /// Number of worker threads (1 for sequential execution).
    fn threads(&self) -> usize;

    /// Run `f(i)` for every `i` in `lo..=hi` (empty when `hi < lo`).
    fn for_range(&self, lo: i64, hi: i64, f: &(dyn Fn(i64) + Sync));

    /// Run `f(start, stop)` over disjoint half-open chunks covering
    /// `lo..=hi`. Lets callers hoist per-iteration setup (index
    /// environments, buffers) out of the element loop.
    fn for_chunks(&self, lo: i64, hi: i64, f: &(dyn Fn(i64, i64) + Sync));
}

/// References delegate, so a shared executor can serve concurrent
/// compile-once / run-many callers without wrapper types.
impl<E: Executor + ?Sized> Executor for &E {
    fn threads(&self) -> usize {
        (**self).threads()
    }

    fn for_range(&self, lo: i64, hi: i64, f: &(dyn Fn(i64) + Sync)) {
        (**self).for_range(lo, hi, f)
    }

    fn for_chunks(&self, lo: i64, hi: i64, f: &(dyn Fn(i64, i64) + Sync)) {
        (**self).for_chunks(lo, hi, f)
    }
}

/// `Arc`-owned executors delegate too: long-lived services hand each
/// worker thread an `Arc<ThreadPool>` (or `Arc<dyn Executor>`) next to a
/// shared `&Program`.
impl<E: Executor + ?Sized> Executor for std::sync::Arc<E> {
    fn threads(&self) -> usize {
        (**self).threads()
    }

    fn for_range(&self, lo: i64, hi: i64, f: &(dyn Fn(i64) + Sync)) {
        (**self).for_range(lo, hi, f)
    }

    fn for_chunks(&self, lo: i64, hi: i64, f: &(dyn Fn(i64, i64) + Sync)) {
        (**self).for_chunks(lo, hi, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

    fn check_covers_all(ex: &dyn Executor) {
        let n = 10_000i64;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        ex.for_range(0, n - 1, &|i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "every index must run exactly once"
        );
    }

    #[test]
    fn sequential_covers_all() {
        check_covers_all(&Sequential);
    }

    #[test]
    fn pool_covers_all() {
        check_covers_all(&ThreadPool::new(4));
    }

    #[test]
    fn pool_matches_sequential_sum() {
        let pool = ThreadPool::new(3);
        let total = AtomicI64::new(0);
        pool.for_range(1, 1000, &|i| {
            total.fetch_add(i * i, Ordering::Relaxed);
        });
        let expected: i64 = (1..=1000).map(|i| i * i).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn empty_and_singleton_ranges() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        pool.for_range(5, 4, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
        pool.for_range(7, 7, &|i| {
            assert_eq!(i, 7);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn negative_bounds() {
        let pool = ThreadPool::new(2);
        let total = AtomicI64::new(0);
        pool.for_range(-10, 10, &|i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn nested_parallel_for_runs_parallel() {
        // A DOALL inside a DOALL must not deadlock; the inner loop is
        // published as a real region (workers steal its chunks) rather
        // than inlined serially.
        let pool = ThreadPool::new(4);
        let total = AtomicI64::new(0);
        pool.for_range(0, 9, &|_| {
            pool.for_range(0, 9, &|j| {
                total.fetch_add(j, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 45 * 10);
        assert!(pool.stats().nested_regions > 0, "inner loops published");
    }

    #[test]
    fn panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.for_range(0, 100, &|i| {
                if i == 37 {
                    panic!("boom at {i}");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool stays usable afterwards.
        let count = AtomicUsize::new(0);
        pool.for_range(0, 9, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn stats_accumulate() {
        let pool = ThreadPool::new(2);
        pool.for_range(0, 999, &|_| {});
        let s = pool.stats();
        assert_eq!(s.regions, 1);
        assert_eq!(s.items, 1000);
        assert!(s.chunks >= 1);
    }

    #[test]
    fn ref_and_arc_delegate() {
        let arc: std::sync::Arc<dyn Executor> = std::sync::Arc::new(ThreadPool::new(2));
        assert_eq!(arc.threads(), 2);
        let total = AtomicI64::new(0);
        arc.for_range(1, 100, &|i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
        // A reference is itself an executor (generic call sites).
        fn run_on<E: Executor>(e: E) -> usize {
            let hits = AtomicUsize::new(0);
            e.for_chunks(0, 9, &|start, stop| {
                hits.fetch_add((stop - start) as usize, Ordering::Relaxed);
            });
            hits.load(Ordering::Relaxed)
        }
        assert_eq!(run_on(&Sequential), 10);
        assert_eq!(run_on(&arc), 10);
    }

    #[test]
    fn many_small_regions() {
        let pool = ThreadPool::new(4);
        let total = AtomicI64::new(0);
        for _ in 0..500 {
            pool.for_range(0, 3, &|i| {
                total.fetch_add(i, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 6 * 500);
    }
}
