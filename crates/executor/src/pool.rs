//! The worker pool and the sequential executor.
//!
//! ## Broadcast-slot design
//!
//! Publishing a region costs one pointer store, one generation bump and one
//! `notify_all`, regardless of pool width — there are no per-worker
//! channels and no per-region allocations (the `Region` lives on the
//! submitter's stack). The shared `Slot` carries a generation counter
//! (`epoch`, even = idle, odd = a region is live) and the raw pointer to
//! the current region:
//!
//! * **Publish** (submitter, serialized by the `submit` mutex): store the
//!   region pointer, bump `epoch` to odd, take the slot mutex and
//!   `notify_all`. Workers spin briefly on the atomic `epoch` before ever
//!   touching the mutex (futex-style fast path), so back-to-back regions
//!   are often picked up without any sleep/wake transition.
//! * **Drain**: every participant (workers + the calling thread) claims
//!   `[next, next+chunk)` slices off the region's atomic cursor. Completion
//!   is *item-counted*: whoever retires the last iteration signals the
//!   region's one-shot latch. A worker that never wakes for a short region
//!   simply misses it — it cannot delay completion, which is what makes
//!   the many-small-region pattern fast.
//! * **Retire** (submitter, after the latch): bump `epoch` back to even,
//!   then wait until no worker still *announces* the retired generation.
//!   Workers announce the epoch they are about to drain in a padded
//!   per-worker cell and re-check the epoch afterwards (both seqcst, a
//!   store-load handshake); the submitter's retire scan therefore cannot
//!   return while any worker can still touch the stack-held region, and a
//!   late-waking worker observes the bumped epoch and backs off without
//!   dereferencing the stale pointer.
//!
//! `ThreadPool::new(1)` spawns no workers and short-circuits every region
//! to inline execution — same behaviour as [`Sequential`], plus counters.

#![deny(unsafe_op_in_unsafe_fn)]

use crate::latch::CountLatch;
use crate::stats::{PoolStats, PoolStatsSnapshot};
use crate::Executor;
use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Executes ranges inline on the calling thread.
pub struct Sequential;

impl Executor for Sequential {
    fn threads(&self) -> usize {
        1
    }

    fn for_range(&self, lo: i64, hi: i64, f: &(dyn Fn(i64) + Sync)) {
        for i in lo..=hi {
            f(i);
        }
    }

    fn for_chunks(&self, lo: i64, hi: i64, f: &(dyn Fn(i64, i64) + Sync)) {
        if hi >= lo {
            f(lo, hi + 1);
        }
    }
}

/// Shared state of one `for_range` region.
///
/// Lives on the submitting thread's stack: the retire scan in
/// [`ThreadPool::for_chunks`] guarantees no worker dereferences the
/// published pointer after the submitter returns.
struct Region {
    /// Next index to hand out.
    next: AtomicI64,
    /// One past the last index.
    end: i64,
    /// Total number of iterations (`end - lo`).
    total: i64,
    /// Chunk width.
    chunk: i64,
    /// Iterations retired (executed, or skipped after a panic). The region
    /// completes when this reaches `total`.
    completed: AtomicI64,
    /// The user chunk closure `f(start, stop)`. Lifetime-erased: the caller
    /// of `for_range`/`for_chunks` blocks on `latch` before returning, so
    /// the borrow outlives all uses.
    func: *const (dyn Fn(i64, i64) + Sync),
    /// One-shot completion latch, signalled by whichever participant
    /// retires the final iteration.
    latch: CountLatch,
    /// Set when any invocation panicked.
    panicked: AtomicBool,
}

// SAFETY: `func` points to a `Sync` closure that outlives the region (the
// submitting thread waits on `latch` and then the retire scan before
// returning); all other fields are atomics or immutable.
unsafe impl Sync for Region {}

impl Region {
    /// Drain chunks until the cursor passes `end`.
    fn drain(&self, stats: &PoolStats) {
        // SAFETY: see the `Sync` justification above.
        let f = unsafe { &*self.func };
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.end {
                return;
            }
            let stop = (start + self.chunk).min(self.end);
            stats.record_chunk((stop - start) as u64);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                f(start, stop);
            }));
            if result.is_err() {
                self.panicked.store(true, Ordering::Release);
                // Cancel the rest of the range: claim whatever is still
                // unclaimed and retire it as skipped, so the latch still
                // completes. Concurrently claimed chunks are retired by
                // their claimers; anything past `end` was never real work.
                let unclaimed = self.next.swap(self.end, Ordering::Relaxed);
                let skipped = (self.end - unclaimed).max(0);
                self.retire((stop - start) + skipped);
                return;
            }
            self.retire(stop - start);
        }
    }

    /// Account `n` finished iterations; the last one signals the latch.
    ///
    /// `AcqRel` chains the retiring participants together so the final
    /// retirer (and, through the latch, the submitter) observes every
    /// write the user closure made.
    fn retire(&self, n: i64) {
        if n == 0 {
            return;
        }
        if self.completed.fetch_add(n, Ordering::AcqRel) + n == self.total {
            self.latch.count_down();
        }
    }
}

/// Worker announce cell, padded to its own cache line so the retire scan
/// and the announce stores do not false-share.
#[repr(align(128))]
struct AnnounceCell(AtomicU64);

/// Announce value meaning "not inside any region" (epochs start at 1).
const IDLE: u64 = 0;

/// The generation-stamped broadcast cell all workers watch.
struct Slot {
    /// Even = idle, odd = a region is published. Monotonic.
    epoch: AtomicU64,
    /// Pointer to the live region while `epoch` is odd.
    region: AtomicPtr<Region>,
    /// Sleep/wake plumbing; the mutex protects no data, only the condvar
    /// protocol (workers re-check `epoch` under it before waiting).
    mutex: Mutex<()>,
    cond: Condvar,
}

struct Shared {
    slot: Slot,
    /// One announce cell per worker.
    states: Box<[AnnounceCell]>,
    /// Serializes submitters: one live region per pool at a time.
    submit: Mutex<()>,
    shutdown: AtomicBool,
    stats: PoolStats,
}

thread_local! {
    /// True on pool worker threads; nested `for_range` calls run inline to
    /// avoid self-deadlock.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Stack of pools this thread is currently submitting to (by `Shared`
    /// address). A nested `for_range` on a pool already on the stack —
    /// e.g. an outer region's chunk closure launching an inner DOALL on
    /// the *same* pool — must run inline: the submit mutex is not
    /// reentrant, and that pool is busy with the outer region anyway.
    /// Submissions to a *different* pool broadcast normally.
    static SUBMITTING: std::cell::RefCell<Vec<*const Shared>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Pops the pool from [`SUBMITTING`] on scope exit, even on unwind.
struct SubmitGuard;

impl SubmitGuard {
    fn enter(pool: *const Shared) -> SubmitGuard {
        SUBMITTING.with(|s| s.borrow_mut().push(pool));
        SubmitGuard
    }
}

impl Drop for SubmitGuard {
    fn drop(&mut self) {
        SUBMITTING.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// A fixed-size pool of persistent worker threads sharing one broadcast
/// slot.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    n_threads: usize,
}

/// Spin iterations on the atomic epoch before yielding, and yields before
/// parking on the condvar. Short regions complete in well under the spin
/// window, so a busy pool rarely touches the futex at all.
const SPINS: usize = 128;
const YIELDS: usize = 32;

fn worker_loop(shared: &Shared, me: usize) {
    IN_WORKER.with(|f| f.set(true));
    let slot = &shared.slot;
    // Start from generation 0 so a region published before this thread's
    // first epoch read is still picked up, not slept through.
    let mut last_seen = 0u64;
    loop {
        // Wait for the epoch to move: spin, then yield, then park.
        let mut e = slot.epoch.load(Ordering::Acquire);
        if e == last_seen {
            'wait: {
                for spin in 0..(SPINS + YIELDS) {
                    if spin < SPINS {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                    e = slot.epoch.load(Ordering::Acquire);
                    if e != last_seen {
                        break 'wait;
                    }
                }
                let mut guard = slot.mutex.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    e = slot.epoch.load(Ordering::Acquire);
                    if e != last_seen {
                        break;
                    }
                    guard = slot.cond.wait(guard).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        last_seen = e;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if e % 2 == 1 {
            // A region is (or very recently was) live. Announce the
            // generation, then re-check it: the seqcst store-load pair
            // ensures the submitter's retire scan either sees our announce
            // and waits for us, or has already bumped the epoch — in which
            // case the re-check fails and we never touch the pointer.
            let cell = &shared.states[me].0;
            cell.store(e, Ordering::SeqCst);
            if slot.epoch.load(Ordering::SeqCst) == e {
                let ptr = slot.region.load(Ordering::Acquire);
                // SAFETY: the announce/re-check handshake above plus the
                // retire scan keep the region alive while we drain it.
                let region = unsafe { &*ptr };
                region.drain(&shared.stats);
            }
            cell.store(IDLE, Ordering::SeqCst);
        }
    }
}

impl ThreadPool {
    /// Create a pool wrapped in an [`Arc`] — the shape long-lived services
    /// want: every service worker thread holds a clone of the handle next
    /// to its shared `&Program`, and the `Executor for Arc<E>` impl makes
    /// the handle itself an executor. One pool serves all workers; the
    /// broadcast slot serializes overlapping regions (see the module docs),
    /// so concurrent submitters queue rather than interleave.
    pub fn shared(n: usize) -> Arc<ThreadPool> {
        Arc::new(ThreadPool::new(n))
    }

    /// Create a pool with `n` worker threads (minimum 1). The calling
    /// thread also participates in every region, so the effective
    /// parallelism of `for_range` is `n - 1` (workers) + 1 (caller),
    /// capped by the chunk count. `n = 1` spawns no workers at all and
    /// runs every region inline.
    pub fn new(n: usize) -> ThreadPool {
        let n = n.max(1);
        // The caller participates, so spawn n-1 workers for n-way
        // parallelism.
        let n_workers = n - 1;
        let shared = Arc::new(Shared {
            slot: Slot {
                epoch: AtomicU64::new(0),
                region: AtomicPtr::new(std::ptr::null_mut()),
                mutex: Mutex::new(()),
                cond: Condvar::new(),
            },
            states: (0..n_workers)
                .map(|_| AnnounceCell(AtomicU64::new(IDLE)))
                .collect(),
            submit: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            stats: PoolStats::default(),
        });
        let handles = (0..n_workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ps-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            n_threads: n,
        }
    }

    /// A pool sized to the machine (`available_parallelism`).
    pub fn with_default_size() -> ThreadPool {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ThreadPool::new(n)
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> PoolStatsSnapshot {
        self.shared.stats.snapshot()
    }
}

impl Executor for ThreadPool {
    fn threads(&self) -> usize {
        self.n_threads
    }

    fn for_range(&self, lo: i64, hi: i64, f: &(dyn Fn(i64) + Sync)) {
        let by_chunk = move |start: i64, stop: i64| {
            for i in start..stop {
                f(i);
            }
        };
        self.for_chunks(lo, hi, &by_chunk);
    }

    fn for_chunks(&self, lo: i64, hi: i64, f: &(dyn Fn(i64, i64) + Sync)) {
        if hi < lo {
            return;
        }
        let total = hi - lo + 1;
        let shared = &*self.shared;
        shared.stats.record_region(total as u64);

        // Run inline when parallelism cannot help or when called reentrantly
        // (from a worker thread, or from a submitter's own chunk closure
        // targeting the same pool). A 1-thread pool takes this path for
        // every region: no latch, no slot traffic, no wakeups.
        let nested = IN_WORKER.with(|flag| flag.get())
            || SUBMITTING.with(|s| s.borrow().contains(&(shared as *const Shared)));
        if self.handles.is_empty() || total < 2 || nested {
            shared.stats.record_inline();
            f(lo, hi + 1);
            return;
        }

        // Aim for several chunks per participant so imbalanced iterations
        // still spread out.
        let participants = self.handles.len() as i64 + 1;
        let chunk = (total / (participants * 4)).max(1);

        let region = Region {
            next: AtomicI64::new(lo),
            end: hi + 1,
            total,
            chunk,
            completed: AtomicI64::new(0),
            // SAFETY: erased to 'static; the latch wait + retire scan
            // below keep the borrow live for every dereference.
            func: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(i64, i64) + Sync),
                    *const (dyn Fn(i64, i64) + Sync),
                >(f as *const _)
            },
            latch: CountLatch::new(1),
            panicked: AtomicBool::new(false),
        };

        let slot = &shared.slot;
        // One live region per pool: serialize concurrent submitters. The
        // guard marks this thread as submitting to *this* pool, so a
        // same-pool reentrant submission inlines instead of self-
        // deadlocking on the non-reentrant mutex.
        let _reentry = SubmitGuard::enter(shared as *const Shared);
        let submit = shared.submit.lock().unwrap_or_else(|e| e.into_inner());

        // Publish: pointer first, then the odd generation, then one wake.
        slot.region
            .store(&region as *const Region as *mut Region, Ordering::Release);
        let epoch = slot.epoch.load(Ordering::Relaxed) + 1;
        debug_assert!(epoch % 2 == 1, "publish must produce an odd epoch");
        slot.epoch.store(epoch, Ordering::SeqCst);
        {
            let _guard = slot.mutex.lock().unwrap_or_else(|e| e.into_inner());
            slot.cond.notify_all();
        }

        // The caller works too, then waits for the last iteration.
        region.drain(&shared.stats);
        region.latch.wait();

        // Retire: flip to the even generation, then make sure no worker
        // still announces the retired one (it would be inside `drain`,
        // typically for nanoseconds — its cursor is already exhausted).
        slot.epoch.store(epoch + 1, Ordering::SeqCst);
        for cell in shared.states.iter() {
            let mut tries = 0usize;
            while cell.0.load(Ordering::SeqCst) == epoch {
                tries += 1;
                if tries > SPINS {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        slot.region.store(std::ptr::null_mut(), Ordering::Release);
        drop(submit);

        if region.panicked.load(Ordering::Acquire) {
            panic!("a DOALL iteration panicked (see worker output above)");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Bump by 2: parity stays even (no region), but every waiter sees
        // a change, re-checks the flag and exits.
        self.shared.slot.epoch.fetch_add(2, Ordering::SeqCst);
        {
            let _guard = self
                .shared
                .slot
                .mutex
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.shared.slot.cond.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let count = AtomicUsize::new(0);
        pool.for_range(0, 99, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        // The inline short-circuit: no workers, no broadcast, all regions
        // counted as inline.
        assert!(pool.handles.is_empty());
        let s = pool.stats();
        assert_eq!(s.regions, 1);
        assert_eq!(s.inline_regions, 1);
        assert_eq!(s.chunks, 0, "inline execution claims no chunks");
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(8);
        pool.for_range(0, 100, &|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn chunk_sizing_covers_uneven_ranges() {
        let pool = ThreadPool::new(3);
        for total in [1i64, 2, 3, 5, 7, 11, 97, 1000, 1001] {
            let count = AtomicUsize::new(0);
            pool.for_range(0, total - 1, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed) as i64, total);
        }
    }

    #[test]
    fn default_size_pool_works() {
        let pool = ThreadPool::with_default_size();
        assert!(pool.threads() >= 1);
        let count = AtomicUsize::new(0);
        pool.for_range(1, 64, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        // Two threads submit regions to the same pool; the submit mutex
        // serializes the broadcast slot, and every iteration still runs
        // exactly once.
        let pool = Arc::new(ThreadPool::new(3));
        let hits: Arc<Vec<AtomicUsize>> =
            Arc::new((0..2000).map(|_| AtomicUsize::new(0)).collect());
        let mut handles = Vec::new();
        for t in 0..2 {
            let pool = pool.clone();
            let hits = hits.clone();
            handles.push(std::thread::spawn(move || {
                let lo = t * 1000;
                for _ in 0..10 {
                    pool.for_range(lo, lo + 99, &|i| {
                        hits[i as usize].fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for (i, h) in hits.iter().enumerate() {
            let n = h.load(Ordering::Relaxed);
            let expected = if i % 1000 < 100 { 10 } else { 0 };
            assert_eq!(n, expected, "index {i} ran {n} times");
        }
    }

    #[test]
    fn cross_pool_submission_still_broadcasts() {
        // While submitting to one pool, a nested submission to a
        // *different* pool must broadcast; only same-pool reentry inlines.
        let outer = ThreadPool::new(2);
        let inner = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        {
            // Simulate being inside one of `outer`'s chunk closures.
            let _mid_submit = SubmitGuard::enter(&*outer.shared as *const Shared);
            inner.for_range(0, 99, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            outer.for_range(0, 99, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 200);
        assert_eq!(
            inner.stats().inline_regions,
            0,
            "different pool must broadcast"
        );
        assert_eq!(
            outer.stats().inline_regions,
            1,
            "same pool must inline while its submit is active"
        );
        // Guard popped: outer broadcasts again.
        outer.for_range(0, 99, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 300);
        assert_eq!(outer.stats().inline_regions, 1);
    }

    #[test]
    fn epoch_parity_tracks_publishes() {
        let pool = ThreadPool::new(2);
        let before = pool.shared.slot.epoch.load(Ordering::SeqCst);
        assert_eq!(before % 2, 0, "idle pool has an even epoch");
        pool.for_range(0, 9, &|_| {});
        let after = pool.shared.slot.epoch.load(Ordering::SeqCst);
        assert_eq!(after % 2, 0, "region fully retired");
        assert_eq!(after, before + 2, "one publish + one retire");
        assert!(
            pool.shared.slot.region.load(Ordering::SeqCst).is_null(),
            "no stale region pointer after retire"
        );
    }
}
