//! The worker pool and the sequential executor.
//!
//! ## Work-stealing multi-region design
//!
//! The pool admits **many concurrent in-flight regions**. Every region is
//! published on a *lane* — a small fixed stack of publication slots — and
//! drained cooperatively by its submitter plus any idle workers:
//!
//! * **Lanes.** Each pool worker owns one lane; a bounded set of extra
//!   *submitter lanes* serves external threads (a thread claims one with a
//!   single CAS for the duration of a top-level region and releases it on
//!   retire). A lane is a stack of `LANE_DEPTH` (8) slots: the owner pushes
//!   nested regions at the bottom (deepest slot) and pops them LIFO as
//!   they retire; thieves scan from the top (slot 0, the outermost —
//!   oldest — region first, where the most work lives).
//! * **Publish** (lane owner): store the region pointer, then a globally
//!   unique odd *epoch* into the slot, bump the pool version and wake
//!   sleepers only if any worker actually parked. No mutex is taken on the
//!   fast path, and concurrent submitters never serialize — each publishes
//!   on its own lane.
//! * **Steal** (idle workers): scan every lane's slots for a nonzero
//!   epoch, *announce* that epoch in a padded per-worker cell, re-check
//!   the slot still carries it (a seqcst store-load handshake), and only
//!   then drain the region. Epochs are never reused, so the re-check can
//!   never confuse two publications of the same slot (no ABA).
//! * **Drain** (chunk-granularity stealing): all participants claim
//!   `[next, next+chunk)` slices off the region's atomic cursor, so uneven
//!   wavefront rows rebalance across workers at chunk granularity.
//!   Completion stays *item-counted*: whoever retires the last iteration
//!   signals the region's one-shot [`CountLatch`]. A worker that never
//!   wakes for a short region cannot delay it.
//! * **Reentrant spawn.** `for_range` from inside a running chunk — on a
//!   worker or on a submitting thread — publishes a *nested* region on the
//!   current thread's lane (one slot deeper) instead of inlining serially:
//!   the spawning thread drains chunks of it while idle workers steal the
//!   rest. Nesting beyond `LANE_DEPTH` levels, and submitters beyond the
//!   lane budget, fall back to inline execution (correct, just serial).
//! * **Retire** (lane owner, after the latch): clear the slot's epoch,
//!   then wait until no worker still *announces* the retired epoch. The
//!   announce/re-check handshake guarantees the scan cannot return while
//!   any worker can still touch the stack-held `Region`, so the region —
//!   and the user closure it borrows — may live on the submitter's stack
//!   with zero per-region allocations.
//!
//! Progress does not depend on workers at all: every submitter drains its
//! own region's cursor to exhaustion before waiting on the latch, so a
//! fully busy (or 0-worker) pool still completes every region — nested
//! submissions cannot deadlock, whatever their shape.
//!
//! `ThreadPool::new(1)` spawns no workers and short-circuits every region
//! to inline execution — same behaviour as [`Sequential`], plus counters.

#![deny(unsafe_op_in_unsafe_fn)]

use crate::cancel::{CancelToken, Cancelled};
use crate::latch::CountLatch;
use crate::stats::{PoolStats, PoolStatsSnapshot};
use crate::Executor;
use ps_trace::{EvKind, Phase};
use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Executes ranges inline on the calling thread.
pub struct Sequential;

impl Executor for Sequential {
    fn threads(&self) -> usize {
        1
    }

    fn for_range(&self, lo: i64, hi: i64, f: &(dyn Fn(i64) + Sync)) {
        crate::cancel::check_current();
        for i in lo..=hi {
            f(i);
        }
    }

    fn for_chunks(&self, lo: i64, hi: i64, f: &(dyn Fn(i64, i64) + Sync)) {
        crate::cancel::check_current();
        if hi >= lo {
            f(lo, hi + 1);
        }
    }
}

/// Shared state of one `for_range` region.
///
/// Lives on the submitting thread's stack: the retire scan in
/// [`ThreadPool::for_chunks`] guarantees no worker dereferences the
/// published pointer after the submitter returns.
struct Region {
    /// Next index to hand out.
    next: AtomicI64,
    /// One past the last index.
    end: i64,
    /// Total number of iterations (`end - lo`).
    total: i64,
    /// Chunk width.
    chunk: i64,
    /// The region's unique publication epoch — also its trace span id, so
    /// chunk/steal/cancel events correlate with the publish span.
    epoch: u64,
    /// Iterations retired (executed, or skipped after a panic). The region
    /// completes when this reaches `total`.
    completed: AtomicI64,
    /// The user chunk closure `f(start, stop)`. Lifetime-erased: the caller
    /// of `for_range`/`for_chunks` blocks on `latch` (and then the retire
    /// scan) before returning, so the borrow outlives all uses.
    func: *const (dyn Fn(i64, i64) + Sync),
    /// One-shot completion latch, signalled by whichever participant
    /// retires the final iteration.
    latch: CountLatch,
    /// Set when any invocation panicked.
    panicked: AtomicBool,
    /// Cancel token captured from the submitter's [`CancelToken::enter`]
    /// scope, checked at every chunk boundary by all participants.
    cancel: Option<CancelToken>,
    /// Set when the region stopped because `cancel` fired (distinct from
    /// `panicked`: the submitter re-raises [`Cancelled`], not a pool
    /// panic, and the pool is not considered poisoned).
    cancelled: AtomicBool,
}

// SAFETY: `func` points to a `Sync` closure that outlives the region (the
// submitting thread waits on `latch` and then the retire scan before
// returning); all other fields are atomics or immutable.
unsafe impl Sync for Region {}

impl Region {
    /// Drain chunks until the cursor passes `end`. Returns the number of
    /// iterations this participant retired (0 = the visit was
    /// unproductive: every chunk was already claimed).
    fn drain(&self, stats: &PoolStats, stolen: bool) -> i64 {
        // SAFETY: see the `Sync` justification above; the announce
        // handshake (thieves) or ownership (submitter) keeps the borrow
        // alive for the whole drain.
        let f = unsafe { &*self.func };
        // Participants (the submitter re-entering, and thieves) install the
        // region's token so nested regions spawned from inside its chunks
        // observe cancellation too.
        let _scope = self.cancel.as_ref().map(|t| t.enter());
        let mut done = 0i64;
        loop {
            // Chunk-boundary cancellation: stop claiming, fast-forward the
            // cursor past the unclaimed remainder and retire it as skipped
            // (same shape as the panic path below) so the latch settles.
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    self.cancelled.store(true, Ordering::Release);
                    let unclaimed = self.next.swap(self.end, Ordering::Relaxed);
                    let skipped = (self.end - unclaimed).max(0);
                    if skipped > 0 {
                        stats.record_cancelled(((skipped + self.chunk - 1) / self.chunk) as u64);
                        ps_trace::emit(
                            EvKind::Cancel,
                            Phase::Instant,
                            self.epoch,
                            self.epoch,
                            skipped as u64,
                        );
                    }
                    self.retire(skipped);
                    return done;
                }
            }
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.end {
                return done;
            }
            let stop = (start + self.chunk).min(self.end);
            stats.record_chunk((stop - start) as u64, stolen);
            let chunk_t0 = if ps_trace::enabled() {
                ps_trace::now_ns()
            } else {
                0
            };
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                f(start, stop);
            }));
            if chunk_t0 != 0 {
                ps_trace::emit(
                    EvKind::Chunk,
                    Phase::Complete,
                    self.epoch,
                    ps_trace::now_ns().saturating_sub(chunk_t0),
                    start as u64,
                );
            }
            if let Err(payload) = result {
                // A `Cancelled` unwind (a nested region observed the
                // token) stops the range like a panic but is reported as
                // cancellation, not poisoning.
                let was_cancel = payload.is::<Cancelled>();
                if was_cancel {
                    self.cancelled.store(true, Ordering::Release);
                } else {
                    self.panicked.store(true, Ordering::Release);
                }
                // Cancel the rest of the range: claim whatever is still
                // unclaimed and retire it as skipped, so the latch still
                // completes. Concurrently claimed chunks are retired by
                // their claimers; anything past `end` was never real work.
                let unclaimed = self.next.swap(self.end, Ordering::Relaxed);
                let skipped = (self.end - unclaimed).max(0);
                if was_cancel && skipped > 0 {
                    stats.record_cancelled(((skipped + self.chunk - 1) / self.chunk) as u64);
                    ps_trace::emit(
                        EvKind::Cancel,
                        Phase::Instant,
                        self.epoch,
                        self.epoch,
                        skipped as u64,
                    );
                }
                self.retire((stop - start) + skipped);
                return done + (stop - start);
            }
            self.retire(stop - start);
            done += stop - start;
        }
    }

    /// Account `n` finished iterations; the last one signals the latch.
    ///
    /// `AcqRel` chains the retiring participants together so the final
    /// retirer (and, through the latch, the submitter) observes every
    /// write the user closure made.
    fn retire(&self, n: i64) {
        if n == 0 {
            return;
        }
        if self.completed.fetch_add(n, Ordering::AcqRel) + n == self.total {
            self.latch.count_down();
        }
    }
}

/// Worker announce cell, padded to its own cache line so the retire scan
/// and the announce stores do not false-share.
#[repr(align(128))]
struct AnnounceCell(AtomicU64);

/// Announce value meaning "not draining any stolen region".
const IDLE: u64 = 0;

/// Live regions one lane can advertise at once — the maximum reentrant
/// nesting depth before spawns fall back to inline execution.
const LANE_DEPTH: usize = 8;

/// One publication slot of a lane.
struct LaneSlot {
    /// 0 = empty; otherwise the unique odd epoch of the published region.
    /// Epochs come from a pool-wide counter and are never reused, so a
    /// thief's announce/re-check can never confuse two publications.
    epoch: AtomicU64,
    /// Pointer to the live region while `epoch` is nonzero. Stored
    /// *before* the epoch on publish; a thief therefore validates the
    /// (epoch, pointer) pair by re-checking the epoch after reading both.
    region: AtomicPtr<Region>,
}

/// One publication lane: a bounded LIFO stack of live regions owned by a
/// single thread at a time. Padded so thieves scanning one lane do not
/// false-share with owners publishing on a neighbour.
#[repr(align(128))]
struct Lane {
    slots: [LaneSlot; LANE_DEPTH],
    /// Submitter lanes only: claimed by one external thread for the
    /// duration of a top-level region (worker lanes stay claimed forever).
    claimed: AtomicBool,
}

impl Lane {
    fn new(claimed: bool) -> Lane {
        Lane {
            slots: std::array::from_fn(|_| LaneSlot {
                epoch: AtomicU64::new(0),
                region: AtomicPtr::new(std::ptr::null_mut()),
            }),
            claimed: AtomicBool::new(claimed),
        }
    }
}

struct Shared {
    /// `[0, n_workers)` are worker lanes; the rest are submitter lanes.
    lanes: Box<[Lane]>,
    n_workers: usize,
    /// One announce cell per worker (thieves only; submitters never steal).
    announces: Box<[AnnounceCell]>,
    /// Epoch allocator: starts at 1, steps by 2 — every publish gets a
    /// fresh odd epoch, pool-wide.
    epoch_gen: AtomicU64,
    /// Bumped on every publish; idle workers spin on it and park when it
    /// stops moving.
    version: AtomicU64,
    /// Regions currently published (a gauge feeding the
    /// `max_live_regions` high-water stat).
    live: AtomicU64,
    /// Workers currently parked (or about to park) on `cond`.
    sleepers: AtomicU64,
    /// Sleep/wake plumbing; the mutex protects no data, only the condvar
    /// protocol (workers re-check `version` under it before waiting).
    mutex: Mutex<()>,
    cond: Condvar,
    shutdown: AtomicBool,
    stats: PoolStats,
}

/// One entry of the thread-local lane stack: this thread currently owns
/// `lane` on `pool`, with `depth` live regions published on it.
struct ActiveLane {
    pool: *const Shared,
    lane: usize,
    depth: usize,
    /// Worker lanes are never released; claimed submitter lanes are.
    permanent: bool,
}

thread_local! {
    /// Lanes this thread currently owns, newest last. A nested `for_range`
    /// on a pool already present publishes one slot deeper on the same
    /// lane; a submission to a new pool claims a fresh submitter lane.
    static ACTIVE: RefCell<Vec<ActiveLane>> = const { RefCell::new(Vec::new()) };
}

/// A fixed-size pool of persistent worker threads with per-lane region
/// publication and chunk-granularity work stealing.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    n_threads: usize,
}

/// Spin iterations on the version counter before yielding, and yields
/// before parking on the condvar. Short regions complete in well under the
/// spin window, so a busy pool rarely touches the futex at all.
const SPINS: usize = 128;
const YIELDS: usize = 32;

/// Scan every lane for a region with unclaimed chunks and drain the first
/// one found. Returns `true` if any iterations were executed.
///
/// Scan order: lanes rotated by the worker index (spreading thieves),
/// slots from the top (slot 0 — the outermost, oldest region, where the
/// most unclaimed work usually lives). Lane slots fill bottom-up and pop
/// LIFO, so the first empty slot ends the lane.
fn try_steal(shared: &Shared, me: usize) -> bool {
    let n = shared.lanes.len();
    let announce = &shared.announces[me].0;
    for k in 0..n {
        let lane = &shared.lanes[(me + 1 + k) % n];
        for slot in lane.slots.iter() {
            let e = slot.epoch.load(Ordering::SeqCst);
            if e == 0 {
                break; // slots fill contiguously from 0
            }
            // Validate the (epoch, pointer) pair: read both, announce the
            // epoch, then re-check the slot still carries it. The seqcst
            // announce/re-check pair means the owner's retire scan either
            // sees our announce and waits for us, or already cleared the
            // epoch — in which case the re-check fails and we never touch
            // the pointer. Unique epochs rule out ABA across republishes.
            let ptr = slot.region.load(Ordering::SeqCst);
            announce.store(e, Ordering::SeqCst);
            let mut done = 0i64;
            if slot.epoch.load(Ordering::SeqCst) == e && !ptr.is_null() {
                // SAFETY: the announce/re-check handshake above plus the
                // owner's retire scan keep the region alive while we
                // drain it.
                let region = unsafe { &*ptr };
                done = region.drain(&shared.stats, true);
            }
            announce.store(IDLE, Ordering::SeqCst);
            if done > 0 {
                ps_trace::emit(EvKind::Steal, Phase::Instant, e, e, done as u64);
                return true;
            }
        }
    }
    false
}

fn worker_loop(shared: &Arc<Shared>, me: usize) {
    // The worker's lane is its permanent publication home for regions
    // spawned reentrantly from inside chunks it executes.
    ACTIVE.with(|a| {
        a.borrow_mut().push(ActiveLane {
            pool: Arc::as_ptr(shared),
            lane: me,
            depth: 0,
            permanent: true,
        })
    });
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Snapshot the version *before* scanning: a publish that lands
        // mid-scan moves it, so the idle path below rescans instead of
        // sleeping through it.
        let v = shared.version.load(Ordering::SeqCst);
        if try_steal(shared, me) {
            continue;
        }
        // Nothing productive at version v: spin, then yield, then park
        // until a new region is published.
        let mut moved = false;
        for spin in 0..(SPINS + YIELDS) {
            if spin < SPINS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            if shared.version.load(Ordering::SeqCst) != v || shared.shutdown.load(Ordering::Acquire)
            {
                moved = true;
                break;
            }
        }
        if moved {
            continue;
        }
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let mut guard = shared.mutex.lock().unwrap_or_else(|e| e.into_inner());
            while shared.version.load(Ordering::SeqCst) == v
                && !shared.shutdown.load(Ordering::Acquire)
            {
                guard = shared.cond.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
        }
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Restores the thread-local lane stack (and the lane claim) on scope
/// exit, even on unwind.
struct LaneScope {
    pool: *const Shared,
    lane: usize,
}

impl Drop for LaneScope {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            let mut active = a.borrow_mut();
            let i = active
                .iter()
                .rposition(|e| e.pool == self.pool && e.lane == self.lane)
                .expect("lane scope entry present");
            active[i].depth -= 1;
            if active[i].depth == 0 && !active[i].permanent {
                let entry = active.remove(i);
                // SAFETY: the pool outlives every lane scope — external
                // submitters hold `&ThreadPool` across `for_chunks`, and
                // worker threads are joined before `Shared` drops.
                let shared = unsafe { &*entry.pool };
                shared.lanes[entry.lane]
                    .claimed
                    .store(false, Ordering::Release);
            }
        });
    }
}

impl ThreadPool {
    /// Create a pool wrapped in an [`Arc`] — the shape long-lived services
    /// want: every service worker thread holds a clone of the handle next
    /// to its shared `&Program`, and the `Executor for Arc<E>` impl makes
    /// the handle itself an executor. One pool serves all workers, and
    /// concurrent submitters genuinely overlap: each publishes regions on
    /// its own lane while idle workers steal chunks from all of them.
    pub fn shared(n: usize) -> Arc<ThreadPool> {
        Arc::new(ThreadPool::new(n))
    }

    /// Create a pool with `n` worker threads (minimum 1). The calling
    /// thread also participates in every region, so the effective
    /// parallelism of `for_range` is `n - 1` (workers) + 1 (caller),
    /// capped by the chunk count. `n = 1` spawns no workers at all and
    /// runs every region inline.
    pub fn new(n: usize) -> ThreadPool {
        let n = n.max(1);
        // The caller participates, so spawn n-1 workers for n-way
        // parallelism.
        let n_workers = n - 1;
        // Submitter lanes bound how many external threads can have live
        // regions at once; extra submitters fall back to inline execution.
        let n_submit_lanes = (2 * n).max(8);
        let shared = Arc::new(Shared {
            lanes: (0..n_workers + n_submit_lanes)
                .map(|i| Lane::new(i < n_workers))
                .collect(),
            n_workers,
            announces: (0..n_workers)
                .map(|_| AnnounceCell(AtomicU64::new(IDLE)))
                .collect(),
            epoch_gen: AtomicU64::new(1),
            version: AtomicU64::new(0),
            live: AtomicU64::new(0),
            sleepers: AtomicU64::new(0),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: PoolStats::default(),
        });
        let handles = (0..n_workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ps-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            n_threads: n,
        }
    }

    /// A pool sized to the machine (`available_parallelism`).
    pub fn with_default_size() -> ThreadPool {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ThreadPool::new(n)
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> PoolStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Find this thread's lane on the pool: the existing entry for a
    /// nested spawn, or a freshly claimed submitter lane. Returns the lane
    /// index and the slot depth to publish at, or `None` when the region
    /// must run inline (nesting too deep, or all submitter lanes busy).
    /// The matching [`LaneScope`] restores the stack on drop.
    fn enter_lane(&self, shared: &Shared) -> Option<(usize, usize, bool, LaneScope)> {
        let pool = shared as *const Shared;
        ACTIVE.with(|a| {
            let mut active = a.borrow_mut();
            if let Some(e) = active.iter_mut().rfind(|e| e.pool == pool) {
                if e.depth >= LANE_DEPTH {
                    return None;
                }
                let (lane, depth) = (e.lane, e.depth);
                e.depth += 1;
                return Some((lane, depth, true, LaneScope { pool, lane }));
            }
            let lane = (shared.n_workers..shared.lanes.len()).find(|&i| {
                shared.lanes[i]
                    .claimed
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            })?;
            active.push(ActiveLane {
                pool,
                lane,
                depth: 1,
                permanent: false,
            });
            Some((lane, 0, false, LaneScope { pool, lane }))
        })
    }
}

impl Executor for ThreadPool {
    fn threads(&self) -> usize {
        self.n_threads
    }

    fn for_range(&self, lo: i64, hi: i64, f: &(dyn Fn(i64) + Sync)) {
        let by_chunk = move |start: i64, stop: i64| {
            for i in start..stop {
                f(i);
            }
        };
        self.for_chunks(lo, hi, &by_chunk);
    }

    fn for_chunks(&self, lo: i64, hi: i64, f: &(dyn Fn(i64, i64) + Sync)) {
        if hi < lo {
            return;
        }
        let total = hi - lo + 1;
        let shared = &*self.shared;
        shared.stats.record_region(total as u64);

        // A token already fired before any work was claimed: shed the
        // whole region (this also covers the inline fallbacks below).
        let cancel = CancelToken::current();
        if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            shared.stats.record_cancelled(1);
            ps_trace::emit(EvKind::Cancel, Phase::Instant, 0, 0, total as u64);
            std::panic::panic_any(Cancelled);
        }

        // Run inline when parallelism cannot help. A 1-thread pool takes
        // this path for every region: no latch, no lane traffic, no
        // wakeups.
        if self.handles.is_empty() || total < 2 {
            shared.stats.record_inline();
            f(lo, hi + 1);
            return;
        }
        // Find (or claim) this thread's lane; when the nesting budget or
        // the submitter-lane budget is exhausted, inline is the correct
        // serial fallback.
        let Some((lane_idx, depth, nested, _scope)) = self.enter_lane(shared) else {
            shared.stats.record_inline();
            f(lo, hi + 1);
            return;
        };
        if nested {
            shared.stats.record_nested();
        }

        // Aim for several chunks per participant so imbalanced iterations
        // still spread out (and thieves have something to steal).
        let participants = self.n_threads as i64;
        let chunk = (total / (participants * 4)).max(1);
        let epoch = shared.epoch_gen.fetch_add(2, Ordering::Relaxed);
        debug_assert!(epoch % 2 == 1, "epochs are odd");
        if nested {
            ps_trace::emit(EvKind::Nested, Phase::Instant, epoch, epoch, total as u64);
        }

        let region = Region {
            next: AtomicI64::new(lo),
            end: hi + 1,
            total,
            chunk,
            epoch,
            completed: AtomicI64::new(0),
            // SAFETY: erased to 'static; the latch wait + retire scan
            // below keep the borrow live for every dereference.
            func: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(i64, i64) + Sync),
                    *const (dyn Fn(i64, i64) + Sync),
                >(f as *const _)
            },
            latch: CountLatch::new(1),
            panicked: AtomicBool::new(false),
            cancel,
            cancelled: AtomicBool::new(false),
        };

        // Publish: pointer first, then the fresh odd epoch, then bump the
        // version and wake workers only if any are actually parked.
        let slot = &shared.lanes[lane_idx].slots[depth];
        ps_trace::emit(
            EvKind::Publish,
            Phase::Begin,
            epoch,
            total as u64,
            lane_idx as u64,
        );
        slot.region
            .store(&region as *const Region as *mut Region, Ordering::SeqCst);
        slot.epoch.store(epoch, Ordering::SeqCst);
        shared
            .stats
            .record_live(shared.live.fetch_add(1, Ordering::Relaxed) + 1);
        shared.version.fetch_add(1, Ordering::SeqCst);
        if shared.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = shared.mutex.lock().unwrap_or_else(|e| e.into_inner());
            shared.cond.notify_all();
        }

        // The caller works too, then waits for the last iteration.
        region.drain(&shared.stats, false);
        region.latch.wait();

        // Retire: clear the epoch (new thieves now fail the re-check),
        // then make sure no worker still announces the retired epoch (it
        // would be inside `drain`, typically for nanoseconds — the cursor
        // is already exhausted).
        slot.epoch.store(0, Ordering::SeqCst);
        slot.region.store(std::ptr::null_mut(), Ordering::Relaxed);
        shared.live.fetch_sub(1, Ordering::Relaxed);
        for cell in shared.announces.iter() {
            let mut tries = 0usize;
            while cell.0.load(Ordering::SeqCst) == epoch {
                tries += 1;
                if tries > SPINS {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        ps_trace::emit(EvKind::Publish, Phase::End, epoch, 0, 0);
        drop(_scope);

        if region.panicked.load(Ordering::Acquire) {
            panic!("a DOALL iteration panicked (see worker output above)");
        }
        // A genuine panic wins over cancellation: the region may have both
        // (a chunk crashed while the token fired), and the crash is the
        // information the caller must not lose.
        if region.cancelled.load(Ordering::Acquire) {
            std::panic::panic_any(Cancelled);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Move the version so every spinner re-checks the flag and exits.
        self.shared.version.fetch_add(1, Ordering::SeqCst);
        {
            let _guard = self.shared.mutex.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.cond.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let count = AtomicUsize::new(0);
        pool.for_range(0, 99, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        // The inline short-circuit: no workers, no publication, all
        // regions counted as inline.
        assert!(pool.handles.is_empty());
        let s = pool.stats();
        assert_eq!(s.regions, 1);
        assert_eq!(s.inline_regions, 1);
        assert_eq!(s.chunks, 0, "inline execution claims no chunks");
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(8);
        pool.for_range(0, 100, &|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn chunk_sizing_covers_uneven_ranges() {
        let pool = ThreadPool::new(3);
        for total in [1i64, 2, 3, 5, 7, 11, 97, 1000, 1001] {
            let count = AtomicUsize::new(0);
            pool.for_range(0, total - 1, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed) as i64, total);
        }
    }

    #[test]
    fn default_size_pool_works() {
        let pool = ThreadPool::with_default_size();
        assert!(pool.threads() >= 1);
        let count = AtomicUsize::new(0);
        pool.for_range(1, 64, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        // Two threads submit regions to the same pool concurrently — each
        // on its own lane, with live regions overlapping — and every
        // iteration still runs exactly once.
        let pool = Arc::new(ThreadPool::new(3));
        let hits: Arc<Vec<AtomicUsize>> =
            Arc::new((0..2000).map(|_| AtomicUsize::new(0)).collect());
        let mut handles = Vec::new();
        for t in 0..2 {
            let pool = pool.clone();
            let hits = hits.clone();
            handles.push(std::thread::spawn(move || {
                let lo = t * 1000;
                for _ in 0..10 {
                    pool.for_range(lo, lo + 99, &|i| {
                        hits[i as usize].fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for (i, h) in hits.iter().enumerate() {
            let n = h.load(Ordering::Relaxed);
            let expected = if i % 1000 < 100 { 10 } else { 0 };
            assert_eq!(n, expected, "index {i} ran {n} times");
        }
    }

    #[test]
    fn nested_spawn_publishes_instead_of_inlining() {
        // A nested for_range on the same pool publishes a real region one
        // lane slot deeper (no self-deadlock, no serial inlining).
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        pool.for_range(0, 3, &|_| {
            pool.for_range(0, 63, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 4 * 64);
        let s = pool.stats();
        assert_eq!(s.regions, 5, "outer + 4 inner");
        assert_eq!(s.nested_regions, 4, "every inner region was nested");
        assert_eq!(s.inline_regions, 0, "nothing fell back to inline");
    }

    #[test]
    fn nesting_beyond_lane_depth_falls_back_inline() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        fn recurse(pool: &ThreadPool, depth: usize, count: &AtomicUsize) {
            if depth == 0 {
                count.fetch_add(1, Ordering::Relaxed);
                return;
            }
            pool.for_range(0, 1, &|_| recurse(pool, depth - 1, count));
        }
        // Deeper than LANE_DEPTH: the overflow levels run inline, and
        // every leaf still executes exactly once.
        recurse(&pool, LANE_DEPTH + 3, &count);
        assert_eq!(count.load(Ordering::Relaxed), 1 << (LANE_DEPTH + 3));
        assert!(pool.stats().inline_regions > 0, "deep levels inlined");
    }

    #[test]
    fn cross_pool_submission_broadcasts_on_both() {
        // A nested submission to a *different* pool claims a lane there
        // and broadcasts; the same-pool nested submission publishes too.
        let outer = ThreadPool::new(2);
        let inner = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        outer.for_range(0, 3, &|_| {
            inner.for_range(0, 24, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 4 * 25);
        assert_eq!(inner.stats().regions, 4);
        assert_eq!(inner.stats().inline_regions, 0, "cross-pool broadcasts");
        assert_eq!(inner.stats().nested_regions, 0, "fresh lane, not nested");
        assert_eq!(outer.stats().nested_regions, 0);
    }

    #[test]
    fn lane_slots_clear_after_retire() {
        let pool = ThreadPool::new(2);
        pool.for_range(0, 9, &|_| {});
        for lane in pool.shared.lanes.iter() {
            for slot in lane.slots.iter() {
                assert_eq!(slot.epoch.load(Ordering::SeqCst), 0, "slot retired");
                assert!(slot.region.load(Ordering::SeqCst).is_null());
            }
            // Worker lanes stay claimed; submitter lanes were released.
        }
        for lane in pool.shared.lanes[pool.shared.n_workers..].iter() {
            assert!(!lane.claimed.load(Ordering::SeqCst), "lane released");
        }
    }

    #[test]
    fn cancelled_token_stops_region_early_without_poisoning() {
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        let count = AtomicUsize::new(0);
        {
            let _scope = token.enter();
            let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.for_range(0, 99_999, &|i| {
                    if i == 0 {
                        token.cancel();
                    }
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }))
            .expect_err("cancellation must unwind to the submitter");
            assert!(
                payload.is::<Cancelled>(),
                "payload is Cancelled, not a panic"
            );
        }
        let ran = count.load(Ordering::Relaxed);
        assert!(ran < 100_000, "cancellation skipped work (ran {ran})");
        assert!(pool.stats().cancelled_chunks > 0, "skipped chunks counted");
        // The pool is not poisoned: a fresh region runs normally.
        let again = AtomicUsize::new(0);
        pool.for_range(0, 9, &|_| {
            again.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(again.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn pre_cancelled_token_sheds_the_whole_region() {
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        token.cancel();
        let _scope = token.enter();
        let count = AtomicUsize::new(0);
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_range(0, 999, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }))
        .expect_err("pre-cancelled region must not run");
        assert!(payload.is::<Cancelled>());
        assert_eq!(count.load(Ordering::Relaxed), 0, "no iteration executed");
        assert!(pool.stats().cancelled_chunks >= 1);
    }

    #[test]
    fn sequential_respects_current_token() {
        let token = CancelToken::new();
        token.cancel();
        let _scope = token.enter();
        let count = AtomicUsize::new(0);
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Sequential.for_range(0, 99, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }))
        .expect_err("sequential execution checks the token at entry");
        assert!(payload.is::<Cancelled>());
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn real_panic_wins_over_cancellation() {
        // When a chunk crashes and the token fires, the submitter must see
        // the panic (the bug), not the quieter Cancelled payload.
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        let _scope = token.enter();
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_range(0, 9_999, &|i| {
                if i % 1000 == 7 {
                    token.cancel();
                    panic!("real bug at {i}");
                }
            });
        }))
        .expect_err("panic must propagate");
        assert!(!payload.is::<Cancelled>(), "panic outranks cancellation");
    }

    #[test]
    fn overlapping_regions_make_progress_together() {
        // Two submitters publish regions whose first iterations wait for
        // *each other* — impossible unless both regions are live at once.
        let pool = Arc::new(ThreadPool::new(2));
        let flags: Arc<[AtomicBool; 2]> =
            Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);
        let mut handles = Vec::new();
        for t in 0..2usize {
            let pool = pool.clone();
            let flags = flags.clone();
            handles.push(std::thread::spawn(move || {
                pool.for_range(0, 3, &|i| {
                    flags[t].store(true, Ordering::SeqCst);
                    if i == 0 {
                        // Wait (bounded) until the other submitter's
                        // region has started too.
                        let deadline =
                            std::time::Instant::now() + std::time::Duration::from_secs(20);
                        while !flags[1 - t].load(Ordering::SeqCst) {
                            assert!(
                                std::time::Instant::now() < deadline,
                                "regions never overlapped"
                            );
                            std::thread::yield_now();
                        }
                    }
                });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(flags[0].load(Ordering::SeqCst) && flags[1].load(Ordering::SeqCst));
        assert!(
            pool.stats().max_live_regions >= 2,
            "both regions were live at once"
        );
    }
}
