//! The worker pool and the sequential executor.

use crate::latch::CountLatch;
use crate::stats::{PoolStats, PoolStatsSnapshot};
use crate::Executor;
use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Executes ranges inline on the calling thread.
pub struct Sequential;

impl Executor for Sequential {
    fn threads(&self) -> usize {
        1
    }

    fn for_range(&self, lo: i64, hi: i64, f: &(dyn Fn(i64) + Sync)) {
        for i in lo..=hi {
            f(i);
        }
    }

    fn for_chunks(&self, lo: i64, hi: i64, f: &(dyn Fn(i64, i64) + Sync)) {
        if hi >= lo {
            f(lo, hi + 1);
        }
    }
}

/// Shared state of one `for_range` region.
///
/// Workers self-schedule: each grabs `[next, next+chunk)` slices off the
/// atomic cursor until the range is exhausted.
struct Region {
    /// Next index to hand out.
    next: AtomicI64,
    /// One past the last index.
    end: i64,
    /// Chunk width.
    chunk: i64,
    /// The user chunk closure `f(start, stop)`. Lifetime-erased: the caller
    /// of `for_range`/`for_chunks` blocks on `latch` before returning, so
    /// the borrow outlives all uses.
    func: *const (dyn Fn(i64, i64) + Sync),
    /// Counted down once per worker that finishes draining the region.
    latch: CountLatch,
    /// Set when any invocation panicked.
    panicked: AtomicBool,
}

// SAFETY: `func` points to a `Sync` closure that outlives the region (the
// submitting thread waits on `latch`); all other fields are atomics.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// Drain chunks until the cursor passes `end`. Returns items executed.
    fn drain(&self, stats: &PoolStats) {
        // SAFETY: see the `Send`/`Sync` justification above.
        let f = unsafe { &*self.func };
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.end {
                return;
            }
            let stop = (start + self.chunk).min(self.end);
            stats.record_chunk((stop - start) as u64);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                f(start, stop);
            }));
            if result.is_err() {
                self.panicked.store(true, Ordering::Release);
                // Keep draining so the latch still completes; remaining
                // indices are skipped by claiming them.
                self.next.store(self.end, Ordering::Relaxed);
                return;
            }
        }
    }
}

enum Message {
    Work(Arc<Region>),
    Shutdown,
}

thread_local! {
    /// True on pool worker threads; nested `for_range` calls run inline to
    /// avoid self-deadlock.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// One persistent worker: its private job channel plus the join handle.
///
/// `std::sync::mpsc` receivers are single-consumer, so instead of one shared
/// work queue (the crossbeam-style design) every worker owns its own channel
/// and the pool broadcasts a clone of the `Arc<Region>` to each. Region
/// *chunks* are still claimed dynamically off the shared atomic cursor, so
/// load balancing is unchanged.
struct Worker {
    sender: Sender<Message>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed-size pool of persistent worker threads.
pub struct ThreadPool {
    workers: Vec<Worker>,
    n_threads: usize,
    stats: Arc<PoolStats>,
}

impl ThreadPool {
    /// Create a pool with `n` worker threads (minimum 1). The calling
    /// thread also participates in every region, so the effective
    /// parallelism of `for_range` is `n` (workers) + 1 (caller), capped by
    /// the chunk count.
    pub fn new(n: usize) -> ThreadPool {
        let n = n.max(1);
        // The caller participates, so spawn n-1 workers for n-way
        // parallelism.
        let n_workers = n - 1;
        let stats = Arc::new(PoolStats::default());
        let workers = (0..n_workers)
            .map(|w| {
                let (sender, receiver) = std::sync::mpsc::channel::<Message>();
                let stats = stats.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("ps-worker-{w}"))
                    .spawn(move || {
                        IN_WORKER.with(|f| f.set(true));
                        while let Ok(Message::Work(region)) = receiver.recv() {
                            region.drain(&stats);
                            region.latch.count_down();
                        }
                    })
                    .expect("spawn worker");
                Worker {
                    sender,
                    handle: Some(handle),
                }
            })
            .collect();
        ThreadPool {
            workers,
            n_threads: n,
            stats,
        }
    }

    /// A pool sized to the machine (`available_parallelism`).
    pub fn with_default_size() -> ThreadPool {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ThreadPool::new(n)
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> PoolStatsSnapshot {
        self.stats.snapshot()
    }
}

impl Executor for ThreadPool {
    fn threads(&self) -> usize {
        self.n_threads
    }

    fn for_range(&self, lo: i64, hi: i64, f: &(dyn Fn(i64) + Sync)) {
        let by_chunk = move |start: i64, stop: i64| {
            for i in start..stop {
                f(i);
            }
        };
        self.for_chunks(lo, hi, &by_chunk);
    }

    fn for_chunks(&self, lo: i64, hi: i64, f: &(dyn Fn(i64, i64) + Sync)) {
        if hi < lo {
            return;
        }
        let total = hi - lo + 1;
        self.stats.record_region(total as u64);

        // Run inline when parallelism cannot help or when called from a
        // worker thread (nested DOALL).
        let nested = IN_WORKER.with(|flag| flag.get());
        if self.workers.is_empty() || total < 2 || nested {
            f(lo, hi + 1);
            return;
        }

        // Aim for several chunks per participant so imbalanced iterations
        // still spread out.
        let participants = (self.workers.len() + 1) as i64;
        let chunk = (total / (participants * 4)).max(1);

        let region = Arc::new(Region {
            next: AtomicI64::new(lo),
            end: hi + 1,
            chunk,
            // SAFETY: erased to 'static; `wait` below keeps the borrow live.
            func: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(i64, i64) + Sync),
                    *const (dyn Fn(i64, i64) + Sync),
                >(f as *const _)
            },
            latch: CountLatch::new(self.workers.len()),
            panicked: AtomicBool::new(false),
        });

        for worker in &self.workers {
            worker
                .sender
                .send(Message::Work(region.clone()))
                .expect("workers alive while pool alive");
        }
        // The caller works too.
        region.drain(&self.stats);
        region.latch.wait();

        if region.panicked.load(Ordering::Acquire) {
            panic!("a DOALL iteration panicked (see worker output above)");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for worker in &self.workers {
            let _ = worker.sender.send(Message::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let count = AtomicUsize::new(0);
        pool.for_range(0, 99, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(8);
        pool.for_range(0, 100, &|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn chunk_sizing_covers_uneven_ranges() {
        let pool = ThreadPool::new(3);
        for total in [1i64, 2, 3, 5, 7, 11, 97, 1000, 1001] {
            let count = AtomicUsize::new(0);
            pool.for_range(0, total - 1, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed) as i64, total);
        }
    }

    #[test]
    fn default_size_pool_works() {
        let pool = ThreadPool::with_default_size();
        assert!(pool.threads() >= 1);
        let count = AtomicUsize::new(0);
        pool.for_range(1, 64, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }
}
