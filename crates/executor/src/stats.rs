//! Execution counters for the pool (cheap relaxed atomics).

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal counters shared by all workers.
#[derive(Default)]
pub struct PoolStats {
    regions: AtomicU64,
    chunks: AtomicU64,
    items: AtomicU64,
    inline_regions: AtomicU64,
    steals: AtomicU64,
    nested_regions: AtomicU64,
    max_live_regions: AtomicU64,
    cancelled_chunks: AtomicU64,
}

impl PoolStats {
    pub(crate) fn record_region(&self, items: u64) {
        self.regions.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(items, Ordering::Relaxed);
    }

    /// A chunk claimed off a region's cursor; `stolen` when the claimer
    /// is an idle worker rather than the region's submitter.
    pub(crate) fn record_chunk(&self, _items: u64, stolen: bool) {
        self.chunks.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A region executed inline (too small, lane budget exhausted, or a
    /// 1-thread pool) instead of being published.
    pub(crate) fn record_inline(&self) {
        self.inline_regions.fetch_add(1, Ordering::Relaxed);
    }

    /// A region published reentrantly from inside a running chunk.
    pub(crate) fn record_nested(&self) {
        self.nested_regions.fetch_add(1, Ordering::Relaxed);
    }

    /// High-water mark of simultaneously live regions, observed at
    /// publish time.
    pub(crate) fn record_live(&self, live_now: u64) {
        self.max_live_regions.fetch_max(live_now, Ordering::Relaxed);
    }

    /// `n` chunks skipped because a region's cancel token fired before
    /// they were claimed.
    pub(crate) fn record_cancelled(&self, n: u64) {
        self.cancelled_chunks.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            regions: self.regions.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            inline_regions: self.inline_regions.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            nested_regions: self.nested_regions.load(Ordering::Relaxed),
            max_live_regions: self.max_live_regions.load(Ordering::Relaxed),
            cancelled_chunks: self.cancelled_chunks.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the pool counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// `for_range` invocations.
    pub regions: u64,
    /// Chunks claimed by participants (published regions only).
    pub chunks: u64,
    /// Total loop iterations requested.
    pub items: u64,
    /// Regions short-circuited to inline execution (a subset of
    /// `regions`): single-iteration ranges, spawns past the lane-depth
    /// or submitter-lane budget, and everything on a 1-thread pool.
    pub inline_regions: u64,
    /// Chunks drained by an idle worker rather than the region's own
    /// submitter (a subset of `chunks`). Inherently schedule-dependent.
    pub steals: u64,
    /// Regions published reentrantly from inside a running chunk (a
    /// subset of `regions`) instead of falling back to inline execution.
    pub nested_regions: u64,
    /// High-water mark of regions live at once (counted at publish;
    /// ≥ 2 proves concurrent submitters — or nesting — genuinely
    /// overlapped). Inherently schedule-dependent.
    pub max_live_regions: u64,
    /// Chunks skipped because a region's cancel token fired before they
    /// were claimed (whole pre-cancelled regions count once). Nonzero
    /// proves a timed-out solve genuinely stopped early instead of
    /// running to completion.
    pub cancelled_chunks: u64,
}

impl std::fmt::Display for PoolStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} regions ({} inline, {} nested), {} chunks ({} stolen), {} items, {} cancelled",
            self.regions,
            self.inline_regions,
            self.nested_regions,
            self.chunks,
            self.steals,
            self.items,
            self.cancelled_chunks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let s = PoolStats::default();
        s.record_region(10);
        s.record_chunk(5, false);
        s.record_chunk(5, true);
        s.record_inline();
        s.record_nested();
        let snap = s.snapshot();
        assert_eq!(snap.regions, 1);
        assert_eq!(snap.chunks, 2);
        assert_eq!(snap.items, 10);
        assert_eq!(snap.inline_regions, 1);
        assert_eq!(snap.steals, 1);
        assert_eq!(snap.nested_regions, 1);
        assert!(format!("{snap}").contains("1 regions (1 inline"));
    }
}
