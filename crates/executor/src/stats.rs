//! Execution counters for the pool (cheap relaxed atomics).

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal counters shared by all workers.
#[derive(Default)]
pub struct PoolStats {
    regions: AtomicU64,
    chunks: AtomicU64,
    items: AtomicU64,
    inline_regions: AtomicU64,
}

impl PoolStats {
    pub(crate) fn record_region(&self, items: u64) {
        self.regions.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(items, Ordering::Relaxed);
    }

    pub(crate) fn record_chunk(&self, _items: u64) {
        self.chunks.fetch_add(1, Ordering::Relaxed);
    }

    /// A region executed inline (too small, nested, or a 1-thread pool)
    /// instead of being broadcast.
    pub(crate) fn record_inline(&self) {
        self.inline_regions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            regions: self.regions.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            inline_regions: self.inline_regions.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the pool counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// `for_range` invocations.
    pub regions: u64,
    /// Chunks claimed by participants (broadcast regions only).
    pub chunks: u64,
    /// Total loop iterations requested.
    pub items: u64,
    /// Regions short-circuited to inline execution (a subset of
    /// `regions`): single-iteration ranges, nested DOALLs on a worker
    /// thread, and everything submitted to a 1-thread pool.
    pub inline_regions: u64,
}

impl std::fmt::Display for PoolStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} regions ({} inline), {} chunks, {} items",
            self.regions, self.inline_regions, self.chunks, self.items
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let s = PoolStats::default();
        s.record_region(10);
        s.record_chunk(5);
        s.record_chunk(5);
        s.record_inline();
        let snap = s.snapshot();
        assert_eq!(snap.regions, 1);
        assert_eq!(snap.chunks, 2);
        assert_eq!(snap.items, 10);
        assert_eq!(snap.inline_regions, 1);
        assert!(format!("{snap}").contains("1 regions (1 inline)"));
    }
}
