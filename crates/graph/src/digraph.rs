//! Adjacency-list directed multigraph with edge deactivation.

use ps_support::new_index_type;

new_index_type! {
    /// Node handle within a [`DiGraph`].
    pub struct NodeId; "n"
}
new_index_type! {
    /// Edge handle within a [`DiGraph`].
    pub struct EdgeId; "e"
}

#[derive(Clone, Debug)]
struct NodeData<N> {
    weight: N,
    /// Outgoing edge ids, in insertion order.
    out_edges: Vec<EdgeId>,
    /// Incoming edge ids, in insertion order.
    in_edges: Vec<EdgeId>,
}

#[derive(Clone, Debug)]
struct EdgeData<E> {
    weight: E,
    source: NodeId,
    target: NodeId,
    /// The scheduler deletes `I - constant` edges while scheduling a
    /// dimension; deactivation keeps ids stable so labels and diagnostics
    /// survive the deletion.
    active: bool,
}

/// A directed multigraph. Parallel edges and self-loops are allowed (the
/// dependency graph for a recursive equation has several parallel `A → eq`
/// edges, one per array reference).
#[derive(Clone, Debug)]
pub struct DiGraph<N, E> {
    nodes: Vec<NodeData<N>>,
    edges: Vec<EdgeData<E>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        DiGraph::new()
    }
}

impl<N, E> DiGraph<N, E> {
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            weight,
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        });
        id
    }

    /// Add an active edge `source → target`.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId, weight: E) -> EdgeId {
        assert!(source.0 < self.nodes.len() as u32, "source out of bounds");
        assert!(target.0 < self.nodes.len() as u32, "target out of bounds");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData {
            weight,
            source,
            target,
            active: true,
        });
        self.nodes[source.0 as usize].out_edges.push(id);
        self.nodes[target.0 as usize].in_edges.push(id);
        id
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of edges ever added (active and inactive).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of currently active edges.
    pub fn active_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.active).count()
    }

    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0 as usize].weight
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0 as usize].weight
    }

    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edges[id.0 as usize].weight
    }

    pub fn edge_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edges[id.0 as usize].weight
    }

    pub fn edge_source(&self, id: EdgeId) -> NodeId {
        self.edges[id.0 as usize].source
    }

    pub fn edge_target(&self, id: EdgeId) -> NodeId {
        self.edges[id.0 as usize].target
    }

    /// `(source, target)` endpoints of an edge.
    pub fn edge_endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[id.0 as usize];
        (e.source, e.target)
    }

    pub fn is_edge_active(&self, id: EdgeId) -> bool {
        self.edges[id.0 as usize].active
    }

    /// Deactivate an edge. Deactivated edges are skipped by every traversal
    /// and SCC computation, but keep their id, endpoints, and weight.
    pub fn deactivate_edge(&mut self, id: EdgeId) {
        self.edges[id.0 as usize].active = false;
    }

    /// Re-activate a previously deactivated edge.
    pub fn reactivate_edge(&mut self, id: EdgeId) {
        self.edges[id.0 as usize].active = true;
    }

    /// Iterate all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate all edge ids (including deactivated ones).
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + 'static {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterate active edge ids only.
    pub fn active_edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edge_ids().filter(|&e| self.is_edge_active(e))
    }

    /// Active outgoing edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.nodes[node.0 as usize]
            .out_edges
            .iter()
            .copied()
            .filter(|&e| self.is_edge_active(e))
    }

    /// Active incoming edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.nodes[node.0 as usize]
            .in_edges
            .iter()
            .copied()
            .filter(|&e| self.is_edge_active(e))
    }

    /// Successor nodes over active edges (with multiplicity).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(node).map(|e| self.edge_target(e))
    }

    /// Predecessor nodes over active edges (with multiplicity).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(node).map(|e| self.edge_source(e))
    }

    /// All edges `source → target` that are active.
    pub fn edges_connecting(&self, source: NodeId, target: NodeId) -> Vec<EdgeId> {
        self.out_edges(source)
            .filter(|&e| self.edge_target(e) == target)
            .collect()
    }

    /// Map node weights, preserving structure and edge activation.
    pub fn map_nodes<M>(&self, mut f: impl FnMut(NodeId, &N) -> M) -> DiGraph<M, E>
    where
        E: Clone,
    {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| NodeData {
                    weight: f(NodeId(i as u32), &n.weight),
                    out_edges: n.out_edges.clone(),
                    in_edges: n.in_edges.clone(),
                })
                .collect(),
            edges: self.edges.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, u32>, Vec<NodeId>) {
        // a → b → d, a → c → d
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 0);
        g.add_edge(a, c, 1);
        g.add_edge(b, d, 2);
        g.add_edge(c, d, 3);
        (g, vec![a, b, c, d])
    }

    #[test]
    fn counts_and_weights() {
        let (g, ns) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(*g.node(ns[0]), "a");
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, ns) = diamond();
        let succ: Vec<_> = g.successors(ns[0]).collect();
        assert_eq!(succ, vec![ns[1], ns[2]]);
        let pred: Vec<_> = g.predecessors(ns[3]).collect();
        assert_eq!(pred, vec![ns[1], ns[2]]);
    }

    #[test]
    fn deactivation_hides_edges() {
        let (mut g, ns) = diamond();
        let e = g.edges_connecting(ns[0], ns[1])[0];
        g.deactivate_edge(e);
        assert_eq!(g.active_edge_count(), 3);
        assert!(g.successors(ns[0]).all(|n| n == ns[2]));
        g.reactivate_edge(e);
        assert_eq!(g.active_edge_count(), 4);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g: DiGraph<(), &str> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, "one");
        g.add_edge(a, b, "two");
        g.add_edge(a, a, "loop");
        assert_eq!(g.edges_connecting(a, b).len(), 2);
        assert_eq!(g.edges_connecting(a, a).len(), 1);
        assert_eq!(g.successors(a).count(), 3);
    }

    #[test]
    fn map_nodes_preserves_structure() {
        let (g, _) = diamond();
        let mapped = g.map_nodes(|id, w| format!("{id:?}:{w}"));
        assert_eq!(mapped.node_count(), 4);
        assert_eq!(mapped.node(NodeId(0)), "n0:a");
        assert_eq!(mapped.edge_count(), 4);
    }

    #[test]
    fn edge_endpoints_reported() {
        let (g, ns) = diamond();
        let e = g.edges_connecting(ns[1], ns[3])[0];
        assert_eq!(g.edge_endpoints(e), (ns[1], ns[3]));
        assert_eq!(*g.edge(e), 2);
    }
}
