//! Graphviz DOT export.
//!
//! Used to render Figure 3 (the dependency graph for the Relaxation module)
//! and for debugging arbitrary scheduler subgraphs.

use crate::digraph::{DiGraph, EdgeId, NodeId};
use ps_support::pretty::PrettyWriter;

/// Node-labelling callback.
pub type NodeLabelFn<'a, N> = Box<dyn Fn(NodeId, &N) -> String + 'a>;
/// Node-attribute callback.
pub type NodeAttrsFn<'a, N> = Box<dyn Fn(NodeId, &N) -> Option<String> + 'a>;
/// Edge-labelling callback.
pub type EdgeLabelFn<'a, E> = Box<dyn Fn(EdgeId, &E) -> String + 'a>;

/// Options controlling DOT rendering.
pub struct DotOptions<'a, N, E> {
    /// Graph name emitted after `digraph`.
    pub name: &'a str,
    /// Label for a node; default is the node id.
    pub node_label: NodeLabelFn<'a, N>,
    /// Optional extra attributes for a node (e.g. `shape=box`).
    pub node_attrs: NodeAttrsFn<'a, N>,
    /// Label for an edge; empty string omits the label.
    pub edge_label: EdgeLabelFn<'a, E>,
    /// Render deactivated edges (dashed) instead of omitting them.
    pub show_inactive: bool,
}

impl<'a, N, E> DotOptions<'a, N, E> {
    pub fn new(name: &'a str) -> Self {
        DotOptions {
            name,
            node_label: Box::new(|id, _| format!("{id:?}")),
            node_attrs: Box::new(|_, _| None),
            edge_label: Box::new(|_, _| String::new()),
            show_inactive: false,
        }
    }

    pub fn with_node_label(mut self, f: impl Fn(NodeId, &N) -> String + 'a) -> Self {
        self.node_label = Box::new(f);
        self
    }

    pub fn with_node_attrs(mut self, f: impl Fn(NodeId, &N) -> Option<String> + 'a) -> Self {
        self.node_attrs = Box::new(f);
        self
    }

    pub fn with_edge_label(mut self, f: impl Fn(EdgeId, &E) -> String + 'a) -> Self {
        self.edge_label = Box::new(f);
        self
    }

    pub fn show_inactive(mut self) -> Self {
        self.show_inactive = true;
        self
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render `graph` to DOT text.
pub fn to_dot<N, E>(graph: &DiGraph<N, E>, opts: &DotOptions<'_, N, E>) -> String {
    let mut w = PrettyWriter::with_indent_str("  ");
    w.linef(format_args!("digraph \"{}\" {{", escape(opts.name)));
    w.indented(|w| {
        w.line("rankdir=TB;");
        for id in graph.node_ids() {
            let label = escape(&(opts.node_label)(id, graph.node(id)));
            let attrs = (opts.node_attrs)(id, graph.node(id))
                .map(|a| format!(", {a}"))
                .unwrap_or_default();
            w.linef(format_args!("n{} [label=\"{label}\"{attrs}];", id.0));
        }
        for eid in graph.edge_ids() {
            let active = graph.is_edge_active(eid);
            if !active && !opts.show_inactive {
                continue;
            }
            let (s, t) = graph.edge_endpoints(eid);
            let label = escape(&(opts.edge_label)(eid, graph.edge(eid)));
            let mut attrs = Vec::new();
            if !label.is_empty() {
                attrs.push(format!("label=\"{label}\""));
            }
            if !active {
                attrs.push("style=dashed".to_string());
            }
            let attrs = if attrs.is_empty() {
                String::new()
            } else {
                format!(" [{}]", attrs.join(", "))
            };
            w.linef(format_args!("n{} -> n{}{attrs};", s.0, t.0));
        }
    });
    w.line("}");
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        let a = g.add_node("M");
        let b = g.add_node("A");
        g.add_edge(a, b, "bound");
        let opts = DotOptions::new("deps")
            .with_node_label(|_, w: &&str| w.to_string())
            .with_edge_label(|_, w: &&str| w.to_string());
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("digraph \"deps\""));
        assert!(dot.contains("n0 [label=\"M\"]"));
        assert!(dot.contains("n0 -> n1 [label=\"bound\"]"));
    }

    #[test]
    fn inactive_edges_hidden_by_default() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e = g.add_edge(a, b, ());
        g.deactivate_edge(e);
        let dot = to_dot(&g, &DotOptions::new("g"));
        assert!(!dot.contains("->"));
        let dot2 = to_dot(&g, &DotOptions::new("g").show_inactive());
        assert!(dot2.contains("style=dashed"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        g.add_node("say \"hi\"\nnow");
        let opts = DotOptions::new("g").with_node_label(|_, w: &&str| w.to_string());
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("say \\\"hi\\\"\\nnow"));
    }
}
