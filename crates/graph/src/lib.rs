//! Directed-graph substrate for the PS compiler.
//!
//! The scheduler in the paper is driven entirely by graph structure: it
//! decomposes the dependency graph into *Maximally Strongly Connected
//! Components* (MSCCs), visits them in topological order, and repeatedly
//! re-runs the decomposition on subgraphs with edges deleted. This crate
//! provides the generic machinery:
//!
//! * [`DiGraph`] — an adjacency-list directed multigraph with typed node and
//!   edge ids and edge deactivation (the scheduler "deletes" `I - constant`
//!   edges without rebuilding),
//! * [`scc`] — an iterative Tarjan strongly-connected-components algorithm
//!   whose output order is reverse-topological over the condensation,
//! * [`topo`] — Kahn topological sort and cycle detection,
//! * [`traverse`] — DFS/BFS iterators and reachability,
//! * [`dot`] — Graphviz export used to render Figure 3.

#![forbid(unsafe_code)]

pub mod digraph;
pub mod dot;
pub mod scc;
pub mod topo;
pub mod traverse;

pub use digraph::{DiGraph, EdgeId, NodeId};
pub use scc::{
    condensation, ordered_components_filtered, strongly_connected_components, Condensation, SccId,
    Sccs,
};
pub use topo::{topological_sort, TopoError};
