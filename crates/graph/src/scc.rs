//! Strongly connected components (iterative Tarjan) and condensation.
//!
//! `Schedule-Graph` step 1 is "Find the MSCC's of the graph". Tarjan's
//! algorithm emits components in *reverse* topological order of the
//! condensation; we reverse that so callers can process producers before
//! consumers, which is exactly the equation ordering the paper needs.

use crate::digraph::{DiGraph, NodeId};
use ps_support::new_index_type;

new_index_type! {
    /// Component handle within [`Sccs`] / [`Condensation`].
    pub struct SccId; "scc"
}

/// The SCC decomposition of (the active part of) a graph.
#[derive(Clone, Debug)]
pub struct Sccs {
    /// Components in topological order: if an edge runs from component X to
    /// component Y (X ≠ Y), X appears before Y.
    pub components: Vec<Vec<NodeId>>,
    /// For each node, the index (into `components`) of its component.
    component_of: Vec<u32>,
}

impl Sccs {
    /// The component containing `node`.
    pub fn component_of(&self, node: NodeId) -> SccId {
        SccId(self.component_of[node.0 as usize])
    }

    /// Nodes in component `id`.
    pub fn nodes(&self, id: SccId) -> &[NodeId] {
        &self.components[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.components.len()
    }

    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// True when `a` and `b` are in the same component.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.component_of(a) == self.component_of(b)
    }

    /// Iterate `(SccId, &nodes)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (SccId, &[NodeId])> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, ns)| (SccId(i as u32), ns.as_slice()))
    }
}

/// Compute SCCs over the active edges of `graph`, restricted to the nodes for
/// which `include` returns true. Excluded nodes belong to no component.
///
/// The scheduler passes shrinking `include` filters as it recurses into
/// subgraphs, so restriction must be first-class rather than a rebuild.
pub fn strongly_connected_components_filtered<N, E>(
    graph: &DiGraph<N, E>,
    include: impl Fn(NodeId) -> bool,
) -> Sccs {
    const UNVISITED: u32 = u32::MAX;

    let n = graph.node_count();
    let mut index_of = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    let mut component_of = vec![u32::MAX; n];

    // Explicit DFS frame: node plus an iterator position over its successors.
    struct Frame {
        node: NodeId,
        succ_pos: usize,
    }

    for start in graph.node_ids() {
        if !include(start) || index_of[start.0 as usize] != UNVISITED {
            continue;
        }
        let mut call_stack = vec![Frame {
            node: start,
            succ_pos: 0,
        }];
        index_of[start.0 as usize] = next_index;
        lowlink[start.0 as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start.0 as usize] = true;

        while let Some(frame) = call_stack.last_mut() {
            let v = frame.node;
            // Materialized on demand; successor lists are short in practice.
            let succs: Vec<NodeId> = graph.successors(v).filter(|&w| include(w)).collect();
            if frame.succ_pos < succs.len() {
                let w = succs[frame.succ_pos];
                frame.succ_pos += 1;
                let wi = w.0 as usize;
                if index_of[wi] == UNVISITED {
                    index_of[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    call_stack.push(Frame {
                        node: w,
                        succ_pos: 0,
                    });
                } else if on_stack[wi] {
                    let vi = v.0 as usize;
                    lowlink[vi] = lowlink[vi].min(index_of[wi]);
                }
            } else {
                // v is finished: pop, fold lowlink into parent, maybe emit.
                let vi = v.0 as usize;
                if lowlink[vi] == index_of[vi] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.0 as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.reverse();
                    for &m in &comp {
                        component_of[m.0 as usize] = components.len() as u32;
                    }
                    components.push(comp);
                }
                call_stack.pop();
                if let Some(parent) = call_stack.last() {
                    let pi = parent.node.0 as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
            }
        }
    }

    // Tarjan emits components in reverse topological order; flip so that
    // producers come first (the order Schedule-Graph wants).
    components.reverse();
    let count = components.len() as u32;
    for c in component_of.iter_mut() {
        if *c != u32::MAX {
            *c = count - 1 - *c;
        }
    }

    Sccs {
        components,
        component_of,
    }
}

/// SCCs over all nodes of the graph.
pub fn strongly_connected_components<N, E>(graph: &DiGraph<N, E>) -> Sccs {
    strongly_connected_components_filtered(graph, |_| true)
}

/// Like [`strongly_connected_components_filtered`], but with a fully
/// deterministic component order: Kahn's algorithm over the condensation,
/// breaking ties by the smallest node id in each component. Independent
/// components therefore appear in node-insertion (declaration) order, which
/// keeps scheduler output stable and matches the paper's presentation.
pub fn ordered_components_filtered<N, E>(
    graph: &DiGraph<N, E>,
    include: impl Fn(NodeId) -> bool,
) -> Sccs {
    let sccs = strongly_connected_components_filtered(graph, &include);
    let n = sccs.len();
    if n == 0 {
        return sccs;
    }

    // Build condensation edges and in-degrees.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_deg = vec![0usize; n];
    let mut seen = ps_support::FxHashSet::default();
    for e in graph.active_edge_ids() {
        let (s, t) = graph.edge_endpoints(e);
        if !include(s) || !include(t) {
            continue;
        }
        let (cs, ct) = (
            sccs.component_of(s).0 as usize,
            sccs.component_of(t).0 as usize,
        );
        if cs != ct && seen.insert((cs, ct)) {
            succs[cs].push(ct);
            in_deg[ct] += 1;
        }
    }

    let min_id: Vec<u32> = sccs
        .components
        .iter()
        .map(|c| c.iter().map(|n| n.0).min().unwrap_or(u32::MAX))
        .collect();
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(u32, usize)>> = (0..n)
        .filter(|&c| in_deg[c] == 0)
        .map(|c| std::cmp::Reverse((min_id[c], c)))
        .collect();

    let mut order: Vec<usize> = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse((_, c))) = ready.pop() {
        order.push(c);
        for &s in &succs[c] {
            in_deg[s] -= 1;
            if in_deg[s] == 0 {
                ready.push(std::cmp::Reverse((min_id[s], s)));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "condensation must be acyclic");

    let mut components = Vec::with_capacity(n);
    let mut component_of = vec![u32::MAX; graph.node_count()];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        let nodes = sccs.components[old_idx].clone();
        for &node in &nodes {
            component_of[node.0 as usize] = new_idx as u32;
        }
        components.push(nodes);
    }
    Sccs {
        components,
        component_of,
    }
}

/// The condensation: one node per SCC, with deduplicated edges between
/// distinct components.
#[derive(Clone, Debug)]
pub struct Condensation {
    pub sccs: Sccs,
    /// Edges between components (no self-edges, deduplicated), as index
    /// pairs into `sccs.components`.
    pub edges: Vec<(SccId, SccId)>,
}

/// Build the condensation of the active part of `graph`.
pub fn condensation<N, E>(graph: &DiGraph<N, E>) -> Condensation {
    let sccs = strongly_connected_components(graph);
    let mut edges = Vec::new();
    let mut seen = ps_support::FxHashSet::default();
    for e in graph.active_edge_ids() {
        let (s, t) = graph.edge_endpoints(e);
        let (cs, ct) = (sccs.component_of(s), sccs.component_of(t));
        if cs != ct && seen.insert((cs, ct)) {
            edges.push((cs, ct));
        }
    }
    Condensation { sccs, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a → b → c → a (cycle), c → d, d → e, e → d (cycle)
    fn two_cycles() -> (DiGraph<&'static str, ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ns: Vec<_> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|&w| g.add_node(w))
            .collect();
        g.add_edge(ns[0], ns[1], ());
        g.add_edge(ns[1], ns[2], ());
        g.add_edge(ns[2], ns[0], ());
        g.add_edge(ns[2], ns[3], ());
        g.add_edge(ns[3], ns[4], ());
        g.add_edge(ns[4], ns[3], ());
        (g, ns)
    }

    #[test]
    fn finds_both_cycles() {
        let (g, ns) = two_cycles();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.same_component(ns[0], ns[2]));
        assert!(sccs.same_component(ns[3], ns[4]));
        assert!(!sccs.same_component(ns[0], ns[3]));
    }

    #[test]
    fn topological_order_of_components() {
        let (g, ns) = two_cycles();
        let sccs = strongly_connected_components(&g);
        // {a,b,c} feeds {d,e}, so it must come first.
        let first = sccs.component_of(ns[0]);
        let second = sccs.component_of(ns[3]);
        assert!(
            first.0 < second.0,
            "producer component must precede consumer"
        );
    }

    #[test]
    fn singleton_components_in_dag() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        let order: Vec<_> = [a, b, c].iter().map(|&n| sccs.component_of(n).0).collect();
        assert!(order[0] < order[1] && order[1] < order[2]);
    }

    #[test]
    fn deactivated_edges_break_cycles() {
        let (mut g, ns) = two_cycles();
        // Break the a→b→c→a cycle.
        let e = g.edges_connecting(ns[2], ns[0])[0];
        g.deactivate_edge(e);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 4); // a, b, c singletons + {d,e}
        assert!(!sccs.same_component(ns[0], ns[2]));
        assert!(sccs.same_component(ns[3], ns[4]));
    }

    #[test]
    fn filtered_nodes_excluded() {
        let (g, ns) = two_cycles();
        // Exclude c: the first cycle disappears.
        let sccs = strongly_connected_components_filtered(&g, |n| n != ns[2]);
        assert!(!sccs.same_component(ns[0], ns[1]));
        assert!(sccs.same_component(ns[3], ns[4]));
        // c belongs to no component.
        assert_eq!(sccs.component_of[ns[2].0 as usize], u32::MAX);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, a, ());
        g.add_edge(a, b, ());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs.nodes(sccs.component_of(a)), &[a]);
    }

    #[test]
    fn condensation_edges_deduplicated() {
        let (g, ns) = two_cycles();
        let cond = condensation(&g);
        assert_eq!(cond.sccs.len(), 2);
        assert_eq!(cond.edges.len(), 1);
        let (s, t) = cond.edges[0];
        assert_eq!(s, cond.sccs.component_of(ns[0]));
        assert_eq!(t, cond.sccs.component_of(ns[3]));
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let sccs = strongly_connected_components(&g);
        assert!(sccs.is_empty());
    }

    #[test]
    fn large_cycle_does_not_overflow_stack() {
        // The iterative implementation must handle deep graphs.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n = 200_000;
        let nodes: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n], ());
        }
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs.nodes(SccId(0)).len(), n);
    }
}
