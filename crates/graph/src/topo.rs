//! Kahn topological sort over active edges.

use crate::digraph::{DiGraph, NodeId};

/// Error returned when the graph has an active cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopoError {
    /// The nodes that remained with nonzero in-degree (all lie on or
    /// downstream of a cycle).
    pub cyclic_nodes: Vec<NodeId>,
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a cycle through {} node(s)",
            self.cyclic_nodes.len()
        )
    }
}

impl std::error::Error for TopoError {}

/// Topologically sort the active part of `graph`.
///
/// Ties are broken by node id so the result is deterministic, which keeps
/// emitted code and rendered flowcharts stable across runs.
pub fn topological_sort<N, E>(graph: &DiGraph<N, E>) -> Result<Vec<NodeId>, TopoError> {
    let n = graph.node_count();
    let mut in_degree = vec![0usize; n];
    for e in graph.active_edge_ids() {
        let (_, t) = graph.edge_endpoints(e);
        in_degree[t.0 as usize] += 1;
    }

    // Min-heap on node id for determinism.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = in_degree
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| std::cmp::Reverse(i as u32))
        .collect();

    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(v)) = ready.pop() {
        let v = NodeId(v);
        order.push(v);
        for succ in graph.successors(v) {
            let d = &mut in_degree[succ.0 as usize];
            *d -= 1;
            if *d == 0 {
                ready.push(std::cmp::Reverse(succ.0));
            }
        }
    }

    if order.len() == n {
        Ok(order)
    } else {
        let in_order: std::collections::HashSet<u32> = order.iter().map(|n| n.0).collect();
        Err(TopoError {
            cyclic_nodes: graph
                .node_ids()
                .filter(|id| !in_order.contains(&id.0))
                .collect(),
        })
    }
}

/// True when the active part of `graph` is acyclic.
pub fn is_acyclic<N, E>(graph: &DiGraph<N, E>) -> bool {
    topological_sort(graph).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_dag() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(c, b, ());
        g.add_edge(b, a, ());
        let order = topological_sort(&g).unwrap();
        assert_eq!(order, vec![c, b, a]);
    }

    #[test]
    fn detects_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let err = topological_sort(&g).unwrap_err();
        assert_eq!(err.cyclic_nodes.len(), 2);
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn deactivating_cycle_edge_restores_order() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let back = g.add_edge(b, a, ());
        g.deactivate_edge(back);
        assert_eq!(topological_sort(&g).unwrap(), vec![a, b]);
    }

    #[test]
    fn ties_broken_by_node_id() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        // No edges at all: order must be id order.
        let order = topological_sort(&g).unwrap();
        assert_eq!(order, vec![a, b, c]);
    }
}
