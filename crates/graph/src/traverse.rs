//! Depth/breadth-first traversal and reachability over active edges.

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Nodes reachable from `start` (including `start`), in DFS preorder.
pub fn dfs_preorder<N, E>(graph: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if std::mem::replace(&mut visited[v.0 as usize], true) {
            continue;
        }
        order.push(v);
        // Push successors in reverse so the first successor is visited first.
        let succs: Vec<_> = graph.successors(v).collect();
        for w in succs.into_iter().rev() {
            if !visited[w.0 as usize] {
                stack.push(w);
            }
        }
    }
    order
}

/// Nodes reachable from `start` (including `start`), in BFS order.
pub fn bfs_order<N, E>(graph: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.0 as usize] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for w in graph.successors(v) {
            if !std::mem::replace(&mut visited[w.0 as usize], true) {
                queue.push_back(w);
            }
        }
    }
    order
}

/// True when `target` is reachable from `source` over active edges.
pub fn is_reachable<N, E>(graph: &DiGraph<N, E>, source: NodeId, target: NodeId) -> bool {
    if source == target {
        return true;
    }
    let mut visited = vec![false; graph.node_count()];
    let mut stack = vec![source];
    visited[source.0 as usize] = true;
    while let Some(v) = stack.pop() {
        for w in graph.successors(v) {
            if w == target {
                return true;
            }
            if !std::mem::replace(&mut visited[w.0 as usize], true) {
                stack.push(w);
            }
        }
    }
    false
}

/// The full reachability set from `start` as a boolean mask indexed by node id.
pub fn reachable_set<N, E>(graph: &DiGraph<N, E>, start: NodeId) -> Vec<bool> {
    let mut visited = vec![false; graph.node_count()];
    let mut stack = vec![start];
    visited[start.0 as usize] = true;
    while let Some(v) = stack.pop() {
        for w in graph.successors(v) {
            if !std::mem::replace(&mut visited[w.0 as usize], true) {
                stack.push(w);
            }
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_branch() -> (DiGraph<(), ()>, Vec<NodeId>) {
        // 0 → 1 → 2, 0 → 3
        let mut g = DiGraph::new();
        let ns: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ns[0], ns[1], ());
        g.add_edge(ns[1], ns[2], ());
        g.add_edge(ns[0], ns[3], ());
        (g, ns)
    }

    #[test]
    fn dfs_visits_first_branch_first() {
        let (g, ns) = chain_with_branch();
        assert_eq!(dfs_preorder(&g, ns[0]), vec![ns[0], ns[1], ns[2], ns[3]]);
    }

    #[test]
    fn bfs_visits_level_by_level() {
        let (g, ns) = chain_with_branch();
        assert_eq!(bfs_order(&g, ns[0]), vec![ns[0], ns[1], ns[3], ns[2]]);
    }

    #[test]
    fn reachability() {
        let (g, ns) = chain_with_branch();
        assert!(is_reachable(&g, ns[0], ns[2]));
        assert!(!is_reachable(&g, ns[2], ns[0]));
        assert!(is_reachable(&g, ns[1], ns[1]));
        let set = reachable_set(&g, ns[1]);
        assert_eq!(set, vec![false, true, true, false]);
    }

    #[test]
    fn traversal_respects_deactivation() {
        let (mut g, ns) = chain_with_branch();
        let e = g.edges_connecting(ns[0], ns[1])[0];
        g.deactivate_edge(e);
        assert!(!is_reachable(&g, ns[0], ns[2]));
        assert_eq!(dfs_preorder(&g, ns[0]), vec![ns[0], ns[3]]);
    }

    #[test]
    fn cyclic_traversal_terminates() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert_eq!(dfs_preorder(&g, a).len(), 2);
        assert_eq!(bfs_order(&g, a).len(), 2);
    }
}
