//! Property tests: Tarjan SCC against brute-force reachability, and
//! topological validity of the deterministic component order.
//!
//! Driven by a seeded LCG (no `proptest`): each property replays the same
//! 128 random graphs on every run; a failure names its case index.

use ps_graph::{ordered_components_filtered, strongly_connected_components, DiGraph};
use ps_support::Lcg;

const CASES: usize = 128;

/// Random graph with 2..24 nodes and 0..60 edges (matches the proptest
/// strategy this suite was originally written with).
fn arb_graph(rng: &mut Lcg) -> DiGraph<(), ()> {
    let n = rng.usize(2, 23);
    let n_edges = rng.usize(0, 59);
    let mut g = DiGraph::new();
    let nodes: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
    for _ in 0..n_edges {
        let a = rng.index(n);
        let b = rng.index(n);
        g.add_edge(nodes[a], nodes[b], ());
    }
    g
}

/// Floyd–Warshall reachability as the oracle.
fn reach_matrix(g: &DiGraph<(), ()>) -> Vec<Vec<bool>> {
    let n = g.node_count();
    let mut r = vec![vec![false; n]; n];
    for (i, row) in r.iter_mut().enumerate() {
        row[i] = true;
    }
    for e in g.active_edge_ids() {
        let (s, t) = g.edge_endpoints(e);
        r[s.0 as usize][t.0 as usize] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if r[i][k] && r[k][j] {
                    r[i][j] = true;
                }
            }
        }
    }
    r
}

#[test]
fn scc_matches_mutual_reachability() {
    let mut rng = Lcg::new(0x5cc0);
    for case in 0..CASES {
        let g = arb_graph(&mut rng);
        let sccs = strongly_connected_components(&g);
        let r = reach_matrix(&g);
        for a in g.node_ids() {
            for b in g.node_ids() {
                let mutual = r[a.0 as usize][b.0 as usize] && r[b.0 as usize][a.0 as usize];
                assert_eq!(
                    sccs.same_component(a, b),
                    mutual,
                    "case {case}: nodes {a:?} {b:?}"
                );
            }
        }
    }
}

#[test]
fn component_order_is_topological() {
    let mut rng = Lcg::new(0x5cc1);
    for case in 0..CASES {
        let g = arb_graph(&mut rng);
        let sccs = ordered_components_filtered(&g, |_| true);
        for e in g.active_edge_ids() {
            let (s, t) = g.edge_endpoints(e);
            let (cs, ct) = (sccs.component_of(s), sccs.component_of(t));
            if cs != ct {
                assert!(cs.0 < ct.0, "case {case}: edge {s:?}->{t:?} violates order");
            }
        }
        // Partition: every node appears exactly once.
        let total: usize = sccs.iter().map(|(_, ns)| ns.len()).sum();
        assert_eq!(total, g.node_count(), "case {case}");
    }
}

#[test]
fn ordered_and_plain_sccs_agree() {
    let mut rng = Lcg::new(0x5cc2);
    for case in 0..CASES {
        let g = arb_graph(&mut rng);
        let a = strongly_connected_components(&g);
        let b = ordered_components_filtered(&g, |_| true);
        assert_eq!(a.len(), b.len(), "case {case}");
        for x in g.node_ids() {
            for y in g.node_ids() {
                assert_eq!(
                    a.same_component(x, y),
                    b.same_component(x, y),
                    "case {case}: nodes {x:?} {y:?}"
                );
            }
        }
    }
}
