//! Property tests: Tarjan SCC against brute-force reachability, and
//! topological validity of the deterministic component order.

use proptest::prelude::*;
use ps_graph::{ordered_components_filtered, strongly_connected_components, DiGraph};

fn arb_graph() -> impl Strategy<Value = DiGraph<(), ()>> {
    (2usize..24, prop::collection::vec((0usize..24, 0usize..24), 0..60)).prop_map(
        |(n, edges)| {
            let mut g = DiGraph::new();
            let nodes: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
            for (a, b) in edges {
                g.add_edge(nodes[a % n], nodes[b % n], ());
            }
            g
        },
    )
}

/// Floyd–Warshall reachability as the oracle.
fn reach_matrix(g: &DiGraph<(), ()>) -> Vec<Vec<bool>> {
    let n = g.node_count();
    let mut r = vec![vec![false; n]; n];
    for (i, row) in r.iter_mut().enumerate() {
        row[i] = true;
    }
    for e in g.active_edge_ids() {
        let (s, t) = g.edge_endpoints(e);
        r[s.0 as usize][t.0 as usize] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if r[i][k] && r[k][j] {
                    r[i][j] = true;
                }
            }
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scc_matches_mutual_reachability(g in arb_graph()) {
        let sccs = strongly_connected_components(&g);
        let r = reach_matrix(&g);
        for a in g.node_ids() {
            for b in g.node_ids() {
                let mutual = r[a.0 as usize][b.0 as usize] && r[b.0 as usize][a.0 as usize];
                prop_assert_eq!(
                    sccs.same_component(a, b),
                    mutual,
                    "nodes {:?} {:?}", a, b
                );
            }
        }
    }

    #[test]
    fn component_order_is_topological(g in arb_graph()) {
        let sccs = ordered_components_filtered(&g, |_| true);
        for e in g.active_edge_ids() {
            let (s, t) = g.edge_endpoints(e);
            let (cs, ct) = (sccs.component_of(s), sccs.component_of(t));
            if cs != ct {
                prop_assert!(cs.0 < ct.0, "edge {:?}->{:?} violates order", s, t);
            }
        }
        // Partition: every node appears exactly once.
        let total: usize = sccs.iter().map(|(_, ns)| ns.len()).sum();
        prop_assert_eq!(total, g.node_count());
    }

    #[test]
    fn ordered_and_plain_sccs_agree(g in arb_graph()) {
        let a = strongly_connected_components(&g);
        let b = ordered_components_filtered(&g, |_| true);
        prop_assert_eq!(a.len(), b.len());
        for x in g.node_ids() {
            for y in g.node_ids() {
                prop_assert_eq!(a.same_component(x, y), b.same_component(x, y));
            }
        }
    }
}
