//! Dependence-vector extraction from a recursive component.
//!
//! For the paper's revised relaxation the five recursive references produce
//!
//! ```text
//! A[K-1, I,   J  ]  →  d = (1,  0,  0)
//! A[K,   I,   J-1]  →  d = (0,  0,  1)
//! A[K,   I-1, J  ]  →  d = (0,  1,  0)
//! A[K-1, I,   J+1]  →  d = (1,  0, -1)
//! A[K-1, I+1, J  ]  →  d = (1, -1,  0)
//! ```
//!
//! which induce exactly the five dependence inequalities of Section 4:
//! `a > 0`, `c > 0`, `b > 0`, `a > c`, `a > b`.

use ps_lang::hir::{HirModule, LhsSub, SubscriptExpr};
use ps_lang::{DataId, EqId};

/// The extracted dependence structure of one recursive array.
#[derive(Clone, Debug)]
pub struct DependenceInfo {
    /// The recursive array.
    pub target: DataId,
    /// The equations that both define and reference it.
    pub equations: Vec<EqId>,
    /// Distinct dependence vectors: element `x` depends on `x - d`.
    pub vectors: Vec<Vec<i64>>,
}

/// Failure to express the recursion as constant-offset dependences.
#[derive(Clone, Debug)]
pub struct DepVecError(pub String);

impl std::fmt::Display for DepVecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DepVecError {}

/// Extract the dependence vectors of `target` from its defining equations.
///
/// Every self-reference must use the same index variable as the defining
/// dimension, offset by a constant (`I`, `I - c`, `I + c`); anything else
/// (constant planes, transposed variables, dynamic subscripts) makes the
/// hyperplane method inapplicable and is reported as an error.
pub fn extract_dependences(
    module: &HirModule,
    target: DataId,
) -> Result<DependenceInfo, DepVecError> {
    let rank = module.data[target].dims().len();
    let mut vectors: Vec<Vec<i64>> = Vec::new();
    let mut equations = Vec::new();

    for eq_id in module.defs_of(target) {
        let eq = &module.equations[eq_id];
        let reads: Vec<_> = eq
            .rhs
            .array_reads()
            .into_iter()
            .filter(|(a, _)| *a == target)
            .collect();
        if reads.is_empty() {
            continue; // e.g. the A[1] = InitialA initialization plane
        }
        equations.push(eq_id);

        for (_, subs) in reads {
            if subs.len() != rank {
                return Err(DepVecError(format!(
                    "{}: self-reference of {} has rank {} (expected {rank})",
                    eq.label,
                    module.data[target].name,
                    subs.len()
                )));
            }
            let mut d = Vec::with_capacity(rank);
            for (dim, s) in subs.iter().enumerate() {
                // The defining dimension must be a variable...
                let Some(LhsSub::Var(lhs_iv)) = eq.lhs_subs.get(dim) else {
                    return Err(DepVecError(format!(
                        "{}: dimension {dim} of the recursive definition is a \
                         constant plane; the hyperplane method needs variable \
                         dimensions",
                        eq.label
                    )));
                };
                // ...and the reference must offset the same variable.
                let delta = match s {
                    SubscriptExpr::Var(iv) if iv == lhs_iv => 0,
                    SubscriptExpr::VarOffset(iv, delta) if iv == lhs_iv => *delta,
                    other => {
                        return Err(DepVecError(format!(
                            "{}: self-reference uses {:?} at dimension {dim}; only \
                             constant offsets of the defining index variable are \
                             supported",
                            eq.label, other
                        )));
                    }
                };
                // subscript = iv + delta reads element (x + delta) at this
                // dim, i.e. x - d with d = -delta.
                d.push(-delta);
            }
            if d.iter().all(|&x| x == 0) {
                return Err(DepVecError(format!(
                    "{}: element depends on itself (zero dependence vector)",
                    eq.label
                )));
            }
            if !vectors.contains(&d) {
                vectors.push(d);
            }
        }
    }

    if vectors.is_empty() {
        return Err(DepVecError(format!(
            "{} has no recursive references",
            module.data[target].name
        )));
    }

    Ok(DependenceInfo {
        target,
        equations,
        vectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_lang::frontend;

    #[test]
    fn relaxation_v2_vectors_match_paper() {
        let m = frontend(
            "R2: module (InitialA: array[I,J] of real; M: int; maxK: int):
                 [newA: array[I,J] of real];
             type I, J = 0 .. M+1; K = 2 .. maxK;
             var A: array [1 .. maxK] of array[I,J] of real;
             define
                A[1] = InitialA;
                newA = A[maxK];
                A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                           then A[K-1,I,J]
                           else ( A[K,I,J-1] + A[K,I-1,J]
                                + A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
             end R2;",
        )
        .unwrap();
        let a = m.data_by_name("A").unwrap();
        let info = extract_dependences(&m, a).unwrap();
        let expected: Vec<Vec<i64>> = vec![
            vec![1, 0, 0],
            vec![0, 0, 1],
            vec![0, 1, 0],
            vec![1, 0, -1],
            vec![1, -1, 0],
        ];
        assert_eq!(info.vectors.len(), 5);
        for e in &expected {
            assert!(info.vectors.contains(e), "missing {e:?}");
        }
        assert_eq!(info.equations.len(), 1);
    }

    #[test]
    fn duplicate_vectors_deduplicated() {
        let m = frontend(
            "T: module (n: int): [y: real];
             type K = 2 .. n;
             var a: array [1 .. n] of real;
             define
                a[1] = 1.0;
                a[K] = a[K-1] + a[K-1] * 2.0;
                y = a[n];
             end T;",
        )
        .unwrap();
        let a = m.data_by_name("a").unwrap();
        let info = extract_dependences(&m, a).unwrap();
        assert_eq!(info.vectors, vec![vec![1]]);
    }

    #[test]
    fn zero_vector_rejected() {
        let m = frontend(
            "T: module (n: int; b: array[1..n] of real): [y: real];
             type I = 1 .. n;
             var a: array [I] of real;
             define
                a[I] = a[I] + b[I];
                y = a[n];
             end T;",
        )
        .unwrap();
        let a = m.data_by_name("a").unwrap();
        let err = extract_dependences(&m, a).unwrap_err();
        assert!(err.0.contains("depends on itself"), "{err}");
    }

    #[test]
    fn transposed_reference_rejected() {
        let m = frontend(
            "T: module (n: int): [y: real];
             type I, J = 1 .. n;
             var a: array [I, J] of real;
             define
                a[I, J] = if (I = 1) or (J = 1) then 1.0 else a[J, I-1];
                y = a[n, n];
             end T;",
        )
        .unwrap();
        let a = m.data_by_name("a").unwrap();
        assert!(extract_dependences(&m, a).is_err());
    }
}
