//! Exact small integer matrices: determinants, inverses of unimodular
//! matrices, and unimodular completion of a primitive row vector.
//!
//! Dimensions here are tiny (the rank of a PS array, ≤ 8 in practice), so
//! everything uses exact `i128` arithmetic with no attention to asymptotics.

use std::fmt;

/// A dense square integer matrix.
#[derive(Clone, PartialEq, Eq)]
pub struct IMat {
    n: usize,
    a: Vec<i64>,
}

impl IMat {
    pub fn zero(n: usize) -> IMat {
        IMat {
            n,
            a: vec![0; n * n],
        }
    }

    pub fn identity(n: usize) -> IMat {
        let mut m = IMat::zero(n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Build from rows; every row must have length `rows.len()`.
    pub fn from_rows(rows: &[Vec<i64>]) -> IMat {
        let n = rows.len();
        assert!(rows.iter().all(|r| r.len() == n), "ragged rows");
        IMat {
            n,
            a: rows.iter().flatten().copied().collect(),
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn row(&self, i: usize) -> &[i64] {
        &self.a[i * self.n..(i + 1) * self.n]
    }

    pub fn rows(&self) -> impl Iterator<Item = &[i64]> {
        (0..self.n).map(|i| self.row(i))
    }

    /// Matrix–vector product `self · v`.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        assert_eq!(v.len(), self.n);
        self.rows()
            .map(|r| r.iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Matrix product `self · other`.
    pub fn mul(&self, other: &IMat) -> IMat {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut out = IMat::zero(n);
        for i in 0..n {
            for j in 0..n {
                let mut acc: i64 = 0;
                for k in 0..n {
                    acc += self[(i, k)] * other[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Exact determinant (Bareiss fraction-free elimination over `i128`).
    pub fn det(&self) -> i64 {
        let n = self.n;
        if n == 0 {
            return 1;
        }
        let mut m: Vec<i128> = self.a.iter().map(|&x| x as i128).collect();
        let at = |m: &Vec<i128>, i: usize, j: usize| m[i * n + j];
        let mut sign: i128 = 1;
        let mut prev: i128 = 1;
        for k in 0..n - 1 {
            if at(&m, k, k) == 0 {
                // Find a pivot row below and swap.
                let Some(p) = (k + 1..n).find(|&p| at(&m, p, k) != 0) else {
                    return 0;
                };
                for j in 0..n {
                    m.swap(k * n + j, p * n + j);
                }
                sign = -sign;
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let v = at(&m, i, j) * at(&m, k, k) - at(&m, i, k) * at(&m, k, j);
                    m[i * n + j] = v / prev;
                }
                m[i * n + k] = 0;
            }
            prev = at(&m, k, k);
        }
        let d = sign * at(&m, n - 1, n - 1);
        i64::try_from(d).expect("determinant overflows i64")
    }

    /// Exact inverse of a unimodular matrix (`det = ±1`), via the adjugate.
    /// Panics when `|det| != 1`.
    pub fn unimodular_inverse(&self) -> IMat {
        let d = self.det();
        assert!(
            d == 1 || d == -1,
            "unimodular_inverse requires det ±1, got {d}"
        );
        let n = self.n;
        let mut inv = IMat::zero(n);
        for i in 0..n {
            for j in 0..n {
                // Cofactor C_ji (note the transpose for the adjugate).
                let minor = self.minor(j, i);
                let sign = if (i + j) % 2 == 0 { 1 } else { -1 };
                inv[(i, j)] = sign * minor.det() * d; // divide by det = multiply (det ±1)
            }
        }
        inv
    }

    fn minor(&self, skip_row: usize, skip_col: usize) -> IMat {
        let n = self.n;
        let mut rows = Vec::with_capacity(n - 1);
        for i in 0..n {
            if i == skip_row {
                continue;
            }
            let mut row = Vec::with_capacity(n - 1);
            for j in 0..n {
                if j == skip_col {
                    continue;
                }
                row.push(self[(i, j)]);
            }
            rows.push(row);
        }
        IMat::from_rows(&rows)
    }

    /// Rank over ℚ (fraction-free elimination).
    pub fn rank_of_rows(rows: &[Vec<i64>]) -> usize {
        if rows.is_empty() {
            return 0;
        }
        let cols = rows[0].len();
        let mut m: Vec<Vec<i128>> = rows
            .iter()
            .map(|r| r.iter().map(|&x| x as i128).collect())
            .collect();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..cols {
            let Some(p) = (row..m.len()).find(|&p| m[p][col] != 0) else {
                continue;
            };
            m.swap(row, p);
            for r in row + 1..m.len() {
                if m[r][col] != 0 {
                    let (a, b) = (m[row][col], m[r][col]);
                    let pivot_row = m[row].clone();
                    for (x, &p) in m[r].iter_mut().zip(&pivot_row) {
                        *x = *x * a - p * b;
                    }
                }
            }
            row += 1;
            rank += 1;
            if row == m.len() {
                break;
            }
        }
        rank
    }
}

impl std::ops::Index<(usize, usize)> for IMat {
    type Output = i64;
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        &self.a[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        &mut self.a[i * self.n + j]
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[")?;
        for r in self.rows() {
            writeln!(f, "  {r:?}")?;
        }
        write!(f, "]")
    }
}

/// Complete the primitive vector `pi` (gcd 1) to a unimodular matrix whose
/// **first row is `pi`**.
///
/// Strategy: greedily append standard unit vectors that keep the rows
/// linearly independent, then check `det = ±1`. This reproduces the paper's
/// completion for `π = (2,1,1)`:
/// `T = [[2,1,1],[1,0,0],[0,1,0]]` (i.e. `I' = K`, `J' = I`). When the
/// greedy result is not unimodular, fall back to an extended-gcd
/// construction that always succeeds for primitive `pi`.
pub fn unimodular_completion(pi: &[i64]) -> IMat {
    let n = pi.len();
    assert!(n > 0);
    let g = pi.iter().fold(0i64, |acc, &x| gcd(acc, x.abs()));
    assert_eq!(g, 1, "time vector must be primitive (gcd 1), got gcd {g}");

    // Greedy unit-vector completion.
    let mut rows: Vec<Vec<i64>> = vec![pi.to_vec()];
    for i in 0..n {
        if rows.len() == n {
            break;
        }
        let mut e = vec![0i64; n];
        e[i] = 1;
        rows.push(e);
        if IMat::rank_of_rows(&rows) != rows.len() {
            rows.pop();
        }
    }
    if rows.len() == n {
        let t = IMat::from_rows(&rows);
        let d = t.det();
        if d == 1 || d == -1 {
            return t;
        }
    }

    // Fallback: build unimodular U with pi·U = e1 (column operations on a
    // row vector, tracked in U); then pi is the first row of U⁻¹.
    let mut v: Vec<i64> = pi.to_vec();
    let mut u = IMat::identity(n);
    // Reduce v to (g, 0, ..., 0) with column ops.
    loop {
        // Find the two nonzero entries of smallest magnitude.
        let nz: Vec<usize> = (0..n).filter(|&i| v[i] != 0).collect();
        if nz.len() <= 1 {
            break;
        }
        let mut idx = nz.clone();
        idx.sort_by_key(|&i| v[i].abs());
        let (i, j) = (idx[0], idx[1]);
        let q = v[j] / v[i];
        // col_j -= q * col_i  (applied to v and accumulated into U).
        v[j] -= q * v[i];
        for r in 0..n {
            let ui = u[(r, i)];
            u[(r, j)] -= q * ui;
        }
    }
    // Move the remaining nonzero entry to position 0 and fix its sign.
    let pos = (0..n).find(|&i| v[i] != 0).expect("pi nonzero");
    if pos != 0 {
        v.swap(0, pos);
        for r in 0..n {
            let tmp = u[(r, 0)];
            u[(r, 0)] = u[(r, pos)];
            u[(r, pos)] = tmp;
        }
    }
    if v[0] < 0 {
        v[0] = -v[0];
        for r in 0..n {
            u[(r, 0)] = -u[(r, 0)];
        }
    }
    debug_assert_eq!(v[0], 1, "gcd must be 1");
    let t = u.unimodular_inverse();
    debug_assert_eq!(t.row(0), pi, "first row of U^-1 must be pi");
    t
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_small_cases() {
        assert_eq!(IMat::identity(3).det(), 1);
        let m = IMat::from_rows(&[vec![2, 1, 1], vec![1, 0, 0], vec![0, 1, 0]]);
        assert_eq!(m.det(), 1);
        let singular = IMat::from_rows(&[vec![1, 2], vec![2, 4]]);
        assert_eq!(singular.det(), 0);
        let neg = IMat::from_rows(&[vec![0, 1], vec![1, 0]]);
        assert_eq!(neg.det(), -1);
    }

    #[test]
    fn inverse_of_paper_matrix() {
        // T = [[2,1,1],[1,0,0],[0,1,0]]; inverse encodes K=I', I=J',
        // J=K'-2I'-J'.
        let t = IMat::from_rows(&[vec![2, 1, 1], vec![1, 0, 0], vec![0, 1, 0]]);
        let inv = t.unimodular_inverse();
        assert_eq!(inv.row(0), &[0, 1, 0]);
        assert_eq!(inv.row(1), &[0, 0, 1]);
        assert_eq!(inv.row(2), &[1, -2, -1]);
        assert_eq!(t.mul(&inv), IMat::identity(3));
        assert_eq!(inv.mul(&t), IMat::identity(3));
    }

    #[test]
    fn completion_reproduces_paper() {
        let t = unimodular_completion(&[2, 1, 1]);
        assert_eq!(t.row(0), &[2, 1, 1]);
        assert_eq!(t.row(1), &[1, 0, 0]);
        assert_eq!(t.row(2), &[0, 1, 0]);
        assert_eq!(t.det(), 1);
    }

    #[test]
    fn completion_various_vectors() {
        for pi in [
            vec![1, 0, 0],
            vec![1, 1],
            vec![3, 2],
            vec![2, 3, 5],
            vec![1, 1, 1, 1],
            vec![5, 7, 11, 13],
            vec![0, 1],
            vec![0, 0, 1],
        ] {
            let t = unimodular_completion(&pi);
            assert_eq!(t.row(0), pi.as_slice(), "first row must be pi");
            let d = t.det();
            assert!(d == 1 || d == -1, "det {d} for pi {pi:?}");
            // Inverse round-trips.
            let inv = t.unimodular_inverse();
            assert_eq!(t.mul(&inv), IMat::identity(pi.len()));
        }
    }

    #[test]
    fn mul_vec_applies_rows() {
        let t = IMat::from_rows(&[vec![2, 1, 1], vec![1, 0, 0], vec![0, 1, 0]]);
        // The paper's example: (K,I,J) = (1,0,0) → (2,1,0).
        assert_eq!(t.mul_vec(&[1, 0, 0]), vec![2, 1, 0]);
        // d = (1,0,-1) → (1,1,0).
        assert_eq!(t.mul_vec(&[1, 0, -1]), vec![1, 1, 0]);
    }

    #[test]
    fn rank_detects_dependence() {
        assert_eq!(
            IMat::rank_of_rows(&[vec![2, 1, 1], vec![4, 2, 2]]),
            1,
            "parallel rows"
        );
        assert_eq!(
            IMat::rank_of_rows(&[vec![2, 1, 1], vec![1, 0, 0], vec![0, 1, 0]]),
            3
        );
    }

    #[test]
    #[should_panic(expected = "unimodular_inverse")]
    fn inverse_rejects_non_unimodular() {
        IMat::from_rows(&[vec![2, 0], vec![0, 1]]).unimodular_inverse();
    }
}
