//! The restructuring transformation of Section 4: Lamport's hyperplane
//! method applied to recursively defined PS arrays.
//!
//! Given a recursive component (an array `A` and its defining recurrence),
//! the transform:
//!
//! 1. extracts the **dependence vectors** `d` from the recursive array
//!    references (`A[K,I,J]` reading `A[K,I-1,J]` gives `d = (0,1,0)`),
//! 2. solves for the least nonnegative integer **time vector** `π` with
//!    `π·d ≥ 1` for every dependence (for the revised relaxation:
//!    `π = (2,1,1)`, i.e. `t = 2K + I + J`),
//! 3. completes `π` to a **unimodular matrix** `T` (preferring unit-vector
//!    rows, which reproduces the paper's `K' = 2K+I+J, I' = K, J' = I`),
//! 4. rewrites the recurrence over a new array `A'` in transformed
//!    coordinates — every reference `A[s]` becomes `A'[T·s]`, turning all
//!    recursive offsets into *backward offsets in the time dimension only*,
//!    so the scheduler emits `DO K' (DOALL I' (DOALL J'))`,
//! 5. computes the **window** (`1 + max π·d`, 3 for the example) and, in
//!    [`StorageMode::Windowed`], replaces the result-gather equation with a
//!    *drain* step inside the wavefront loop (the paper's preferred
//!    "rotate / unrotate" implementation choice).

#![forbid(unsafe_code)]

pub mod depvec;
pub mod imat;
pub mod solve;
pub mod transform;

pub use depvec::{extract_dependences, DependenceInfo};
pub use imat::IMat;
pub use solve::solve_time_vector;
pub use transform::{
    find_recursive_target, hyperplane_transform, schedule_transformed, HyperplaneError,
    HyperplaneResult, StorageMode,
};
