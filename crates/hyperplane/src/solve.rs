//! Minimal integer time-vector solving.
//!
//! Section 4: *"Now we can find the least integers a, b, and c for which
//! these dependence inequalities will hold."* The constraints are
//! `π·d ≥ 1` for every dependence vector `d`, with nonnegative integer
//! coefficients. We search by iterative deepening on the coefficient sum
//! (so the result minimizes `Σ πᵢ`), taking the lexicographically smallest
//! vector among those of minimal sum — which yields the paper's
//! `π = (2, 1, 1)` for the revised relaxation.

/// Infeasibility (e.g. a zero dependence vector, or no solution within the
/// search bound).
#[derive(Clone, Debug)]
pub struct SolveError(pub String);

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SolveError {}

/// Find the least nonnegative integer `π` with `π·d ≥ 1` for all `d`.
pub fn solve_time_vector(deps: &[Vec<i64>]) -> Result<Vec<i64>, SolveError> {
    let Some(first) = deps.first() else {
        return Err(SolveError("no dependence vectors".to_string()));
    };
    let n = first.len();
    if deps.iter().any(|d| d.len() != n) {
        return Err(SolveError("dependence vectors of mixed rank".to_string()));
    }
    if deps.iter().any(|d| d.iter().all(|&x| x == 0)) {
        return Err(SolveError(
            "zero dependence vector: an element depends on itself".to_string(),
        ));
    }
    // Any dependence with no positive component can never satisfy π·d ≥ 1
    // with nonnegative π.
    for d in deps {
        if d.iter().all(|&x| x <= 0) {
            return Err(SolveError(format!(
                "dependence {d:?} has no positive component; no nonnegative \
                 time vector exists"
            )));
        }
    }

    // Iterative deepening on Σπ. The bound is generous: with offsets up to
    // `c`, coefficients up to n·(c+1) always suffice for feasible systems.
    let max_abs = deps
        .iter()
        .flat_map(|d| d.iter().map(|x| x.abs()))
        .max()
        .unwrap_or(1);
    let bound = ((n as i64) * (max_abs + 1) * 4).max(16);

    let mut pi = vec![0i64; n];
    for sum in 1..=bound {
        if search(deps, &mut pi, 0, sum) {
            return Ok(pi);
        }
    }
    Err(SolveError(format!(
        "no time vector with coefficient sum ≤ {bound}"
    )))
}

/// Enumerate compositions of `remaining` into positions `pos..`, testing
/// feasibility at the leaves. Lexicographically smallest first.
fn search(deps: &[Vec<i64>], pi: &mut [i64], pos: usize, remaining: i64) -> bool {
    if pos == pi.len() - 1 {
        pi[pos] = remaining;
        return feasible(deps, pi);
    }
    for v in 0..=remaining {
        pi[pos] = v;
        if search(deps, pi, pos + 1, remaining - v) {
            return true;
        }
    }
    false
}

fn feasible(deps: &[Vec<i64>], pi: &[i64]) -> bool {
    deps.iter()
        .all(|d| d.iter().zip(pi).map(|(&a, &b)| a * b).sum::<i64>() >= 1)
}

/// Render the dependence inequalities the way the paper does
/// (`a > 0`, `a > c`, ...), using letters `a, b, c, ...` per dimension.
pub fn render_inequalities(deps: &[Vec<i64>]) -> Vec<String> {
    let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
    deps.iter()
        .map(|d| {
            let mut lhs = Vec::new();
            let mut rhs = Vec::new();
            for (i, &coeff) in d.iter().enumerate() {
                let name = names.get(i).copied().unwrap_or("?");
                match coeff {
                    0 => {}
                    1 => lhs.push(name.to_string()),
                    -1 => rhs.push(name.to_string()),
                    c if c > 0 => lhs.push(format!("{c}{name}")),
                    c => rhs.push(format!("{}{name}", -c)),
                }
            }
            let lhs = if lhs.is_empty() {
                "0".to_string()
            } else {
                lhs.join(" + ")
            };
            let rhs = if rhs.is_empty() {
                "0".to_string()
            } else {
                rhs.join(" + ")
            };
            format!("{lhs} > {rhs}")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_gives_2_1_1() {
        let deps = vec![
            vec![1, 0, 0],
            vec![0, 0, 1],
            vec![0, 1, 0],
            vec![1, 0, -1],
            vec![1, -1, 0],
        ];
        assert_eq!(solve_time_vector(&deps).unwrap(), vec![2, 1, 1]);
    }

    #[test]
    fn jacobi_needs_only_time() {
        // Version 1: every dependence has d₀ = 1 ⇒ π = (1, 0, 0).
        let deps = vec![
            vec![1, 0, 0],
            vec![1, 0, 1],
            vec![1, 1, 0],
            vec![1, 0, -1],
            vec![1, -1, 0],
        ];
        assert_eq!(solve_time_vector(&deps).unwrap(), vec![1, 0, 0]);
    }

    #[test]
    fn single_recurrence() {
        assert_eq!(solve_time_vector(&[vec![1]]).unwrap(), vec![1]);
        assert_eq!(solve_time_vector(&[vec![2]]).unwrap(), vec![1]);
    }

    #[test]
    fn skewed_2d() {
        // x[i,j] depends on x[i-1,j] and x[i,j-1]: classic wavefront π=(1,1).
        let deps = vec![vec![1, 0], vec![0, 1]];
        assert_eq!(solve_time_vector(&deps).unwrap(), vec![1, 1]);
    }

    #[test]
    fn deep_negative_offset() {
        // d = (1, -3): needs a > 3b ⇒ π = (4, 1) at minimal sum... check:
        // sum 2: (1,1): 1-3=-2 no; (2,0)? d=(0,1) must also hold: 0·2+1·0=0
        // no. Actual minimal: π=(4,1).
        let deps = vec![vec![1, -3], vec![0, 1]];
        let pi = solve_time_vector(&deps).unwrap();
        assert_eq!(pi, vec![4, 1]);
    }

    #[test]
    fn infeasible_zero_vector() {
        assert!(solve_time_vector(&[vec![0, 0]]).is_err());
    }

    #[test]
    fn infeasible_nonpositive() {
        assert!(solve_time_vector(&[vec![-1, 0]]).is_err());
        // Opposing dependences are fine as long as each has a positive
        // entry somewhere... but (1,-1) and (-1,1) cannot both hold.
        let err = solve_time_vector(&[vec![1, -1], vec![-1, 1]]);
        assert!(err.is_err());
    }

    #[test]
    fn inequalities_render_like_paper() {
        let deps = vec![
            vec![1, 0, 0],
            vec![0, 0, 1],
            vec![0, 1, 0],
            vec![1, 0, -1],
            vec![1, -1, 0],
        ];
        let ineqs = render_inequalities(&deps);
        assert_eq!(ineqs, vec!["a > 0", "c > 0", "b > 0", "a > c", "a > b"]);
    }
}
