//! The coordinate transformation: rewrite a recursive PS array and its
//! equations into hyperplane ("wavefront") form.
//!
//! For the paper's revised relaxation this produces, in transformed
//! coordinates `K' = 2K + I + J`, `I' = K`, `J' = I`:
//!
//! ```text
//! A'[K',I',J'] =
//!   if <out of wavefront: K'-2I'-J' outside 0..M+1> then 0.0
//!   elsif I' = 1 then InitialA[J', K'-2I'-J']            (merged eq.1)
//!   elsif <boundary>  then A'[K'-2, I'-1, J']            (carry-over)
//!   else (A'[K'-1,I',J'] + A'[K'-1,I',J'-1]
//!       + A'[K'-1,I'-1,J'] + A'[K'-1,I'-1,J'+1]) / 4     (interior)
//! ```
//!
//! All recursive references now step backwards in `K'` only, so the
//! scheduler emits `DO K' (DOALL I' (DOALL J'))` — "the schedule is
//! identical to that of Figure 6" — and the window analysis allocates
//! **3** planes instead of the full array.

use crate::depvec::{extract_dependences, DepVecError};
use crate::imat::{unimodular_completion, IMat};
use crate::solve::{solve_time_vector, SolveError};
use ps_depgraph::build_depgraph;
use ps_lang::ast::BinOp;
use ps_lang::bounds::Affine;
use ps_lang::hir::{
    AffineIx, DataItem, DataKind, Equation, HExpr, HirModule, IndexVar, LhsSub, SubscriptExpr,
};
use ps_lang::types::{ScalarTy, Subrange, Ty};
use ps_lang::{DataId, EqId, IvId, SubrangeId};
use ps_scheduler::{
    schedule_module, Descriptor, DrainSpec, ScheduleError, ScheduleOptions, ScheduleResult,
};
use ps_support::idx::IndexVec;
use ps_support::{Span, Symbol};

/// How the transformed array is stored.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StorageMode {
    /// Keep only `window` time planes; the result is *drained* inside the
    /// wavefront loop (the paper's preferred alternative). Requires every
    /// outside reader of the array to be a pure upper-bound-plane gather.
    Windowed,
    /// Allocate every time plane; outside readers are rewritten through the
    /// transform. Simple but allocates `O(tmax · plane)` storage.
    Full,
}

/// Everything the transformation produced.
#[derive(Clone, Debug)]
pub struct HyperplaneResult {
    /// The transformed module (shares `DataId`s with the original; the
    /// transformed array is appended).
    pub module: HirModule,
    /// The original recursive array.
    pub target: DataId,
    /// The new array `A'` in `module`.
    pub new_array: DataId,
    /// The time vector π.
    pub pi: Vec<i64>,
    /// The unimodular transform `T` (first row π).
    pub t_mat: IMat,
    /// `T⁻¹` (original coordinates from transformed ones).
    pub t_inv: IMat,
    /// Original dependence vectors.
    pub dep_vectors: Vec<Vec<i64>>,
    /// `T·d` for each dependence (first components are the time offsets).
    pub transformed_deps: Vec<Vec<i64>>,
    /// Window for the time dimension: `1 + max time offset`.
    pub window: i64,
    /// Subrange of the new outer (time) loop.
    pub time_subrange: SubrangeId,
    /// Subranges of the inner transformed dimensions.
    pub inner_subranges: Vec<SubrangeId>,
    /// Drain step (windowed mode only).
    pub drain: Option<DrainSpec>,
    pub mode: StorageMode,
    /// Label of the merged recurrence equation.
    pub merged_label: String,
}

/// Why the transformation could not be applied.
#[derive(Debug)]
pub enum HyperplaneError {
    NoRecursiveArray,
    Unsupported(String),
    Infeasible(String),
    Schedule(ScheduleError),
}

impl std::fmt::Display for HyperplaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HyperplaneError::NoRecursiveArray => {
                write!(f, "the module has no recursively defined array")
            }
            HyperplaneError::Unsupported(s) => write!(f, "unsupported shape: {s}"),
            HyperplaneError::Infeasible(s) => write!(f, "no legal time vector: {s}"),
            HyperplaneError::Schedule(e) => write!(f, "transformed module unschedulable: {e}"),
        }
    }
}

impl std::error::Error for HyperplaneError {}

impl From<DepVecError> for HyperplaneError {
    fn from(e: DepVecError) -> Self {
        HyperplaneError::Unsupported(e.0)
    }
}

impl From<SolveError> for HyperplaneError {
    fn from(e: SolveError) -> Self {
        HyperplaneError::Infeasible(e.0)
    }
}

/// Find the (unique) recursively defined local array of a module, if any.
pub fn find_recursive_target(module: &HirModule) -> Option<DataId> {
    let mut found = None;
    for (id, item) in module.data.iter_enumerated() {
        if !item.is_array() || item.kind == DataKind::Param {
            continue;
        }
        let recursive = module.defs_of(id).iter().any(|&e| {
            module.equations[e]
                .rhs
                .array_reads()
                .iter()
                .any(|(a, _)| *a == id)
        });
        if recursive {
            if found.is_some() {
                return None; // ambiguous: caller must specify
            }
            found = Some(id);
        }
    }
    found
}

/// Apply the hyperplane transformation to `target`.
pub fn hyperplane_transform(
    module: &HirModule,
    target: DataId,
    mode: StorageMode,
) -> Result<HyperplaneResult, HyperplaneError> {
    let info = extract_dependences(module, target)?;
    let pi = solve_time_vector(&info.vectors)?;
    let n = module.data[target].dims().len();
    let t_mat = unimodular_completion(&pi);
    let t_inv = t_mat.unimodular_inverse();
    let transformed_deps: Vec<Vec<i64>> = info.vectors.iter().map(|d| t_mat.mul_vec(d)).collect();
    for (d, td) in info.vectors.iter().zip(&transformed_deps) {
        assert!(
            td[0] >= 1,
            "legality: π·d ≥ 1 must hold for {d:?} (got {})",
            td[0]
        );
    }
    let window = 1 + transformed_deps.iter().map(|d| d[0]).max().unwrap_or(0);

    let mut new_module = module.clone();

    // Original dimension bounds (lo, hi) as affine forms.
    let orig_bounds: Vec<(Affine, Affine)> = module.data[target]
        .dims()
        .iter()
        .map(|&sr| {
            let s = &module.subranges[sr];
            (s.lo.clone(), s.hi.clone())
        })
        .collect();

    // New subranges: interval arithmetic over the rows of T.
    let mut new_srs: Vec<SubrangeId> = Vec::with_capacity(n);
    let iv_names = transformed_iv_names(module, &info.equations, n);
    for (k, row) in t_mat.rows().enumerate() {
        let mut lo = Affine::constant(0);
        let mut hi = Affine::constant(0);
        for (d, &c) in row.iter().enumerate() {
            let (dlo, dhi) = &orig_bounds[d];
            if c >= 0 {
                lo = lo.add(&dlo.scale(c));
                hi = hi.add(&dhi.scale(c));
            } else {
                lo = lo.add(&dhi.scale(c));
                hi = hi.add(&dlo.scale(c));
            }
        }
        let sr = new_module.subranges.push(Subrange {
            name: Some(iv_names[k]),
            lo,
            hi,
            span: Span::DUMMY,
        });
        new_srs.push(sr);
    }
    let time_subrange = new_srs[0];
    let inner_subranges = new_srs[1..].to_vec();

    // The transformed array A'.
    let elem = module.data[target]
        .elem_scalar()
        .ok_or_else(|| HyperplaneError::Unsupported("target has no scalar element".into()))?;
    let new_name = Symbol::intern(&format!("{}'", module.data[target].name));
    let new_array = new_module.data.push(DataItem {
        name: new_name,
        kind: DataKind::Local,
        ty: Ty::Array {
            dims: new_srs.clone(),
            elem,
        },
        span: Span::DUMMY,
    });

    // Build the merged recurrence equation.
    let defs = module.defs_of(target);
    let merged = build_merged_equation(
        module,
        &new_module,
        target,
        new_array,
        &defs,
        &new_srs,
        &iv_names,
        &t_mat,
        &t_inv,
        &orig_bounds,
        elem,
    )?;
    let merged_label = merged.label.clone();

    // Rebuild the equation list: drop definitions of `target`, splice the
    // merged equation at the first definition site, and handle readers.
    let mut drain: Option<DrainSpec> = None;
    let mut new_equations: IndexVec<EqId, Equation> = IndexVec::new();
    let mut merged_inserted = false;
    for (_, eq) in module.equations.iter_enumerated() {
        if eq.lhs == target {
            if !merged_inserted {
                new_equations.push(merged.clone());
                merged_inserted = true;
            }
            continue;
        }
        let reads_target = eq.rhs.array_reads().iter().any(|(a, _)| *a == target);
        if !reads_target {
            new_equations.push(eq.clone());
            continue;
        }
        match mode {
            StorageMode::Windowed => {
                let spec = pure_gather_drain(
                    module,
                    eq,
                    target,
                    new_array,
                    time_subrange,
                    &inner_subranges,
                    &t_inv,
                    &orig_bounds,
                    &iv_names,
                )?;
                if drain.is_some() {
                    return Err(HyperplaneError::Unsupported(
                        "windowed mode supports a single gather equation".into(),
                    ));
                }
                drain = Some(spec);
                // The gather is replaced by the drain; drop the equation.
            }
            StorageMode::Full => {
                // Rewrite reads of `target` through T; the reader keeps its
                // own index variables.
                let rewritten = rewrite_expr(
                    &eq.rhs,
                    &|iv| AffineIx::from_iv(iv),
                    target,
                    new_array,
                    &t_mat,
                )?;
                let mut new_eq = eq.clone();
                new_eq.rhs = rewritten;
                new_equations.push(new_eq);
            }
        }
    }
    if mode == StorageMode::Windowed && drain.is_none() {
        return Err(HyperplaneError::Unsupported(
            "windowed mode requires a gather equation reading the final plane".into(),
        ));
    }
    new_module.equations = new_equations;

    Ok(HyperplaneResult {
        module: new_module,
        target,
        new_array,
        pi,
        t_mat,
        t_inv,
        dep_vectors: info.vectors,
        transformed_deps,
        window,
        time_subrange,
        inner_subranges,
        drain,
        mode,
        merged_label,
    })
}

/// Schedule the transformed module, inserting the drain step into the time
/// loop in windowed mode. Returns the schedule.
pub fn schedule_transformed(
    result: &HyperplaneResult,
    options: ScheduleOptions,
) -> Result<ScheduleResult, HyperplaneError> {
    let dg = build_depgraph(&result.module);
    let mut sched =
        schedule_module(&result.module, &dg, options).map_err(HyperplaneError::Schedule)?;
    if let Some(drain) = &result.drain {
        if !insert_drain(&mut sched.flowchart.items, result.time_subrange, drain) {
            return Err(HyperplaneError::Unsupported(
                "no time loop found to host the drain step".into(),
            ));
        }
    }
    Ok(sched)
}

fn insert_drain(items: &mut [Descriptor], time_subrange: SubrangeId, drain: &DrainSpec) -> bool {
    for d in items {
        if let Descriptor::Loop(l) = d {
            if l.subrange == time_subrange {
                l.body.push(Descriptor::Drain(Box::new(drain.clone())));
                return true;
            }
            if insert_drain(&mut l.body, time_subrange, drain) {
                return true;
            }
        }
    }
    false
}

/// Pick display names for the transformed index variables: the recursive
/// equation's iv names with a prime (`K` → `K'`).
fn transformed_iv_names(module: &HirModule, eqs: &[EqId], n: usize) -> Vec<Symbol> {
    if let Some(&eq) = eqs.first() {
        let eq = &module.equations[eq];
        if eq.ivs.len() == n {
            return eq
                .ivs
                .iter()
                .map(|iv| Symbol::intern(&format!("{}'", iv.name)))
                .collect();
        }
    }
    (0..n).map(|k| Symbol::intern(&format!("t{k}'"))).collect()
}

#[allow(clippy::too_many_arguments)]
fn build_merged_equation(
    module: &HirModule,
    new_module: &HirModule,
    target: DataId,
    new_array: DataId,
    defs: &[EqId],
    new_srs: &[SubrangeId],
    iv_names: &[Symbol],
    t_mat: &IMat,
    t_inv: &IMat,
    orig_bounds: &[(Affine, Affine)],
    elem: ScalarTy,
) -> Result<Equation, HyperplaneError> {
    let n = new_srs.len();

    // Index variables of the merged equation.
    let mut ivs: IndexVec<IvId, IndexVar> = IndexVec::new();
    for (k, &sr) in new_srs.iter().enumerate() {
        ivs.push(IndexVar {
            name: iv_names[k],
            subrange: sr,
            implicit: false,
        });
    }
    let new_iv = |k: usize| IvId(k as u32);

    // Original coordinates as affine forms over the new index variables:
    // x = T⁻¹ · x'.
    let x_of: Vec<AffineIx> = (0..n)
        .map(|d| {
            let mut acc = AffineIx::constant(Affine::constant(0));
            for k in 0..n {
                let c = t_inv[(d, k)];
                if c != 0 {
                    acc = acc.add(&AffineIx::from_iv(new_iv(k)).scale(c));
                }
            }
            acc
        })
        .collect();

    // Out-of-wavefront guard: a dimension needs a bounds check unless its
    // T⁻¹ row is a unit vector pointing at a loop whose subrange equals the
    // dimension's range (then the loop bounds already guarantee it).
    let mut violations: Vec<HExpr> = Vec::new();
    for d in 0..n {
        let row: Vec<i64> = (0..n).map(|k| t_inv[(d, k)]).collect();
        let unit_at = row
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .collect::<Vec<_>>();
        if let [(k, &1)] = unit_at.as_slice() {
            let loop_sr = &new_module.subranges[new_srs[*k]];
            let dim_lo = &orig_bounds[d].0;
            let dim_hi = &orig_bounds[d].1;
            if loop_sr.lo.const_difference(dim_lo) == Some(0)
                && loop_sr.hi.const_difference(dim_hi) == Some(0)
            {
                continue;
            }
        }
        let xe = affine_ix_to_hexpr(module, &x_of[d]);
        violations.push(HExpr::Binary {
            op: BinOp::Lt,
            lhs: Box::new(xe.clone()),
            rhs: Box::new(affine_to_hexpr(module, &orig_bounds[d].0)),
        });
        violations.push(HExpr::Binary {
            op: BinOp::Gt,
            lhs: Box::new(xe),
            rhs: Box::new(affine_to_hexpr(module, &orig_bounds[d].1)),
        });
    }

    let dummy = match elem {
        ScalarTy::Real => HExpr::Real(0.0),
        ScalarTy::Int => HExpr::Int(0),
        ScalarTy::Bool => HExpr::Bool(false),
        ScalarTy::Char => HExpr::Char('\0'),
    };

    // Order the defining equations: constant-plane initializations first
    // (they become guarded arms), the recurrence last (the `else`).
    let mut ordered: Vec<EqId> = defs.to_vec();
    ordered.sort_by_key(|&e| {
        let has_const = module.equations[e]
            .lhs_subs
            .iter()
            .any(|s| matches!(s, LhsSub::Const(_)));
        (!has_const) as u8 // consts first, stable within groups
    });

    let mut arms: Vec<(HExpr, HExpr)> = Vec::new();
    if !violations.is_empty() {
        let guard = or_chain(violations);
        arms.push((guard, dummy));
    }

    let mut else_rhs: Option<HExpr> = None;
    for (idx, &eq_id) in ordered.iter().enumerate() {
        let eq = &module.equations[eq_id];
        // Substitution: the old equation's iv at LHS dimension d becomes
        // x_d over the new ivs.
        let subst = |iv: IvId| -> AffineIx {
            let d = eq
                .lhs_subs
                .iter()
                .position(|s| matches!(s, LhsSub::Var(v) if *v == iv))
                .expect("every iv appears on the LHS");
            x_of[d].clone()
        };
        let rewritten = rewrite_expr(&eq.rhs, &subst, target, new_array, t_mat)?;

        if idx + 1 == ordered.len() {
            else_rhs = Some(rewritten);
        } else {
            // Region guard: equality at each constant dimension, plus range
            // guards for variable dimensions whose subrange is narrower
            // than the declared dimension (e.g. `I = 2..n` over `1..n`).
            let mut conds = Vec::new();
            for (d, s) in eq.lhs_subs.iter().enumerate() {
                match s {
                    LhsSub::Const(c) => conds.push(HExpr::Binary {
                        op: BinOp::Eq,
                        lhs: Box::new(affine_ix_to_hexpr(module, &x_of[d])),
                        rhs: Box::new(affine_to_hexpr(module, c)),
                    }),
                    LhsSub::Var(iv) => {
                        let sr = &module.subranges[eq.ivs[*iv].subrange];
                        if sr.lo.const_difference(&orig_bounds[d].0) != Some(0) {
                            conds.push(HExpr::Binary {
                                op: BinOp::Ge,
                                lhs: Box::new(affine_ix_to_hexpr(module, &x_of[d])),
                                rhs: Box::new(affine_to_hexpr(module, &sr.lo)),
                            });
                        }
                        if sr.hi.const_difference(&orig_bounds[d].1) != Some(0) {
                            conds.push(HExpr::Binary {
                                op: BinOp::Le,
                                lhs: Box::new(affine_ix_to_hexpr(module, &x_of[d])),
                                rhs: Box::new(affine_to_hexpr(module, &sr.hi)),
                            });
                        }
                    }
                }
            }
            if conds.is_empty() {
                return Err(HyperplaneError::Unsupported(format!(
                    "{}: cannot order region guards for multiple range definitions",
                    eq.label
                )));
            }
            arms.push((and_chain(conds), rewritten));
        }
    }
    let else_rhs = else_rhs
        .ok_or_else(|| HyperplaneError::Unsupported("target has no defining equations".into()))?;

    let rhs = if arms.is_empty() {
        else_rhs
    } else {
        HExpr::If {
            arms,
            else_: Box::new(else_rhs),
        }
    };

    // Label: reuse the recurrence's label so Figure-6 comparisons read the
    // same ("the schedule is identical to that of Figure 6").
    let label = ordered
        .last()
        .map(|&e| module.equations[e].label.clone())
        .unwrap_or_else(|| "eq.t".to_string());

    Ok(Equation {
        label,
        lhs: new_array,
        lhs_field: None,
        lhs_subs: (0..n).map(|k| LhsSub::Var(new_iv(k))).collect(),
        ivs,
        rhs,
        span: Span::DUMMY,
    })
}

/// Rewrite an expression: substitute old index variables and redirect reads
/// of `target` through the transform (`A[s] → A'[T·s]`).
fn rewrite_expr(
    e: &HExpr,
    subst: &dyn Fn(IvId) -> AffineIx,
    target: DataId,
    new_array: DataId,
    t_mat: &IMat,
) -> Result<HExpr, HyperplaneError> {
    Ok(match e {
        HExpr::Iv(iv) => affine_ix_to_hexpr_raw(&subst(*iv)),
        HExpr::ReadArray { array, subs, span } => {
            // Substitute into every subscript first.
            let subbed: Result<Vec<AffineIx>, HyperplaneError> = subs
                .iter()
                .map(|s| {
                    let a = s.as_affine().ok_or_else(|| {
                        HyperplaneError::Unsupported(
                            "dynamic subscripts cannot be transformed".into(),
                        )
                    })?;
                    Ok(substitute_affine(&a, subst))
                })
                .collect();
            if *array == target {
                let s_vec = subbed?;
                let n = t_mat.n();
                if s_vec.len() != n {
                    return Err(HyperplaneError::Unsupported(
                        "partial reference to the recursive array".into(),
                    ));
                }
                let mut new_subs = Vec::with_capacity(n);
                for k in 0..n {
                    let mut acc = AffineIx::constant(Affine::constant(0));
                    for (d, s) in s_vec.iter().enumerate() {
                        let c = t_mat[(k, d)];
                        if c != 0 {
                            acc = acc.add(&s.scale(c));
                        }
                    }
                    new_subs.push(SubscriptExpr::from_affine(acc));
                }
                HExpr::ReadArray {
                    array: new_array,
                    subs: new_subs,
                    span: *span,
                }
            } else {
                // Non-target arrays: keep, with substituted subscripts.
                // Dynamic subscripts are rewritten recursively instead.
                let mut new_subs = Vec::with_capacity(subs.len());
                for s in subs {
                    match s.as_affine() {
                        Some(a) => {
                            new_subs.push(SubscriptExpr::from_affine(substitute_affine(&a, subst)))
                        }
                        None => {
                            let SubscriptExpr::Dynamic(inner) = s else {
                                unreachable!("non-affine is dynamic");
                            };
                            new_subs.push(SubscriptExpr::Dynamic(Box::new(rewrite_expr(
                                inner, subst, target, new_array, t_mat,
                            )?)));
                        }
                    }
                }
                HExpr::ReadArray {
                    array: *array,
                    subs: new_subs,
                    span: *span,
                }
            }
        }
        HExpr::Binary { op, lhs, rhs } => HExpr::Binary {
            op: *op,
            lhs: Box::new(rewrite_expr(lhs, subst, target, new_array, t_mat)?),
            rhs: Box::new(rewrite_expr(rhs, subst, target, new_array, t_mat)?),
        },
        HExpr::Unary { op, operand } => HExpr::Unary {
            op: *op,
            operand: Box::new(rewrite_expr(operand, subst, target, new_array, t_mat)?),
        },
        HExpr::If { arms, else_ } => {
            let mut new_arms = Vec::with_capacity(arms.len());
            for (c, v) in arms {
                new_arms.push((
                    rewrite_expr(c, subst, target, new_array, t_mat)?,
                    rewrite_expr(v, subst, target, new_array, t_mat)?,
                ));
            }
            HExpr::If {
                arms: new_arms,
                else_: Box::new(rewrite_expr(else_, subst, target, new_array, t_mat)?),
            }
        }
        HExpr::Call { builtin, args } => HExpr::Call {
            builtin: *builtin,
            args: args
                .iter()
                .map(|a| rewrite_expr(a, subst, target, new_array, t_mat))
                .collect::<Result<_, _>>()?,
        },
        HExpr::CastReal(inner) => HExpr::CastReal(Box::new(rewrite_expr(
            inner, subst, target, new_array, t_mat,
        )?)),
        leaf => leaf.clone(),
    })
}

fn substitute_affine(a: &AffineIx, subst: &dyn Fn(IvId) -> AffineIx) -> AffineIx {
    let mut acc = AffineIx::constant(a.rest.clone());
    for &(iv, c) in &a.iv_terms {
        acc = acc.add(&subst(iv).scale(c));
    }
    acc
}

/// Validate that `eq` is a pure gather `dst[...] = target[hi, vars...]` and
/// build the corresponding drain step.
#[allow(clippy::too_many_arguments)]
fn pure_gather_drain(
    module: &HirModule,
    eq: &Equation,
    target: DataId,
    new_array: DataId,
    time_subrange: SubrangeId,
    inner_subranges: &[SubrangeId],
    t_inv: &IMat,
    orig_bounds: &[(Affine, Affine)],
    iv_names: &[Symbol],
) -> Result<DrainSpec, HyperplaneError> {
    let unsupported = |msg: &str| -> HyperplaneError {
        HyperplaneError::Unsupported(format!(
            "{}: windowed mode requires a pure gather of the final plane ({msg})",
            eq.label
        ))
    };

    // RHS must be exactly a read of the target (modulo nothing at all —
    // even a cast would change values written by the drain).
    let HExpr::ReadArray { array, subs, .. } = &eq.rhs else {
        return Err(unsupported("right-hand side is not a plain reference"));
    };
    if *array != target {
        return Err(unsupported("reads a different array"));
    }

    // Exactly one constant subscript at the declared upper bound; the rest
    // identity variables in LHS order.
    let mut drain_dim: Option<usize> = None;
    let mut var_ivs: Vec<IvId> = Vec::new();
    for (d, s) in subs.iter().enumerate() {
        match s {
            SubscriptExpr::Var(iv) => var_ivs.push(*iv),
            SubscriptExpr::Affine(a) if a.is_constant() => {
                if orig_bounds[d].1.const_difference(&a.rest) != Some(0) {
                    return Err(unsupported("constant subscript is not the upper bound"));
                }
                if drain_dim.replace(d).is_some() {
                    return Err(unsupported("more than one constant dimension"));
                }
            }
            _ => return Err(unsupported("subscripts must be plain variables")),
        }
    }
    let Some(drain_dim) = drain_dim else {
        return Err(unsupported("no constant upper-bound dimension"));
    };
    let lhs_vars: Vec<IvId> = eq
        .lhs_subs
        .iter()
        .filter_map(|s| match s {
            LhsSub::Var(iv) => Some(*iv),
            LhsSub::Const(_) => None,
        })
        .collect();
    if lhs_vars != var_ivs {
        return Err(unsupported(
            "gather must copy dimensions in order (dst[i,j] = A[hi,i,j])",
        ));
    }

    let _ = (module, new_array);
    let n = orig_bounds.len();
    Ok(DrainSpec {
        dst: eq.lhs,
        src: new_array,
        inner: inner_subranges.to_vec(),
        original: (0..n)
            .map(|d| {
                let coeffs: Vec<i64> = (0..n).map(|k| t_inv[(d, k)]).collect();
                (coeffs, Affine::constant(0))
            })
            .collect(),
        drain_dim,
        original_bounds: orig_bounds.to_vec(),
        time_name: iv_names[0].to_string(),
    })
    .map(|mut spec| {
        // `inner` excludes the time dimension by construction; keep the
        // time subrange implicit via the enclosing loop.
        let _ = time_subrange;
        spec.inner = inner_subranges.to_vec();
        spec
    })
}

// ---- HExpr builders -------------------------------------------------------

fn affine_to_hexpr(module: &HirModule, a: &Affine) -> HExpr {
    let mut acc: Option<HExpr> = None;
    for (sym, c) in a.terms() {
        let data = module
            .data_by_name(sym.as_str())
            .expect("affine bound references a known parameter");
        let read = HExpr::ReadScalar(data);
        let term = if c == 1 {
            read
        } else {
            HExpr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(HExpr::Int(c)),
                rhs: Box::new(read),
            }
        };
        acc = Some(match acc {
            None => term,
            Some(prev) => HExpr::Binary {
                op: BinOp::Add,
                lhs: Box::new(prev),
                rhs: Box::new(term),
            },
        });
    }
    let k = a.constant_part();
    match acc {
        None => HExpr::Int(k),
        Some(e) if k == 0 => e,
        Some(e) => HExpr::Binary {
            op: if k > 0 { BinOp::Add } else { BinOp::Sub },
            lhs: Box::new(e),
            rhs: Box::new(HExpr::Int(k.abs())),
        },
    }
}

fn affine_ix_to_hexpr(module: &HirModule, a: &AffineIx) -> HExpr {
    let mut acc: Option<HExpr> = None;
    for &(iv, c) in &a.iv_terms {
        let read = HExpr::Iv(iv);
        let term = if c == 1 {
            read
        } else if c == -1 {
            HExpr::Unary {
                op: ps_lang::ast::UnOp::Neg,
                operand: Box::new(read),
            }
        } else {
            HExpr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(HExpr::Int(c)),
                rhs: Box::new(read),
            }
        };
        acc = Some(match acc {
            None => term,
            Some(prev) => HExpr::Binary {
                op: BinOp::Add,
                lhs: Box::new(prev),
                rhs: Box::new(term),
            },
        });
    }
    let rest = affine_to_hexpr(module, &a.rest);
    match acc {
        None => rest,
        Some(e) => {
            if a.rest.as_constant() == Some(0) {
                e
            } else {
                HExpr::Binary {
                    op: BinOp::Add,
                    lhs: Box::new(e),
                    rhs: Box::new(rest),
                }
            }
        }
    }
}

/// Like [`affine_ix_to_hexpr`] but without parameter lookups (used inside
/// rewrite where `rest` is constant-only).
fn affine_ix_to_hexpr_raw(a: &AffineIx) -> HExpr {
    let mut acc: Option<HExpr> = None;
    for &(iv, c) in &a.iv_terms {
        let read = HExpr::Iv(iv);
        let term = if c == 1 {
            read
        } else if c == -1 {
            HExpr::Unary {
                op: ps_lang::ast::UnOp::Neg,
                operand: Box::new(read),
            }
        } else {
            HExpr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(HExpr::Int(c)),
                rhs: Box::new(read),
            }
        };
        acc = Some(match acc {
            None => term,
            Some(prev) => HExpr::Binary {
                op: BinOp::Add,
                lhs: Box::new(prev),
                rhs: Box::new(term),
            },
        });
    }
    debug_assert!(
        a.rest.terms().count() == 0,
        "raw affine conversion cannot reference parameters"
    );
    let k = a.rest.constant_part();
    match acc {
        None => HExpr::Int(k),
        Some(e) if k == 0 => e,
        Some(e) => HExpr::Binary {
            op: if k > 0 { BinOp::Add } else { BinOp::Sub },
            lhs: Box::new(e),
            rhs: Box::new(HExpr::Int(k.abs())),
        },
    }
}

fn or_chain(mut exprs: Vec<HExpr>) -> HExpr {
    let first = exprs.remove(0);
    exprs.into_iter().fold(first, |acc, e| HExpr::Binary {
        op: BinOp::Or,
        lhs: Box::new(acc),
        rhs: Box::new(e),
    })
}

fn and_chain(mut exprs: Vec<HExpr>) -> HExpr {
    let first = exprs.remove(0);
    exprs.into_iter().fold(first, |acc, e| HExpr::Binary {
        op: BinOp::And,
        lhs: Box::new(acc),
        rhs: Box::new(e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_lang::frontend;
    use ps_scheduler::validate_flowchart;
    use ps_support::FxHashMap;

    const RELAXATION_V2: &str = "
        Relaxation2: module (InitialA: array[I,J] of real; M: int; maxK: int):
             [newA: array[I,J] of real];
         type I, J = 0 .. M+1; K = 2 .. maxK;
         var A: array [1 .. maxK] of array[I,J] of real;
         define
            A[1] = InitialA;
            newA = A[maxK];
            A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                       then A[K-1,I,J]
                       else ( A[K,I,J-1] + A[K,I-1,J]
                            + A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
         end Relaxation2;
    ";

    fn transform(mode: StorageMode) -> HyperplaneResult {
        let m = frontend(RELAXATION_V2).unwrap();
        let target = find_recursive_target(&m).expect("A is recursive");
        hyperplane_transform(&m, target, mode).expect("transform")
    }

    #[test]
    fn section4_derivation_matches_paper() {
        let r = transform(StorageMode::Windowed);
        // π = (2, 1, 1): t = 2K + I + J.
        assert_eq!(r.pi, vec![2, 1, 1]);
        // T = [[2,1,1],[1,0,0],[0,1,0]]: K' = 2K+I+J, I' = K, J' = I.
        assert_eq!(r.t_mat.row(0), &[2, 1, 1]);
        assert_eq!(r.t_mat.row(1), &[1, 0, 0]);
        assert_eq!(r.t_mat.row(2), &[0, 1, 0]);
        // Inverse: K = I', I = J', J = K' - 2I' - J'.
        assert_eq!(r.t_inv.row(0), &[0, 1, 0]);
        assert_eq!(r.t_inv.row(1), &[0, 0, 1]);
        assert_eq!(r.t_inv.row(2), &[1, -2, -1]);
        // Window 3 ("we can allocate an array 3 × maxK × M").
        assert_eq!(r.window, 3);
        // Transformed dependences: time offsets 1,1,1,1 and 2 (boundary).
        let mut time_offsets: Vec<i64> = r.transformed_deps.iter().map(|d| d[0]).collect();
        time_offsets.sort();
        assert_eq!(time_offsets, vec![1, 1, 1, 1, 2]);
        // The paper's four interior references.
        for expected in [
            vec![1, 0, 0],  // A'[K'-1, I', J']
            vec![1, 0, 1],  // A'[K'-1, I', J'-1]
            vec![1, 1, 0],  // A'[K'-1, I'-1, J']
            vec![1, 1, -1], // A'[K'-1, I'-1, J'+1]
            vec![2, 1, 0],  // A'[K'-2, I'-1, J'] (boundary carry-over)
        ] {
            assert!(
                r.transformed_deps.contains(&expected),
                "missing transformed dep {expected:?} in {:?}",
                r.transformed_deps
            );
        }
    }

    #[test]
    fn transformed_subranges() {
        let r = transform(StorageMode::Windowed);
        let m = &r.module;
        // Time range: 2K+I+J over K∈[1,maxK], I,J∈[0,M+1] → [2, 2maxK+2M+2].
        let t = &m.subranges[r.time_subrange];
        assert_eq!(format!("{}", t.lo), "2");
        // 2·maxK + 2·(M+1) (terms print in symbol order).
        assert_eq!(format!("{}", t.hi), "2*M + 2*maxK + 2");
        // Inner dims: I' = K ∈ [1, maxK]; J' = I ∈ [0, M+1].
        let i1 = &m.subranges[r.inner_subranges[0]];
        assert_eq!(format!("{}", i1.lo), "1");
        assert_eq!(format!("{}", i1.hi), "maxK");
        let j1 = &m.subranges[r.inner_subranges[1]];
        assert_eq!(format!("{}", j1.lo), "0");
        assert_eq!(format!("{}", j1.hi), "M + 1");
    }

    #[test]
    fn windowed_schedule_is_wavefront() {
        let r = transform(StorageMode::Windowed);
        let sched = schedule_transformed(&r, ScheduleOptions::default()).unwrap();
        let s = sched
            .flowchart
            .compact(&|e| r.module.equations[e].label.clone());
        assert_eq!(
            s,
            "DOALL I (DOALL J (eq.1)); DO K' (DOALL I' (DOALL J' (eq.3)); DRAIN K')"
                .replace("DOALL I (DOALL J (eq.1)); ", ""),
            "schedule: {s}"
        );
        // Window 3 on the time dimension of A'.
        assert_eq!(sched.memory.window(r.new_array, 0), Some(3));
        assert_eq!(sched.memory.window(r.new_array, 1), None);
    }

    #[test]
    fn windowed_schedule_validates() {
        let r = transform(StorageMode::Windowed);
        let sched = schedule_transformed(&r, ScheduleOptions::default()).unwrap();
        let mut params = FxHashMap::default();
        params.insert(Symbol::intern("M"), 4);
        params.insert(Symbol::intern("maxK"), 5);
        validate_flowchart(&r.module, &sched.flowchart, &params)
            .expect("wavefront schedule is dependence-correct");
    }

    #[test]
    fn full_mode_schedule_validates() {
        let r = transform(StorageMode::Full);
        assert!(r.drain.is_none());
        let sched = schedule_transformed(&r, ScheduleOptions::default()).unwrap();
        let s = sched
            .flowchart
            .compact(&|e| r.module.equations[e].label.clone());
        assert!(s.contains("DO K' (DOALL I' (DOALL J' (eq.3)))"), "{s}");
        assert!(s.contains("eq.2"), "gather survives in full mode: {s}");
        // Full mode: A' physical in time (outside affine reads).
        assert_eq!(sched.memory.window(r.new_array, 0), None);
        let mut params = FxHashMap::default();
        params.insert(Symbol::intern("M"), 3);
        params.insert(Symbol::intern("maxK"), 4);
        validate_flowchart(&r.module, &sched.flowchart, &params).expect("full mode validates");
    }

    #[test]
    fn jacobi_transform_keeps_outer_time_only() {
        // Version 1 (all reads at K-1): π = (1,0,0), T = identity-ish; the
        // transform is legal and the schedule stays DO t (DOALL, DOALL).
        let v1 = RELAXATION_V2
            .replace("A[K,I,J-1]", "A[K-1,I,J-1]")
            .replace("A[K,I-1,J]", "A[K-1,I-1,J]");
        let m = frontend(&v1).unwrap();
        let target = find_recursive_target(&m).unwrap();
        let r = hyperplane_transform(&m, target, StorageMode::Windowed).unwrap();
        assert_eq!(r.pi, vec![1, 0, 0]);
        assert_eq!(r.window, 2);
        let sched = schedule_transformed(&r, ScheduleOptions::default()).unwrap();
        let (do_n, doall_n) = sched.flowchart.loop_counts();
        assert_eq!(do_n, 1);
        assert!(doall_n >= 2);
    }

    #[test]
    fn non_recursive_module_has_no_target() {
        let m = frontend(
            "T: module (n: int; b: array[1..n] of real): [y: real];
             type I = 1 .. n;
             var a: array [I] of real;
             define a[I] = b[I]; y = a[n]; end T;",
        )
        .unwrap();
        assert!(find_recursive_target(&m).is_none());
    }

    #[test]
    fn windowed_rejects_non_gather_reader() {
        let src = RELAXATION_V2.replace("newA = A[maxK];", "newA = A[1];");
        let m = frontend(&src).unwrap();
        let target = find_recursive_target(&m).unwrap();
        let err = hyperplane_transform(&m, target, StorageMode::Windowed).unwrap_err();
        assert!(matches!(err, HyperplaneError::Unsupported(_)), "{err}");
    }

    #[test]
    fn first_order_recurrence_transforms() {
        // 1-D: a[K] = a[K-1]*2 → π=(1), T=(1), trivial wavefront.
        let m = frontend(
            "T: module (n: int): [y: real];
             type K = 2 .. n;
             var a: array [1 .. n] of real;
             define
                a[1] = 1.0;
                a[K] = a[K-1] * 2.0;
                y = a[n];
             end T;",
        )
        .unwrap();
        let target = find_recursive_target(&m).unwrap();
        let r = hyperplane_transform(&m, target, StorageMode::Windowed).unwrap();
        assert_eq!(r.pi, vec![1]);
        assert_eq!(r.window, 2);
        let sched = schedule_transformed(&r, ScheduleOptions::default()).unwrap();
        let mut params = FxHashMap::default();
        params.insert(Symbol::intern("n"), 9);
        validate_flowchart(&r.module, &sched.flowchart, &params).unwrap();
    }
}
