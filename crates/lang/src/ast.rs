//! Abstract syntax tree for PS modules, produced by the parser.
//!
//! The AST mirrors the surface syntax of the paper's Figure 1: module header
//! with parameters and results, `type` / `var` / `define` sections, and
//! equations whose right-hand sides are expressions (including the `if`
//! expression used for boundary handling). Semantic structure (resolved
//! types, classified subscripts) lives in [`crate::hir`], not here.

use ps_support::{Span, Symbol};

/// A parsed program: one or more modules.
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub modules: Vec<Module>,
}

/// One PS module.
#[derive(Clone, Debug)]
pub struct Module {
    pub name: Symbol,
    pub params: Vec<ParamDecl>,
    pub results: Vec<ParamDecl>,
    pub sections: Vec<Section>,
    /// Identifier after `end`; checked to match `name`.
    pub end_name: Symbol,
    pub span: Span,
}

impl Module {
    /// All type declarations across sections, in order.
    pub fn type_decls(&self) -> impl Iterator<Item = &TypeDecl> {
        self.sections.iter().flat_map(|s| match s {
            Section::Types(ds) => ds.as_slice(),
            _ => &[],
        })
    }

    /// All variable declarations across sections, in order.
    pub fn var_decls(&self) -> impl Iterator<Item = &VarDecl> {
        self.sections.iter().flat_map(|s| match s {
            Section::Vars(ds) => ds.as_slice(),
            _ => &[],
        })
    }

    /// All equations across sections, in order.
    pub fn equations(&self) -> impl Iterator<Item = &EquationDecl> {
        self.sections.iter().flat_map(|s| match s {
            Section::Define(ds) => ds.as_slice(),
            _ => &[],
        })
    }
}

/// A parameter or result declaration `names: type`.
#[derive(Clone, Debug)]
pub struct ParamDecl {
    pub names: Vec<(Symbol, Span)>,
    pub ty: TypeExpr,
    pub span: Span,
}

/// One section of a module body.
#[derive(Clone, Debug)]
pub enum Section {
    Types(Vec<TypeDecl>),
    Vars(Vec<VarDecl>),
    Define(Vec<EquationDecl>),
}

/// `I, J = 0 .. M+1;`
#[derive(Clone, Debug)]
pub struct TypeDecl {
    pub names: Vec<(Symbol, Span)>,
    pub ty: TypeExpr,
    pub span: Span,
}

/// `A: array [1..maxK] of array [I, J] of real;`
#[derive(Clone, Debug)]
pub struct VarDecl {
    pub names: Vec<(Symbol, Span)>,
    pub ty: TypeExpr,
    pub span: Span,
}

/// A type expression as written.
#[derive(Clone, Debug)]
pub enum TypeExpr {
    /// A named type: a primitive (`int`, `real`, `bool`, `char`) or a
    /// user-declared type.
    Named(Symbol, Span),
    /// `lo .. hi` subrange with expression bounds.
    Subrange { lo: Expr, hi: Expr, span: Span },
    /// `array [specs] of elem`; each spec is itself a type expression
    /// (typically a named subrange or an inline `lo..hi`).
    Array {
        index_specs: Vec<TypeExpr>,
        elem: Box<TypeExpr>,
        span: Span,
    },
    /// `record field: ty; ... end`
    Record {
        fields: Vec<(Symbol, TypeExpr, Span)>,
        span: Span,
    },
    /// `(red, green, blue)` enumeration.
    Enum {
        variants: Vec<(Symbol, Span)>,
        span: Span,
    },
}

impl TypeExpr {
    pub fn span(&self) -> Span {
        match self {
            TypeExpr::Named(_, s) => *s,
            TypeExpr::Subrange { span, .. } => *span,
            TypeExpr::Array { span, .. } => *span,
            TypeExpr::Record { span, .. } => *span,
            TypeExpr::Enum { span, .. } => *span,
        }
    }
}

/// An equation `lhs = rhs;` in the `define` section.
#[derive(Clone, Debug)]
pub struct EquationDecl {
    pub lhs: LhsExpr,
    pub rhs: Expr,
    pub span: Span,
}

/// The left-hand side of an equation: a variable, optionally subscripted,
/// optionally a record-field target.
#[derive(Clone, Debug)]
pub struct LhsExpr {
    pub name: Symbol,
    pub name_span: Span,
    /// Subscripts, if any: `A[K, I, J]`.
    pub subscripts: Vec<Expr>,
    /// Record-field path, if any: `R.x`.
    pub field: Option<(Symbol, Span)>,
    pub span: Span,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Real division `/`.
    Div,
    /// Integer division `div`.
    IntDiv,
    /// Integer modulus `mod`.
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::IntDiv => "div",
            BinOp::Mod => "mod",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }

    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Expr {
    IntLit(i64, Span),
    RealLit(f64, Span),
    BoolLit(bool, Span),
    CharLit(char, Span),
    /// A bare identifier: variable, parameter, index variable, or enum
    /// variant — resolution happens in the checker.
    Var(Symbol, Span),
    /// `base[subscripts]` — base is an expression to allow `R.a[i]` style
    /// chains, though in practice it is a variable.
    Subscript {
        base: Box<Expr>,
        subscripts: Vec<Expr>,
        span: Span,
    },
    /// `base.field`
    Field {
        base: Box<Expr>,
        field: Symbol,
        span: Span,
    },
    /// `name(args)` — builtin function call.
    Call {
        name: Symbol,
        name_span: Span,
        args: Vec<Expr>,
        span: Span,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    Unary {
        op: UnOp,
        operand: Box<Expr>,
        span: Span,
    },
    /// `if c1 then e1 elsif c2 then e2 ... else en`
    If {
        /// `(condition, value)` arms; at least one.
        arms: Vec<(Expr, Expr)>,
        else_: Box<Expr>,
        span: Span,
    },
    /// Parenthesized expression (kept for faithful pretty-printing).
    Paren(Box<Expr>, Span),
}

impl Expr {
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s)
            | Expr::RealLit(_, s)
            | Expr::BoolLit(_, s)
            | Expr::CharLit(_, s)
            | Expr::Var(_, s)
            | Expr::Paren(_, s) => *s,
            Expr::Subscript { span, .. }
            | Expr::Field { span, .. }
            | Expr::Call { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::If { span, .. } => *span,
        }
    }

    /// Strip redundant parens.
    pub fn unparen(&self) -> &Expr {
        match self {
            Expr::Paren(inner, _) => inner.unparen(),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unparen_strips_nesting() {
        let inner = Expr::IntLit(3, Span::DUMMY);
        let wrapped = Expr::Paren(
            Box::new(Expr::Paren(Box::new(inner), Span::DUMMY)),
            Span::DUMMY,
        );
        match wrapped.unparen() {
            Expr::IntLit(3, _) => {}
            other => panic!("expected int literal, got {other:?}"),
        }
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert_eq!(BinOp::IntDiv.as_str(), "div");
    }
}
