//! Affine expressions over integer module parameters.
//!
//! Subrange bounds in PS are expressions like `M+1` or `maxK`; the scheduler
//! and the hyperplane transform need to *reason* about them symbolically
//! (e.g. "is the subscript `maxK` equal to the upper bound of dimension K?",
//! Section 3.4 rule 2). [`Affine`] is a linear form `c + Σ kᵢ·pᵢ` over
//! parameter symbols, with exact comparison where provable.

use ps_support::{FxHashMap, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// An affine form `konst + Σ coeff·param` with `i64` coefficients.
///
/// Terms are kept sorted by symbol so equality and hashing are structural.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Affine {
    /// Parameter terms with nonzero coefficients, sorted by symbol.
    terms: BTreeMap<Symbol, i64>,
    konst: i64,
}

impl Affine {
    /// The constant form `k`.
    pub fn constant(k: i64) -> Affine {
        Affine {
            terms: BTreeMap::new(),
            konst: k,
        }
    }

    /// The form `1·param`.
    pub fn param(p: Symbol) -> Affine {
        let mut terms = BTreeMap::new();
        terms.insert(p, 1);
        Affine { terms, konst: 0 }
    }

    /// True when the form is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, if [`Affine::is_constant`].
    pub fn as_constant(&self) -> Option<i64> {
        self.is_constant().then_some(self.konst)
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.konst
    }

    /// Iterate `(param, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (Symbol, i64)> + '_ {
        self.terms.iter().map(|(&s, &c)| (s, c))
    }

    /// Parameters appearing with nonzero coefficient.
    pub fn params(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.terms.keys().copied()
    }

    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.konst += other.konst;
        for (&p, &c) in &other.terms {
            let e = out.terms.entry(p).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(&p);
            }
        }
        out
    }

    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            terms: self.terms.iter().map(|(&p, &c)| (p, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    pub fn add_const(&self, k: i64) -> Affine {
        let mut out = self.clone();
        out.konst += k;
        out
    }

    /// Multiply two affine forms when the result stays affine (at least one
    /// side constant). Returns `None` for `param * param`.
    pub fn mul(&self, other: &Affine) -> Option<Affine> {
        if let Some(k) = self.as_constant() {
            return Some(other.scale(k));
        }
        if let Some(k) = other.as_constant() {
            return Some(self.scale(k));
        }
        None
    }

    /// `self - other` when the difference is a provable constant.
    ///
    /// This is the workhorse comparison: `maxK - maxK = 0` proves the
    /// upper-bound rule, `(M+1) - 0` proves range widths, etc.
    pub fn const_difference(&self, other: &Affine) -> Option<i64> {
        self.sub(other).as_constant()
    }

    /// Evaluate under a parameter environment. `None` if a parameter is
    /// missing from `env`.
    /// Compact single-token rendering for diagnostics and reports:
    /// `maxK-1`, `2`, `n+M+3` — no spaces, no `*` on unit coefficients
    /// (contrast [`fmt::Display`], which spaces terms for source-level
    /// printing).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        for (sym, c) in self.terms() {
            let name = sym.as_str();
            match c {
                0 => {}
                1 if out.is_empty() => out.push_str(name),
                1 => out.push_str(&format!("+{name}")),
                -1 => out.push_str(&format!("-{name}")),
                c if c < 0 => out.push_str(&format!("{c}{name}")),
                c if out.is_empty() => out.push_str(&format!("{c}{name}")),
                c => out.push_str(&format!("+{c}{name}")),
            }
        }
        let k = self.constant_part();
        if out.is_empty() {
            return k.to_string();
        }
        match k {
            0 => {}
            k if k > 0 => out.push_str(&format!("+{k}")),
            k => out.push_str(&k.to_string()),
        }
        out
    }

    pub fn eval(&self, env: &FxHashMap<Symbol, i64>) -> Option<i64> {
        let mut total = self.konst;
        for (&p, &c) in &self.terms {
            total += c * env.get(&p)?;
        }
        Some(total)
    }
}

impl fmt::Debug for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (&p, &c) in &self.terms {
            if c == 0 {
                continue;
            }
            if wrote {
                write!(f, "{}", if c > 0 { " + " } else { " - " })?;
            } else if c < 0 {
                write!(f, "-")?;
            }
            let mag = c.unsigned_abs();
            if mag != 1 {
                write!(f, "{mag}*")?;
            }
            write!(f, "{p}")?;
            wrote = true;
        }
        if self.konst != 0 || !wrote {
            if wrote {
                write!(
                    f,
                    " {} {}",
                    if self.konst >= 0 { "+" } else { "-" },
                    self.konst.unsigned_abs()
                )?;
            } else {
                write!(f, "{}", self.konst)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn arithmetic() {
        let m = Affine::param(sym("M"));
        let m_plus_1 = m.add_const(1);
        let two_m = m.scale(2);
        assert_eq!(m_plus_1.sub(&m).as_constant(), Some(1));
        assert_eq!(two_m.sub(&m), m);
        assert_eq!(m.sub(&m), Affine::constant(0));
    }

    #[test]
    fn cancellation_removes_terms() {
        let m = Affine::param(sym("M"));
        let zero = m.sub(&m);
        assert!(zero.is_constant());
        assert_eq!(zero.terms().count(), 0);
    }

    #[test]
    fn mul_rules() {
        let m = Affine::param(sym("M"));
        let k3 = Affine::constant(3);
        assert_eq!(m.mul(&k3), Some(m.scale(3)));
        assert_eq!(k3.mul(&m), Some(m.scale(3)));
        assert_eq!(m.mul(&m), None, "param * param is not affine");
    }

    #[test]
    fn const_difference_proves_equality() {
        let a = Affine::param(sym("maxK"));
        let b = Affine::param(sym("maxK"));
        assert_eq!(a.const_difference(&b), Some(0));
        let c = Affine::param(sym("M"));
        assert_eq!(a.const_difference(&c), None, "different params: unprovable");
    }

    #[test]
    fn eval_under_env() {
        let mut env = FxHashMap::default();
        env.insert(sym("M"), 8);
        let e = Affine::param(sym("M")).scale(2).add_const(1);
        assert_eq!(e.eval(&env), Some(17));
        let missing = Affine::param(sym("Q"));
        assert_eq!(missing.eval(&env), None);
    }

    #[test]
    fn display_formatting() {
        let m = Affine::param(sym("M"));
        assert_eq!(format!("{}", m.add_const(1)), "M + 1");
        assert_eq!(format!("{}", m.scale(2).add_const(-3)), "2*M - 3");
        assert_eq!(format!("{}", Affine::constant(0)), "0");
        assert_eq!(format!("{}", m.scale(-1)), "-M");
    }
}
