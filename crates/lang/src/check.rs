//! Semantic analysis: name resolution, type checking, and lowering of the
//! AST to [`crate::hir`].
//!
//! Processing order within a module (PS allows forward references in the
//! header — `newA: array[I,J] of real` names subranges declared later):
//!
//! 1. register scalar-typed parameters (their values appear in bounds),
//! 2. process `type` declarations in order (bounds may use scalar params),
//! 3. resolve parameter/result types (subranges now known),
//! 4. process `var` declarations,
//! 5. lower equations (binding index variables, expanding implicit slices,
//!    classifying subscripts, inserting widenings),
//! 6. run the definition-region analysis ([`crate::region`]).

use crate::ast::{self, BinOp, Expr, Module, TypeExpr, UnOp};
use crate::bounds::Affine;
use crate::hir::*;
use crate::region;
use crate::types::*;
use ps_support::idx::IndexVec;
use ps_support::{Diagnostic, DiagnosticSink, FxHashMap, Span, Symbol};

/// Check every module of a program. Modules that fail produce `None` in the
/// result vector (diagnostics explain why).
pub fn check_program(program: &ast::Program, sink: &DiagnosticSink) -> Vec<Option<HirModule>> {
    program
        .modules
        .iter()
        .map(|m| check_module(m, sink))
        .collect()
}

/// Check a single module. Returns `None` when errors were emitted.
pub fn check_module(module: &Module, sink: &DiagnosticSink) -> Option<HirModule> {
    Checker::new(sink).run(module)
}

/// What a name refers to at module scope.
#[derive(Clone, Copy, Debug)]
enum NameDef {
    Data(DataId),
    TypeSubrange(SubrangeId),
    TypeEnum(EnumId),
    TypeRecord(RecordId),
    TypeScalar(ScalarTy),
    EnumVariant(EnumId, usize),
}

struct Checker<'a> {
    sink: &'a DiagnosticSink,
    data: IndexVec<DataId, DataItem>,
    subranges: IndexVec<SubrangeId, Subrange>,
    enums: IndexVec<EnumId, EnumDef>,
    records: IndexVec<RecordId, RecordDef>,
    names: FxHashMap<Symbol, NameDef>,
    /// Scalar int parameters usable inside affine bounds.
    affine_params: ps_support::FxHashSet<Symbol>,
    /// Named array types (structural aliases): `Grid = array [I,J] of real`.
    array_aliases: FxHashMap<Symbol, Ty>,
}

impl<'a> Checker<'a> {
    fn new(sink: &'a DiagnosticSink) -> Self {
        let mut names = FxHashMap::default();
        for (n, t) in [
            ("int", ScalarTy::Int),
            ("real", ScalarTy::Real),
            ("bool", ScalarTy::Bool),
            ("char", ScalarTy::Char),
        ] {
            names.insert(Symbol::intern(n), NameDef::TypeScalar(t));
        }
        Checker {
            sink,
            data: IndexVec::new(),
            subranges: IndexVec::new(),
            enums: IndexVec::new(),
            records: IndexVec::new(),
            names,
            affine_params: Default::default(),
            array_aliases: FxHashMap::default(),
        }
    }

    fn error(&self, code: &'static str, msg: impl Into<String>, span: Span) {
        self.sink.emit(Diagnostic::error(code, msg).with_span(span));
    }

    fn warn(&self, code: &'static str, msg: impl Into<String>, span: Span) {
        self.sink
            .emit(Diagnostic::warning(code, msg).with_span(span));
    }

    fn define_name(&mut self, name: Symbol, def: NameDef, span: Span) {
        if self.names.insert(name, def).is_some() {
            self.error(
                "E0201",
                format!("`{name}` is declared more than once"),
                span,
            );
        }
    }

    fn run(mut self, module: &Module) -> Option<HirModule> {
        let errors_before = self.sink.error_count();

        // Pass 1: scalar params first — their names appear in type bounds.
        let mut deferred_params: Vec<(Symbol, Span, &TypeExpr, DataKind)> = Vec::new();
        for p in &module.params {
            for (name, nspan) in &p.names {
                if let TypeExpr::Named(tn, _) = &p.ty {
                    if let Some(NameDef::TypeScalar(s)) = self.names.get(tn).copied() {
                        let id = self.data.push(DataItem {
                            name: *name,
                            kind: DataKind::Param,
                            ty: Ty::Scalar(s),
                            span: *nspan,
                        });
                        self.define_name(*name, NameDef::Data(id), *nspan);
                        if s == ScalarTy::Int {
                            self.affine_params.insert(*name);
                        }
                        continue;
                    }
                }
                deferred_params.push((*name, *nspan, &p.ty, DataKind::Param));
            }
        }
        for r in &module.results {
            for (name, nspan) in &r.names {
                deferred_params.push((*name, *nspan, &r.ty, DataKind::Result));
            }
        }

        // Pass 2: type declarations, in order.
        for td in module.type_decls() {
            self.type_decl(td);
        }

        // Pass 3: deferred parameter/result types.
        for (name, nspan, te, kind) in deferred_params {
            let ty = self.resolve_value_type(te);
            let id = self.data.push(DataItem {
                name,
                kind,
                ty,
                span: nspan,
            });
            self.define_name(name, NameDef::Data(id), nspan);
        }

        // Pass 4: var declarations.
        for vd in module.var_decls() {
            let ty = self.resolve_value_type(&vd.ty);
            for (name, nspan) in &vd.names {
                let id = self.data.push(DataItem {
                    name: *name,
                    kind: DataKind::Local,
                    ty: ty.clone(),
                    span: *nspan,
                });
                self.define_name(*name, NameDef::Data(id), *nspan);
            }
        }

        // Preserve declaration order (scalar params were registered first
        // for bound resolution, but the module signature must follow the
        // source).
        let mut params: Vec<DataId> = Vec::new();
        for p in &module.params {
            for (name, _) in &p.names {
                if let Some(NameDef::Data(id)) = self.names.get(name) {
                    if self.data[*id].kind == DataKind::Param {
                        params.push(*id);
                    }
                }
            }
        }
        let results: Vec<DataId> = self
            .data
            .iter_enumerated()
            .filter(|(_, d)| d.kind == DataKind::Result)
            .map(|(id, _)| id)
            .collect();

        // Pass 5: equations.
        let mut equations: IndexVec<EqId, Equation> = IndexVec::new();
        for (i, eq) in module.equations().enumerate() {
            if let Some(lowered) = self.equation(eq, i + 1) {
                equations.push(lowered);
            }
        }

        let hir = HirModule {
            name: module.name,
            data: self.data,
            params,
            results,
            subranges: self.subranges,
            enums: self.enums,
            records: self.records,
            equations,
        };

        // Pass 6: single-assignment / coverage analysis.
        region::check_regions(&hir, self.sink);

        if self.sink.error_count() > errors_before {
            None
        } else {
            Some(hir)
        }
    }

    // ---- types ---------------------------------------------------------

    fn type_decl(&mut self, td: &ast::TypeDecl) {
        match &td.ty {
            TypeExpr::Subrange { lo, hi, span } => {
                // `I, J = 0 .. M+1` declares *distinct* subranges with equal
                // bounds: I and J are separate index variables in equations.
                let lo_a = self.require_affine(lo);
                let hi_a = self.require_affine(hi);
                for (name, nspan) in &td.names {
                    let id = self.subranges.push(Subrange {
                        name: Some(*name),
                        lo: lo_a.clone(),
                        hi: hi_a.clone(),
                        span: *span,
                    });
                    self.define_name(*name, NameDef::TypeSubrange(id), *nspan);
                }
            }
            TypeExpr::Enum { variants, span } => {
                if td.names.len() != 1 {
                    self.error(
                        "E0202",
                        "an enumeration declaration must introduce exactly one name",
                        td.span,
                    );
                }
                let (name, nspan) = td.names[0];
                let id = self.enums.push(EnumDef {
                    name,
                    variants: variants.iter().map(|(v, _)| *v).collect(),
                    span: *span,
                });
                self.define_name(name, NameDef::TypeEnum(id), nspan);
                for (idx, (v, vspan)) in variants.iter().enumerate() {
                    self.define_name(*v, NameDef::EnumVariant(id, idx), *vspan);
                }
            }
            TypeExpr::Record { fields, span } => {
                if td.names.len() != 1 {
                    self.error(
                        "E0203",
                        "a record declaration must introduce exactly one name",
                        td.span,
                    );
                }
                let (name, nspan) = td.names[0];
                let mut rfields = Vec::new();
                for (fname, fty, fspan) in fields {
                    let ty = self.resolve_value_type(fty);
                    if ty.rank() != 0 {
                        self.error(
                            "E0204",
                            "record fields must be scalar-typed in this implementation",
                            *fspan,
                        );
                    }
                    if rfields.iter().any(|(n, _)| *n == *fname) {
                        self.error("E0205", format!("duplicate record field `{fname}`"), *fspan);
                    }
                    rfields.push((*fname, ty));
                }
                let id = self.records.push(RecordDef {
                    name,
                    fields: rfields,
                    span: *span,
                });
                self.define_name(name, NameDef::TypeRecord(id), nspan);
            }
            TypeExpr::Named(alias_of, span) => {
                // Aliases: `T = int;` or `L = I;`
                let target = self.names.get(alias_of).copied();
                for (name, nspan) in &td.names {
                    match target {
                        Some(NameDef::TypeScalar(_))
                        | Some(NameDef::TypeSubrange(_))
                        | Some(NameDef::TypeEnum(_))
                        | Some(NameDef::TypeRecord(_)) => {
                            self.define_name(*name, target.unwrap(), *nspan);
                        }
                        _ => {
                            self.error(
                                "E0206",
                                format!("`{alias_of}` does not name a type"),
                                *span,
                            );
                        }
                    }
                }
            }
            TypeExpr::Array { .. } => {
                // Named array types: resolve once, alias each name to the
                // same structure by declaring anonymous subranges up front.
                let ty = self.resolve_value_type(&td.ty);
                for (name, nspan) in &td.names {
                    // Array type aliases are stored as data-free "types" via
                    // a synthetic record-less approach: reuse NameDef by
                    // declaring a named record is wrong, so instead we store
                    // them in a side table keyed by name.
                    self.array_aliases.insert(*name, ty.clone());
                    let _ = nspan;
                }
            }
        }
    }

    /// Resolve a type expression in *value position* (variable/param/result
    /// declarations). Subranges used as value types behave as `int`.
    fn resolve_value_type(&mut self, te: &TypeExpr) -> Ty {
        match te {
            TypeExpr::Named(name, span) => match self.names.get(name).copied() {
                Some(NameDef::TypeScalar(s)) => Ty::Scalar(s),
                Some(NameDef::TypeSubrange(_)) => Ty::Scalar(ScalarTy::Int),
                Some(NameDef::TypeEnum(id)) => Ty::Enum(id),
                Some(NameDef::TypeRecord(id)) => Ty::Record(id),
                _ => {
                    if let Some(alias) = self.array_aliases.get(name) {
                        return alias.clone();
                    }
                    self.error("E0207", format!("unknown type `{name}`"), *span);
                    Ty::Error
                }
            },
            TypeExpr::Subrange { .. } => Ty::Scalar(ScalarTy::Int),
            TypeExpr::Array {
                index_specs,
                elem,
                span,
            } => {
                let mut dims = Vec::new();
                for spec in index_specs {
                    if let Some(id) = self.resolve_index_spec(spec) {
                        dims.push(id);
                    } else {
                        return Ty::Error;
                    }
                }
                // Flatten nested arrays: `array [..] of array [..] of real`.
                match self.resolve_value_type(elem) {
                    Ty::Array {
                        dims: inner_dims,
                        elem: inner_elem,
                    } => {
                        dims.extend(inner_dims);
                        Ty::Array {
                            dims,
                            elem: inner_elem,
                        }
                    }
                    Ty::Scalar(s) => Ty::Array { dims, elem: s },
                    Ty::Error => Ty::Error,
                    other => {
                        self.error(
                            "E0208",
                            format!("array elements must be scalar, found {other}"),
                            *span,
                        );
                        Ty::Error
                    }
                }
            }
            TypeExpr::Record { .. } | TypeExpr::Enum { .. } => {
                self.error(
                    "E0209",
                    "record and enumeration types must be declared in a `type` section",
                    te.span(),
                );
                Ty::Error
            }
        }
    }

    /// Resolve an array index spec to a subrange id. Inline `lo..hi` specs
    /// create anonymous subranges.
    fn resolve_index_spec(&mut self, te: &TypeExpr) -> Option<SubrangeId> {
        match te {
            TypeExpr::Named(name, span) => match self.names.get(name).copied() {
                Some(NameDef::TypeSubrange(id)) => Some(id),
                _ => {
                    self.error(
                        "E0210",
                        format!("array dimension `{name}` must name a subrange type"),
                        *span,
                    );
                    None
                }
            },
            TypeExpr::Subrange { lo, hi, span } => {
                let lo_a = self.require_affine(lo);
                let hi_a = self.require_affine(hi);
                Some(self.subranges.push(Subrange {
                    name: None,
                    lo: lo_a,
                    hi: hi_a,
                    span: *span,
                }))
            }
            other => {
                self.error("E0211", "array dimensions must be subranges", other.span());
                None
            }
        }
    }

    // ---- affine bound expressions ---------------------------------------

    /// Fold an AST expression into an affine form over scalar int params.
    fn affine_of(&self, e: &Expr) -> Option<Affine> {
        match e.unparen() {
            Expr::IntLit(v, _) => Some(Affine::constant(*v)),
            Expr::Var(name, _) => {
                if self.affine_params.contains(name) {
                    Some(Affine::param(*name))
                } else {
                    None
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.affine_of(lhs)?;
                let r = self.affine_of(rhs)?;
                match op {
                    BinOp::Add => Some(l.add(&r)),
                    BinOp::Sub => Some(l.sub(&r)),
                    BinOp::Mul => l.mul(&r),
                    _ => None,
                }
            }
            Expr::Unary {
                op: UnOp::Neg,
                operand,
                ..
            } => Some(self.affine_of(operand)?.scale(-1)),
            _ => None,
        }
    }

    fn require_affine(&self, e: &Expr) -> Affine {
        match self.affine_of(e) {
            Some(a) => a,
            None => {
                self.error(
                    "E0212",
                    "bound must be an affine expression over integer parameters",
                    e.span(),
                );
                Affine::constant(0)
            }
        }
    }

    // ---- equations -------------------------------------------------------

    fn equation(&mut self, eq: &ast::EquationDecl, number: usize) -> Option<Equation> {
        let label = format!("eq.{number}");
        let lhs_name = eq.lhs.name;
        let lhs_id = match self.names.get(&lhs_name).copied() {
            Some(NameDef::Data(id)) => id,
            _ => {
                self.error(
                    "E0220",
                    format!("`{lhs_name}` is not a variable or result"),
                    eq.lhs.name_span,
                );
                return None;
            }
        };
        let lhs_item = self.data[lhs_id].clone();
        if lhs_item.kind == DataKind::Param {
            self.error(
                "E0221",
                format!("cannot define input parameter `{lhs_name}`"),
                eq.lhs.name_span,
            );
            return None;
        }

        // Record-field target.
        let mut lhs_field = None;
        if let Some((fname, fspan)) = eq.lhs.field {
            match &lhs_item.ty {
                Ty::Record(rid) => match self.records[*rid].field_index(fname) {
                    Some(idx) => lhs_field = Some(idx),
                    None => {
                        self.error(
                            "E0222",
                            format!("record `{lhs_name}` has no field `{fname}`"),
                            fspan,
                        );
                        return None;
                    }
                },
                _ => {
                    self.error("E0223", format!("`{lhs_name}` is not a record"), fspan);
                    return None;
                }
            }
        } else if matches!(lhs_item.ty, Ty::Record(_)) {
            self.error(
                "E0224",
                format!(
                    "whole-record assignment to `{lhs_name}` is not supported; define each field"
                ),
                eq.lhs.span,
            );
            return None;
        }

        let dims: Vec<SubrangeId> = lhs_item.dims().to_vec();
        if eq.lhs.subscripts.len() > dims.len() {
            self.error(
                "E0225",
                format!(
                    "`{lhs_name}` has {} dimension(s) but {} subscripts were given",
                    dims.len(),
                    eq.lhs.subscripts.len()
                ),
                eq.lhs.span,
            );
            return None;
        }

        // Bind index variables from explicit LHS subscripts; synthesize
        // implicit ones for the remaining (sliced) dimensions.
        let mut ivs: IndexVec<IvId, IndexVar> = IndexVec::new();
        let mut iv_names: FxHashMap<Symbol, IvId> = FxHashMap::default();
        let mut lhs_subs: Vec<LhsSub> = Vec::new();

        for (dim, sub) in eq.lhs.subscripts.iter().enumerate() {
            match sub.unparen() {
                Expr::Var(name, span) => match self.names.get(name).copied() {
                    Some(NameDef::TypeSubrange(sr)) => {
                        let display = if iv_names.contains_key(name) {
                            let n2 = Symbol::intern(&format!("{name}#{}", dim + 1));
                            self.warn(
                                "E0226",
                                format!(
                                    "index variable `{name}` appears twice on the left-hand side; \
                                     the second occurrence is renamed `{n2}` and cannot be \
                                     referenced on the right-hand side"
                                ),
                                *span,
                            );
                            n2
                        } else {
                            *name
                        };
                        let iv = ivs.push(IndexVar {
                            name: display,
                            subrange: sr,
                            implicit: false,
                        });
                        iv_names.entry(*name).or_insert(iv);
                        self.check_dim_compat(sr, dims[dim], *span);
                        lhs_subs.push(LhsSub::Var(iv));
                    }
                    _ => match self.affine_of(sub) {
                        Some(a) => lhs_subs.push(LhsSub::Const(a)),
                        None => {
                            self.error(
                                "E0227",
                                format!(
                                    "left-hand subscript must be a subrange name or a constant \
                                         expression over parameters, found `{name}`"
                                ),
                                *span,
                            );
                            return None;
                        }
                    },
                },
                other => match self.affine_of(other) {
                    Some(a) => lhs_subs.push(LhsSub::Const(a)),
                    None => {
                        self.error(
                            "E0228",
                            "left-hand subscript must be a subrange name or a constant \
                             expression over parameters",
                            other.span(),
                        );
                        return None;
                    }
                },
            }
        }

        // Implicit dimensions: synthesize index variables named after the
        // dimension subrange (the paper's `A[1] = InitialA` expansion).
        for (dim, &sr) in dims.iter().enumerate().skip(eq.lhs.subscripts.len()) {
            let base_name = self.subranges[sr]
                .name
                .unwrap_or_else(|| Symbol::intern(&format!("i{dim}")));
            let display = if iv_names.contains_key(&base_name) {
                Symbol::intern(&format!("{base_name}#{}", dim + 1))
            } else {
                base_name
            };
            let iv = ivs.push(IndexVar {
                name: display,
                subrange: sr,
                implicit: true,
            });
            iv_names.entry(base_name).or_insert(iv);
            lhs_subs.push(LhsSub::Var(iv));
        }

        // Padding vars for partial RHS reads: trailing LHS Var dims.
        let pad_ivs: Vec<IvId> = lhs_subs
            .iter()
            .filter_map(|s| match s {
                LhsSub::Var(iv) => Some(*iv),
                LhsSub::Const(_) => None,
            })
            .collect();

        let mut ecx = ExprCx {
            chk: self,
            ivs: &mut ivs,
            iv_names: &iv_names,
            pad_ivs: &pad_ivs,
        };
        let (mut rhs, rhs_ty) = ecx.lower(&eq.rhs)?;

        // Expected type of the defined element.
        let expected = match lhs_field {
            Some(idx) => match &lhs_item.ty {
                Ty::Record(rid) => self.records[*rid].fields[idx].1.clone(),
                _ => Ty::Error,
            },
            None => match &lhs_item.ty {
                Ty::Array { elem, .. } => Ty::Scalar(*elem),
                other => other.clone(),
            },
        };
        if expected == Ty::REAL && rhs_ty == Ty::INT {
            rhs = HExpr::CastReal(Box::new(rhs));
        } else if !expected.assignable_from(&rhs_ty) {
            self.error(
                "E0229",
                format!("equation defines `{lhs_name}` of type {expected} with a value of type {rhs_ty}"),
                eq.span,
            );
        }

        Some(Equation {
            label,
            lhs: lhs_id,
            lhs_field,
            lhs_subs,
            ivs,
            rhs,
            span: eq.span,
        })
    }

    /// Warn when an index variable's subrange and the array dimension's
    /// subrange are not provably the same interval.
    fn check_dim_compat(&self, iv_sr: SubrangeId, dim_sr: SubrangeId, span: Span) {
        if iv_sr == dim_sr {
            return;
        }
        let a = &self.subranges[iv_sr];
        let b = &self.subranges[dim_sr];
        // Subset is fine (K = 2..maxK indexing dimension 1..maxK); only
        // provably-out-of-range is an error.
        let lo_ok = a.lo.const_difference(&b.lo).map(|d| d >= 0);
        let hi_ok = a.hi.const_difference(&b.hi).map(|d| d <= 0);
        if lo_ok == Some(false) || hi_ok == Some(false) {
            self.error(
                "E0230",
                format!(
                    "index variable range {}..{} exceeds dimension range {}..{}",
                    a.lo, a.hi, b.lo, b.hi
                ),
                span,
            );
        } else if lo_ok.is_none() || hi_ok.is_none() {
            self.warn(
                "E0231",
                format!(
                    "cannot prove index range {}..{} fits dimension range {}..{}",
                    a.lo, a.hi, b.lo, b.hi
                ),
                span,
            );
        }
    }
}

/// Expression lowering context: one equation's index variables plus the
/// enclosing checker.
struct ExprCx<'a, 'b> {
    chk: &'a mut Checker<'b>,
    ivs: &'a mut IndexVec<IvId, IndexVar>,
    iv_names: &'a FxHashMap<Symbol, IvId>,
    pad_ivs: &'a [IvId],
}

impl<'a, 'b> ExprCx<'a, 'b> {
    /// Lower an expression; returns the HIR node and its type.
    fn lower(&mut self, e: &Expr) -> Option<(HExpr, Ty)> {
        match e {
            Expr::IntLit(v, _) => Some((HExpr::Int(*v), Ty::INT)),
            Expr::RealLit(v, _) => Some((HExpr::Real(*v), Ty::REAL)),
            Expr::BoolLit(v, _) => Some((HExpr::Bool(*v), Ty::BOOL)),
            Expr::CharLit(c, _) => Some((HExpr::Char(*c), Ty::Scalar(ScalarTy::Char))),
            Expr::Paren(inner, _) => self.lower(inner),
            Expr::Var(name, span) => self.lower_var(*name, *span),
            Expr::Field { base, field, span } => self.lower_field(base, *field, *span),
            Expr::Subscript {
                base,
                subscripts,
                span,
            } => self.lower_subscripted(base, subscripts, *span),
            Expr::Call {
                name,
                name_span,
                args,
                ..
            } => self.lower_call(*name, *name_span, args),
            Expr::Unary { op, operand, span } => {
                let (inner, ty) = self.lower(operand)?;
                match op {
                    UnOp::Neg => {
                        if !ty.is_numeric() {
                            self.chk
                                .error("E0240", format!("cannot negate {ty}"), *span);
                        }
                        Some((
                            HExpr::Unary {
                                op: UnOp::Neg,
                                operand: Box::new(inner),
                            },
                            ty,
                        ))
                    }
                    UnOp::Not => {
                        if ty != Ty::BOOL && !ty.is_error() {
                            self.chk.error(
                                "E0241",
                                format!("`not` requires bool, found {ty}"),
                                *span,
                            );
                        }
                        Some((
                            HExpr::Unary {
                                op: UnOp::Not,
                                operand: Box::new(inner),
                            },
                            Ty::BOOL,
                        ))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, span } => self.lower_binary(*op, lhs, rhs, *span),
            Expr::If { arms, else_, span } => {
                let mut harms = Vec::new();
                let mut lowered_values: Vec<HExpr> = Vec::new();
                let mut value_tys: Vec<Ty> = Vec::new();
                for (cond, value) in arms {
                    let (c, cty) = self.lower(cond)?;
                    if cty != Ty::BOOL && !cty.is_error() {
                        self.chk.error(
                            "E0242",
                            format!("`if` condition must be bool, found {cty}"),
                            cond.span(),
                        );
                    }
                    let (v, vty) = self.lower(value)?;
                    harms.push(c);
                    lowered_values.push(v);
                    value_tys.push(vty);
                }
                let (ev, ety) = self.lower(else_)?;
                lowered_values.push(ev);
                value_tys.push(ety);

                // Unify arm types with int→real widening.
                let result_ty = if value_tys.contains(&Ty::REAL) {
                    Ty::REAL
                } else {
                    value_tys[0].clone()
                };
                for (v, t) in lowered_values.iter_mut().zip(&value_tys) {
                    if result_ty == Ty::REAL && *t == Ty::INT {
                        let taken = std::mem::replace(v, HExpr::Bool(false));
                        *v = HExpr::CastReal(Box::new(taken));
                    } else if !result_ty.assignable_from(t) {
                        self.chk.error(
                            "E0243",
                            format!("`if` arms have incompatible types {result_ty} and {t}"),
                            *span,
                        );
                    }
                }
                let else_v = Box::new(lowered_values.pop().expect("else arm"));
                let arms_v: Vec<(HExpr, HExpr)> = harms.into_iter().zip(lowered_values).collect();
                Some((
                    HExpr::If {
                        arms: arms_v,
                        else_: else_v,
                    },
                    result_ty,
                ))
            }
        }
    }

    fn lower_var(&mut self, name: Symbol, span: Span) -> Option<(HExpr, Ty)> {
        if let Some(&iv) = self.iv_names.get(&name) {
            return Some((HExpr::Iv(iv), Ty::INT));
        }
        match self.chk.names.get(&name).copied() {
            Some(NameDef::Data(id)) => {
                let item = &self.chk.data[id];
                match &item.ty {
                    Ty::Array { .. } => {
                        // Bare array read = fully sliced: pad all dims.
                        self.pad_read(id, &[], span)
                    }
                    Ty::Record(_) => {
                        self.chk.error(
                            "E0244",
                            format!("record `{name}` must be read through a field"),
                            span,
                        );
                        None
                    }
                    ty => Some((HExpr::ReadScalar(id), ty.clone())),
                }
            }
            Some(NameDef::EnumVariant(eid, idx)) => {
                Some((HExpr::EnumConst(eid, idx), Ty::Enum(eid)))
            }
            Some(NameDef::TypeSubrange(_)) => {
                self.chk.error(
                    "E0245",
                    format!(
                        "index variable `{name}` is not bound by the left-hand side of this equation"
                    ),
                    span,
                );
                None
            }
            _ => {
                self.chk
                    .error("E0246", format!("unknown name `{name}`"), span);
                None
            }
        }
    }

    fn lower_field(&mut self, base: &Expr, field: Symbol, span: Span) -> Option<(HExpr, Ty)> {
        match base.unparen() {
            Expr::Var(name, vspan) => match self.chk.names.get(name).copied() {
                Some(NameDef::Data(id)) => match &self.chk.data[id].ty {
                    Ty::Record(rid) => {
                        let rec = &self.chk.records[*rid];
                        match rec.field_index(field) {
                            Some(idx) => {
                                let fty = rec.fields[idx].1.clone();
                                Some((HExpr::ReadField(id, idx), fty))
                            }
                            None => {
                                self.chk.error(
                                    "E0247",
                                    format!("record `{name}` has no field `{field}`"),
                                    span,
                                );
                                None
                            }
                        }
                    }
                    other => {
                        self.chk.error(
                            "E0248",
                            format!("`{name}` of type {other} has no fields"),
                            *vspan,
                        );
                        None
                    }
                },
                _ => {
                    self.chk
                        .error("E0246", format!("unknown name `{name}`"), *vspan);
                    None
                }
            },
            other => {
                self.chk.error(
                    "E0249",
                    "field access is only supported on record variables",
                    other.span(),
                );
                None
            }
        }
    }

    fn lower_subscripted(
        &mut self,
        base: &Expr,
        subscripts: &[Expr],
        span: Span,
    ) -> Option<(HExpr, Ty)> {
        let Expr::Var(name, vspan) = base.unparen() else {
            self.chk.error(
                "E0250",
                "subscripts may only be applied to array variables",
                base.span(),
            );
            return None;
        };
        let Some(NameDef::Data(id)) = self.chk.names.get(name).copied() else {
            self.chk
                .error("E0246", format!("unknown name `{name}`"), *vspan);
            return None;
        };
        let rank = self.chk.data[id].dims().len();
        if rank == 0 {
            self.chk.error(
                "E0251",
                format!("`{name}` is not an array and cannot be subscripted"),
                span,
            );
            return None;
        }
        if subscripts.len() > rank {
            self.chk.error(
                "E0252",
                format!("`{name}` has {rank} dimension(s), got {}", subscripts.len()),
                span,
            );
            return None;
        }
        let mut subs = Vec::with_capacity(rank);
        for s in subscripts {
            subs.push(self.lower_subscript(s)?);
        }
        self.pad_read_with(id, subs, span)
    }

    /// Pad a partial read with this equation's trailing LHS index variables,
    /// mirroring the slice expansion done on the left-hand side.
    fn pad_read(&mut self, id: DataId, given: &[SubscriptExpr], span: Span) -> Option<(HExpr, Ty)> {
        self.pad_read_with(id, given.to_vec(), span)
    }

    fn pad_read_with(
        &mut self,
        id: DataId,
        mut subs: Vec<SubscriptExpr>,
        span: Span,
    ) -> Option<(HExpr, Ty)> {
        let item = self.chk.data[id].clone();
        let rank = item.dims().len();
        let missing = rank - subs.len();
        if missing > 0 {
            if self.pad_ivs.len() < missing {
                self.chk.error(
                    "E0253",
                    format!(
                        "cannot expand slice read of `{}`: equation binds {} index variable(s) \
                         but {missing} are needed",
                        item.name,
                        self.pad_ivs.len()
                    ),
                    span,
                );
                return None;
            }
            let given = subs.len();
            let pads = &self.pad_ivs[self.pad_ivs.len() - missing..];
            for (k, &iv) in pads.iter().enumerate() {
                let target_dim = item.dims()[given + k];
                let iv_sr = self.ivs[iv].subrange;
                self.chk.check_dim_compat(iv_sr, target_dim, span);
                subs.push(SubscriptExpr::Var(iv));
            }
        }
        let elem = match &item.ty {
            Ty::Array { elem, .. } => Ty::Scalar(*elem),
            _ => Ty::Error,
        };
        Some((
            HExpr::ReadArray {
                array: id,
                subs,
                span,
            },
            elem,
        ))
    }

    /// Lower one subscript expression and classify it (Figure 2).
    fn lower_subscript(&mut self, e: &Expr) -> Option<SubscriptExpr> {
        if let Some(aff) = self.affine_ix_of(e) {
            return Some(SubscriptExpr::from_affine(aff));
        }
        // Non-affine: lower as a dynamic expression; must be int-typed.
        let (h, ty) = self.lower(e)?;
        if ty != Ty::INT && !ty.is_error() {
            self.chk.error(
                "E0254",
                format!("subscript must be an integer expression, found {ty}"),
                e.span(),
            );
        }
        Some(SubscriptExpr::Dynamic(Box::new(h)))
    }

    /// Fold an expression into an affine combination of index variables and
    /// parameters, when possible.
    fn affine_ix_of(&self, e: &Expr) -> Option<AffineIx> {
        match e.unparen() {
            Expr::IntLit(v, _) => Some(AffineIx::constant(Affine::constant(*v))),
            Expr::Var(name, _) => {
                if let Some(&iv) = self.iv_names.get(name) {
                    return Some(AffineIx::from_iv(iv));
                }
                if self.chk.affine_params.contains(name) {
                    return Some(AffineIx::constant(Affine::param(*name)));
                }
                None
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.affine_ix_of(lhs)?;
                let r = self.affine_ix_of(rhs)?;
                match op {
                    BinOp::Add => Some(l.add(&r)),
                    BinOp::Sub => Some(l.sub(&r)),
                    BinOp::Mul => {
                        if l.is_constant() {
                            if let Some(k) = l.rest.as_constant() {
                                return Some(r.scale(k));
                            }
                        }
                        if r.is_constant() {
                            if let Some(k) = r.rest.as_constant() {
                                return Some(l.scale(k));
                            }
                        }
                        None
                    }
                    _ => None,
                }
            }
            Expr::Unary {
                op: UnOp::Neg,
                operand,
                ..
            } => Some(self.affine_ix_of(operand)?.scale(-1)),
            _ => None,
        }
    }

    fn lower_call(&mut self, name: Symbol, name_span: Span, args: &[Expr]) -> Option<(HExpr, Ty)> {
        let Some(builtin) = Builtin::lookup(name.as_str()) else {
            self.chk.error(
                "E0255",
                format!(
                    "unknown function `{name}` (cross-module calls are not supported \
                     in this reproduction)"
                ),
                name_span,
            );
            return None;
        };
        if args.len() != builtin.arity() {
            self.chk.error(
                "E0256",
                format!(
                    "`{}` expects {} argument(s), got {}",
                    builtin.name(),
                    builtin.arity(),
                    args.len()
                ),
                name_span,
            );
            return None;
        }
        let mut lowered = Vec::new();
        let mut tys = Vec::new();
        for a in args {
            let (h, t) = self.lower(a)?;
            lowered.push(h);
            tys.push(t);
        }
        let result_ty = match builtin {
            Builtin::Abs => {
                if !tys[0].is_numeric() {
                    self.chk.error(
                        "E0257",
                        format!("`abs` requires a number, found {}", tys[0]),
                        name_span,
                    );
                }
                tys[0].clone()
            }
            Builtin::Min | Builtin::Max => {
                let widen = tys.contains(&Ty::REAL);
                for (v, t) in lowered.iter_mut().zip(&tys) {
                    if widen && *t == Ty::INT {
                        let taken = std::mem::replace(v, HExpr::Bool(false));
                        *v = HExpr::CastReal(Box::new(taken));
                    } else if !t.is_numeric() {
                        self.chk.error(
                            "E0257",
                            format!("`{}` requires numbers, found {t}", builtin.name()),
                            name_span,
                        );
                    }
                }
                if widen {
                    Ty::REAL
                } else {
                    Ty::INT
                }
            }
            Builtin::Sqrt | Builtin::Exp | Builtin::Ln | Builtin::Sin | Builtin::Cos => {
                if tys[0] == Ty::INT {
                    let taken = std::mem::replace(&mut lowered[0], HExpr::Bool(false));
                    lowered[0] = HExpr::CastReal(Box::new(taken));
                } else if tys[0] != Ty::REAL && !tys[0].is_error() {
                    self.chk.error(
                        "E0257",
                        format!("`{}` requires a real, found {}", builtin.name(), tys[0]),
                        name_span,
                    );
                }
                Ty::REAL
            }
            Builtin::Trunc | Builtin::Round => {
                if tys[0] != Ty::REAL && !tys[0].is_error() {
                    self.chk.error(
                        "E0257",
                        format!("`{}` requires a real, found {}", builtin.name(), tys[0]),
                        name_span,
                    );
                }
                Ty::INT
            }
            Builtin::RealFn => {
                if tys[0] != Ty::INT && !tys[0].is_error() {
                    self.chk.error(
                        "E0257",
                        format!("`real` requires an int, found {}", tys[0]),
                        name_span,
                    );
                }
                Ty::REAL
            }
            Builtin::Ord => match tys[0] {
                Ty::Enum(_) | Ty::Scalar(ScalarTy::Char) | Ty::Scalar(ScalarTy::Int) => Ty::INT,
                ref other => {
                    if !other.is_error() {
                        self.chk.error(
                            "E0257",
                            format!("`ord` requires an enum or char, found {other}"),
                            name_span,
                        );
                    }
                    Ty::INT
                }
            },
        };
        Some((
            HExpr::Call {
                builtin,
                args: lowered,
            },
            result_ty,
        ))
    }

    fn lower_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> Option<(HExpr, Ty)> {
        let (mut l, lt) = self.lower(lhs)?;
        let (mut r, rt) = self.lower(rhs)?;

        let widen_both = |l: &mut HExpr, r: &mut HExpr, lt: &Ty, rt: &Ty| {
            if *lt == Ty::INT && *rt == Ty::REAL {
                let taken = std::mem::replace(l, HExpr::Bool(false));
                *l = HExpr::CastReal(Box::new(taken));
                true
            } else if *lt == Ty::REAL && *rt == Ty::INT {
                let taken = std::mem::replace(r, HExpr::Bool(false));
                *r = HExpr::CastReal(Box::new(taken));
                true
            } else {
                *lt == Ty::REAL && *rt == Ty::REAL
            }
        };

        let ty = match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                if !lt.is_numeric() || !rt.is_numeric() {
                    self.chk.error(
                        "E0260",
                        format!("`{}` requires numbers, found {lt} and {rt}", op.as_str()),
                        span,
                    );
                    Ty::Error
                } else if widen_both(&mut l, &mut r, &lt, &rt) {
                    Ty::REAL
                } else {
                    Ty::INT
                }
            }
            BinOp::Div => {
                // `/` is real division; ints are widened (Pascal semantics).
                if !lt.is_numeric() || !rt.is_numeric() {
                    self.chk.error(
                        "E0260",
                        format!("`/` requires numbers, found {lt} and {rt}"),
                        span,
                    );
                    Ty::Error
                } else {
                    if lt == Ty::INT {
                        l = HExpr::CastReal(Box::new(l));
                    }
                    if rt == Ty::INT {
                        r = HExpr::CastReal(Box::new(r));
                    }
                    Ty::REAL
                }
            }
            BinOp::IntDiv | BinOp::Mod => {
                if (lt != Ty::INT && !lt.is_error()) || (rt != Ty::INT && !rt.is_error()) {
                    self.chk.error(
                        "E0261",
                        format!("`{}` requires integers, found {lt} and {rt}", op.as_str()),
                        span,
                    );
                }
                Ty::INT
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let comparable = (lt.is_numeric() && rt.is_numeric())
                    || lt == rt
                    || lt.is_error()
                    || rt.is_error();
                if !comparable {
                    self.chk
                        .error("E0262", format!("cannot compare {lt} with {rt}"), span);
                } else if lt.is_numeric() && rt.is_numeric() {
                    widen_both(&mut l, &mut r, &lt, &rt);
                }
                Ty::BOOL
            }
            BinOp::And | BinOp::Or => {
                if (lt != Ty::BOOL && !lt.is_error()) || (rt != Ty::BOOL && !rt.is_error()) {
                    self.chk.error(
                        "E0263",
                        format!("`{}` requires booleans, found {lt} and {rt}", op.as_str()),
                        span,
                    );
                }
                Ty::BOOL
            }
        };
        Some((
            HExpr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            },
            ty,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hir::{HExpr, SubscriptExpr};
    use crate::lexer::lex;
    use crate::parser::parse_program;

    pub(crate) const RELAXATION_V1: &str = "
        Relaxation: module (InitialA: array[I,J] of real;
                            M: int; maxK: int):
                    [newA: array[I,J] of real];
        type
            I, J = 0 .. M+1;
            K = 2 .. maxK;
        var
            A: array [1 .. maxK] of array[I,J] of real;
        define
            A[1] = InitialA;
            newA = A[maxK];
            A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                       then A[K-1,I,J]
                       else ( A[K-1,I,J-1]
                            + A[K-1,I-1,J]
                            + A[K-1,I,J+1]
                            + A[K-1,I+1,J] ) / 4;
        end Relaxation;
    ";

    fn check_ok(src: &str) -> HirModule {
        let sink = DiagnosticSink::new();
        let prog = parse_program(&lex(src, &sink), &sink);
        assert!(!sink.has_errors(), "parse: {:#?}", sink.snapshot());
        let m = check_module(&prog.modules[0], &sink);
        assert!(!sink.has_errors(), "check errors: {:#?}", sink.snapshot());
        m.expect("module")
    }

    fn check_err(src: &str) -> Vec<String> {
        let sink = DiagnosticSink::new();
        let prog = parse_program(&lex(src, &sink), &sink);
        assert!(!sink.has_errors(), "parse: {:#?}", sink.snapshot());
        let _ = check_module(&prog.modules[0], &sink);
        let diags = sink.snapshot();
        assert!(
            diags
                .iter()
                .any(|d| d.severity == ps_support::Severity::Error),
            "expected errors, got {diags:#?}"
        );
        diags.into_iter().map(|d| d.code.to_string()).collect()
    }

    #[test]
    fn relaxation_checks_clean() {
        let m = check_ok(RELAXATION_V1);
        assert_eq!(m.equations.len(), 3);
        assert_eq!(m.params.len(), 3);
        assert_eq!(m.results.len(), 1);
        // A is a flattened rank-3 local.
        let a = m.data_by_name("A").unwrap();
        assert_eq!(m.data[a].dims().len(), 3);
    }

    #[test]
    fn eq1_implicit_expansion() {
        let m = check_ok(RELAXATION_V1);
        let eq1 = &m.equations[m.equation_by_label("eq.1").unwrap()];
        // A[1] = InitialA → lhs_subs = [Const(1), Var(I), Var(J)]
        assert_eq!(eq1.lhs_subs.len(), 3);
        assert!(matches!(&eq1.lhs_subs[0], LhsSub::Const(a) if a.as_constant() == Some(1)));
        assert!(matches!(eq1.lhs_subs[1], LhsSub::Var(_)));
        assert_eq!(eq1.ivs.len(), 2);
        assert!(eq1.ivs.iter().all(|iv| iv.implicit));
        // RHS is a padded full-rank read of InitialA.
        let reads = eq1.rhs.array_reads();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].1.len(), 2);
        assert!(matches!(reads[0].1[0], SubscriptExpr::Var(_)));
    }

    #[test]
    fn eq2_upper_bound_subscript() {
        let m = check_ok(RELAXATION_V1);
        let eq2 = &m.equations[m.equation_by_label("eq.2").unwrap()];
        let reads = eq2.rhs.array_reads();
        assert_eq!(reads.len(), 1);
        // First subscript is the constant-affine `maxK`.
        match &reads[0].1[0] {
            SubscriptExpr::Affine(a) => {
                assert!(a.is_constant());
                assert_eq!(a.rest.terms().count(), 1);
            }
            other => panic!("expected affine maxK, got {other:?}"),
        }
    }

    #[test]
    fn eq3_subscript_classification() {
        let m = check_ok(RELAXATION_V1);
        let eq3 = &m.equations[m.equation_by_label("eq.3").unwrap()];
        assert_eq!(eq3.ivs.len(), 3);
        assert!(eq3.ivs.iter().all(|iv| !iv.implicit));
        let reads = eq3.rhs.array_reads();
        assert_eq!(reads.len(), 5, "boundary + 4 interior reads");
        // Every K subscript is K-1 (VarOffset with delta -1).
        for (_, subs) in &reads {
            assert!(
                matches!(subs[0], SubscriptExpr::VarOffset(_, -1)),
                "K dim should be K-1: {subs:?}"
            );
        }
        // There is at least one J+1 (VarOffset +1) — the "other" form.
        let has_plus = reads
            .iter()
            .flat_map(|(_, s)| s.iter())
            .any(|s| matches!(s, SubscriptExpr::VarOffset(_, 1)));
        assert!(has_plus);
        // The RHS value was widened: `/ 4` produces a real division where the
        // literal 4 is cast.
        fn has_cast(e: &HExpr) -> bool {
            let mut found = false;
            e.visit(&mut |n| {
                if matches!(n, HExpr::CastReal(_)) {
                    found = true;
                }
            });
            found
        }
        assert!(has_cast(&eq3.rhs));
    }

    #[test]
    fn unknown_name_rejected() {
        let codes = check_err("T: module (): [y: int]; define y = nope; end T;");
        assert!(codes.contains(&"E0246".to_string()));
    }

    #[test]
    fn defining_param_rejected() {
        let codes = check_err("T: module (x: int): [y: int]; define x = 1; y = 2; end T;");
        assert!(codes.contains(&"E0221".to_string()));
    }

    #[test]
    fn missing_definition_rejected() {
        let codes = check_err("T: module (): [y: int]; define end T;");
        assert!(codes.contains(&"E0270".to_string()));
    }

    #[test]
    fn double_scalar_definition_rejected() {
        let codes = check_err("T: module (): [y: int]; define y = 1; y = 2; end T;");
        assert!(codes.contains(&"E0271".to_string()));
    }

    #[test]
    fn overlapping_array_definitions_rejected() {
        let codes = check_err(
            "T: module (n: int): [y: int];
             type I = 1 .. n;
             var a: array [I] of int;
             define
                a[I] = 0;
                a[I] = 1;
                y = a[1];
             end T;",
        );
        assert!(codes.contains(&"E0272".to_string()));
    }

    #[test]
    fn unbound_index_var_rejected() {
        let codes = check_err(
            "T: module (n: int): [y: int];
             type I = 1 .. n;
             var a: array [I] of int;
             define
                a[I] = 0;
                y = I;
             end T;",
        );
        assert!(codes.contains(&"E0245".to_string()));
    }

    #[test]
    fn type_errors_rejected() {
        let codes = check_err("T: module (): [y: bool]; define y = 1 + true; end T;");
        assert!(codes.contains(&"E0260".to_string()));
        let codes = check_err("T: module (x: real): [y: int]; define y = x; end T;");
        assert!(codes.contains(&"E0229".to_string()));
    }

    #[test]
    fn int_division_operators() {
        let m =
            check_ok("T: module (a: int; b: int): [y: int]; define y = a div b + a mod b; end T;");
        assert_eq!(m.equations.len(), 1);
        // `/` on ints must yield real and be rejected for an int target.
        let codes = check_err("T: module (a: int; b: int): [y: int]; define y = a / b; end T;");
        assert!(codes.contains(&"E0229".to_string()));
    }

    #[test]
    fn enums_and_records() {
        let m = check_ok(
            "T: module (): [y: int];
             type Color = (red, green, blue);
                  Pt = record a: real; b: real; end;
             var c: Color; p: Pt;
             define
                c = green;
                p.a = 1.0;
                p.b = p.a + 1.0;
                y = ord(c);
             end T;",
        );
        assert_eq!(m.enums.len(), 1);
        assert_eq!(m.records.len(), 1);
        assert_eq!(m.equations.len(), 4);
    }

    #[test]
    fn record_missing_field_def_rejected() {
        let codes = check_err(
            "T: module (): [y: real];
             type Pt = record a: real; b: real; end;
             var p: Pt;
             define
                p.a = 1.0;
                y = p.a;
             end T;",
        );
        assert!(codes.contains(&"E0270".to_string()));
    }

    #[test]
    fn out_of_range_index_var_rejected() {
        let codes = check_err(
            "T: module (n: int): [y: int];
             type I = 1 .. 10; Wide = 0 .. 20;
             var a: array [I] of int;
             define
                a[Wide] = 0;
                y = a[1];
             end T;",
        );
        assert!(codes.contains(&"E0230".to_string()));
    }

    #[test]
    fn dynamic_subscript_allowed() {
        let m = check_ok(
            "T: module (n: int; idx: array[1..10] of int): [y: int];
             type I = 1 .. 10;
             var a: array [I] of int;
             define
                a[I] = I * 2;
                y = a[idx[1]];
             end T;",
        );
        let eq = &m.equations[m.equation_by_label("eq.2").unwrap()];
        let reads = eq.rhs.array_reads();
        // Outer read a[...] has a Dynamic subscript; inner read idx[1].
        assert!(reads
            .iter()
            .any(|(_, s)| matches!(s[0], SubscriptExpr::Dynamic(_))));
    }

    #[test]
    fn affine_multi_var_subscript() {
        // The transformed-program shape: subscript affine in two index vars.
        let m = check_ok(
            "T: module (n: int; b: array[0..30] of real): [y: real];
             type I = 1 .. 10; J = 1 .. 2;
             var a: array [I, J] of real;
             define
                a[I, J] = b[2*I + J - 3];
                y = a[1, 1];
             end T;",
        );
        let eq = &m.equations[m.equation_by_label("eq.1").unwrap()];
        let reads = eq.rhs.array_reads();
        match &reads[0].1[0] {
            SubscriptExpr::Affine(a) => {
                assert_eq!(a.iv_terms.len(), 2);
                assert_eq!(a.rest.as_constant(), Some(-3));
            }
            other => panic!("expected affine subscript, got {other:?}"),
        }
    }

    #[test]
    fn frontend_helper_works() {
        let m = crate::frontend(RELAXATION_V1).expect("frontend");
        assert_eq!(m.name.as_str(), "Relaxation");
    }

    #[test]
    fn frontend_reports_errors() {
        let err = crate::frontend("T: module (): [y: int]; define y = zzz; end T;")
            .expect_err("should fail");
        assert!(err.contains("E0246"), "{err}");
    }
}
