//! High-level IR: the checked, normalized form of a PS module.
//!
//! Normalizations performed by the checker (all load-bearing for the
//! scheduler):
//!
//! * nested array types are flattened, so the paper's
//!   `array [1..maxK] of array [I,J] of real` becomes a rank-3 array;
//! * implicit slice equations are expanded with synthesized index variables:
//!   `A[1] = InitialA` becomes `A[1, i, j] = InitialA[i, j]` with `i: I`,
//!   `j: J` — this is what lets the scheduler emit Figure 5's
//!   `DOALL I (DOALL J (eq.1))`;
//! * every array subscript is classified into the Figure-2 forms:
//!   [`SubscriptExpr::Var`] (`I`), [`SubscriptExpr::VarOffset`]
//!   (`I ± constant`), [`SubscriptExpr::Affine`] (affine in several index
//!   variables and parameters — e.g. the transformed `K' - 2I' - J'`), or
//!   [`SubscriptExpr::Dynamic`] (anything else);
//! * `int → real` widenings are explicit [`HExpr::CastReal`] nodes, so the
//!   evaluator and C emitter never re-derive typing.

use crate::ast::{BinOp, UnOp};
use crate::bounds::Affine;
use crate::types::{EnumDef, EnumId, RecordDef, RecordId, ScalarTy, Subrange, SubrangeId, Ty};
use ps_support::idx::IndexVec;
use ps_support::{new_index_type, Span, Symbol};

new_index_type! {
    /// Handle to a [`DataItem`] (parameter, result, or local variable).
    pub struct DataId; "d"
}
new_index_type! {
    /// Handle to an [`Equation`].
    pub struct EqId; "eq"
}
new_index_type! {
    /// Handle to an [`IndexVar`] *within one equation*.
    pub struct IvId; "iv"
}

/// What role a data item plays in the module interface.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataKind {
    /// Module input parameter.
    Param,
    /// Module result.
    Result,
    /// Local variable from the `var` section.
    Local,
}

/// A named data item of the module.
#[derive(Clone, Debug)]
pub struct DataItem {
    pub name: Symbol,
    pub kind: DataKind,
    pub ty: Ty,
    pub span: Span,
}

impl DataItem {
    /// Dimension subranges for arrays; empty for scalars.
    pub fn dims(&self) -> &[SubrangeId] {
        match &self.ty {
            Ty::Array { dims, .. } => dims,
            _ => &[],
        }
    }

    pub fn is_array(&self) -> bool {
        !self.dims().is_empty()
    }

    /// Scalar element type (for arrays, the element; for scalars, the type).
    pub fn elem_scalar(&self) -> Option<ScalarTy> {
        match &self.ty {
            Ty::Array { elem, .. } => Some(*elem),
            Ty::Scalar(s) => Some(*s),
            _ => None,
        }
    }
}

/// An index variable bound by an equation's left-hand side.
///
/// `A[K, I, J] = ...` binds three index variables; `A[1] = InitialA` binds
/// two *implicit* ones covering the sliced dimensions.
#[derive(Clone, Debug)]
pub struct IndexVar {
    /// Display name; synthesized variables reuse the subrange name.
    pub name: Symbol,
    /// The subrange the variable iterates over.
    pub subrange: SubrangeId,
    /// True when synthesized for an implicit slice dimension.
    pub implicit: bool,
}

/// One dimension of an equation's left-hand side.
#[derive(Clone, Debug)]
pub enum LhsSub {
    /// A fixed plane: `A[1, ...]` or `A[maxK, ...]` (affine in parameters).
    Const(Affine),
    /// A full-range dimension bound to an index variable.
    Var(IvId),
}

/// An affine combination of index variables and parameters:
/// `Σ coeffᵢ·ivᵢ + (params + const)`.
#[derive(Clone, Debug, PartialEq)]
pub struct AffineIx {
    /// Index-variable terms with nonzero coefficients, sorted by id.
    pub iv_terms: Vec<(IvId, i64)>,
    /// Parameter-and-constant remainder.
    pub rest: Affine,
}

impl AffineIx {
    pub fn constant(rest: Affine) -> AffineIx {
        AffineIx {
            iv_terms: Vec::new(),
            rest,
        }
    }

    pub fn from_iv(iv: IvId) -> AffineIx {
        AffineIx {
            iv_terms: vec![(iv, 1)],
            rest: Affine::constant(0),
        }
    }

    pub fn is_constant(&self) -> bool {
        self.iv_terms.is_empty()
    }

    /// Coefficient of `iv` (0 when absent).
    pub fn coeff(&self, iv: IvId) -> i64 {
        self.iv_terms
            .iter()
            .find(|(v, _)| *v == iv)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    pub fn add(&self, other: &AffineIx) -> AffineIx {
        let mut terms: Vec<(IvId, i64)> = self.iv_terms.clone();
        for &(iv, c) in &other.iv_terms {
            match terms.iter_mut().find(|(v, _)| *v == iv) {
                Some((_, existing)) => *existing += c,
                None => terms.push((iv, c)),
            }
        }
        terms.retain(|(_, c)| *c != 0);
        terms.sort_by_key(|(v, _)| *v);
        AffineIx {
            iv_terms: terms,
            rest: self.rest.add(&other.rest),
        }
    }

    pub fn scale(&self, k: i64) -> AffineIx {
        if k == 0 {
            return AffineIx::constant(Affine::constant(0));
        }
        AffineIx {
            iv_terms: self.iv_terms.iter().map(|&(v, c)| (v, c * k)).collect(),
            rest: self.rest.scale(k),
        }
    }

    pub fn sub(&self, other: &AffineIx) -> AffineIx {
        self.add(&other.scale(-1))
    }

    pub fn add_const(&self, k: i64) -> AffineIx {
        AffineIx {
            iv_terms: self.iv_terms.clone(),
            rest: self.rest.add_const(k),
        }
    }
}

/// A classified array subscript (the paper's Figure 2 edge-label forms).
#[derive(Clone, Debug)]
pub enum SubscriptExpr {
    /// Exactly `I` — the identity form.
    Var(IvId),
    /// `I + delta` with `delta != 0`. Negative `delta` is the paper's
    /// "I - constant" (deletable recursive reference); positive `delta`
    /// ("I + constant") counts as *other* for scheduling.
    VarOffset(IvId, i64),
    /// General affine form (several index variables and/or parameter terms),
    /// e.g. `maxK` or the transformed `K' - 2I' - J'`.
    Affine(AffineIx),
    /// Anything non-affine.
    Dynamic(Box<HExpr>),
}

impl SubscriptExpr {
    /// Canonicalize an [`AffineIx`] into the cheapest subscript form.
    pub fn from_affine(a: AffineIx) -> SubscriptExpr {
        if a.iv_terms.len() == 1 && a.iv_terms[0].1 == 1 {
            if let Some(delta) = a.rest.as_constant() {
                let iv = a.iv_terms[0].0;
                return if delta == 0 {
                    SubscriptExpr::Var(iv)
                } else {
                    SubscriptExpr::VarOffset(iv, delta)
                };
            }
        }
        SubscriptExpr::Affine(a)
    }

    /// View as an affine form, when possible.
    pub fn as_affine(&self) -> Option<AffineIx> {
        match self {
            SubscriptExpr::Var(iv) => Some(AffineIx::from_iv(*iv)),
            SubscriptExpr::VarOffset(iv, d) => Some(AffineIx::from_iv(*iv).add_const(*d)),
            SubscriptExpr::Affine(a) => Some(a.clone()),
            SubscriptExpr::Dynamic(_) => None,
        }
    }
}

/// Builtin scalar functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Builtin {
    Abs,
    Min,
    Max,
    Sqrt,
    Exp,
    Ln,
    Sin,
    Cos,
    /// `trunc(real) -> int`
    Trunc,
    /// `round(real) -> int`
    Round,
    /// `real(int) -> real`
    RealFn,
    /// `ord(enum | char) -> int`
    Ord,
}

impl Builtin {
    pub fn lookup(name: &str) -> Option<Builtin> {
        Some(match name {
            "abs" => Builtin::Abs,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "sqrt" => Builtin::Sqrt,
            "exp" => Builtin::Exp,
            "ln" => Builtin::Ln,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "trunc" => Builtin::Trunc,
            "round" => Builtin::Round,
            "real" => Builtin::RealFn,
            "ord" => Builtin::Ord,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            Builtin::Abs => "abs",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Sqrt => "sqrt",
            Builtin::Exp => "exp",
            Builtin::Ln => "ln",
            Builtin::Sin => "sin",
            Builtin::Cos => "cos",
            Builtin::Trunc => "trunc",
            Builtin::Round => "round",
            Builtin::RealFn => "real",
            Builtin::Ord => "ord",
        }
    }

    pub fn arity(&self) -> usize {
        match self {
            Builtin::Min | Builtin::Max => 2,
            _ => 1,
        }
    }
}

/// A checked expression. Every node is scalar-typed; the checker records the
/// result type where it is not derivable from the operands alone.
#[derive(Clone, Debug)]
pub enum HExpr {
    Int(i64),
    Real(f64),
    Bool(bool),
    Char(char),
    /// A variant of an enumeration, by ordinal.
    EnumConst(EnumId, usize),
    /// Read of a scalar parameter, result, or local.
    ReadScalar(DataId),
    /// Read of a record field.
    ReadField(DataId, usize),
    /// Current value of an index variable (an `int`).
    Iv(IvId),
    /// Full-rank array element read.
    ReadArray {
        array: DataId,
        subs: Vec<SubscriptExpr>,
        span: Span,
    },
    Binary {
        op: BinOp,
        lhs: Box<HExpr>,
        rhs: Box<HExpr>,
    },
    Unary {
        op: UnOp,
        operand: Box<HExpr>,
    },
    /// `if c₁ then v₁ elsif c₂ then v₂ ... else e`.
    If {
        arms: Vec<(HExpr, HExpr)>,
        else_: Box<HExpr>,
    },
    Call {
        builtin: Builtin,
        args: Vec<HExpr>,
    },
    /// Explicit `int → real` widening inserted by the checker.
    CastReal(Box<HExpr>),
}

impl HExpr {
    /// Walk the expression tree, visiting every node (preorder).
    pub fn visit(&self, f: &mut impl FnMut(&HExpr)) {
        f(self);
        match self {
            HExpr::ReadArray { subs, .. } => {
                for s in subs {
                    if let SubscriptExpr::Dynamic(e) = s {
                        e.visit(f);
                    }
                }
            }
            HExpr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            HExpr::Unary { operand, .. } => operand.visit(f),
            HExpr::If { arms, else_ } => {
                for (c, v) in arms {
                    c.visit(f);
                    v.visit(f);
                }
                else_.visit(f);
            }
            HExpr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            HExpr::CastReal(e) => e.visit(f),
            _ => {}
        }
    }

    /// Collect every array read in the expression (including those inside
    /// dynamic subscripts).
    pub fn array_reads(&self) -> Vec<(DataId, &[SubscriptExpr])> {
        let mut out: Vec<(DataId, &[SubscriptExpr])> = Vec::new();
        // Manual traversal because `visit` borrows nodes individually.
        fn go<'a>(e: &'a HExpr, out: &mut Vec<(DataId, &'a [SubscriptExpr])>) {
            match e {
                HExpr::ReadArray { array, subs, .. } => {
                    out.push((*array, subs.as_slice()));
                    for s in subs {
                        if let SubscriptExpr::Dynamic(inner) = s {
                            go(inner, out);
                        }
                    }
                }
                HExpr::Binary { lhs, rhs, .. } => {
                    go(lhs, out);
                    go(rhs, out);
                }
                HExpr::Unary { operand, .. } => go(operand, out),
                HExpr::If { arms, else_ } => {
                    for (c, v) in arms {
                        go(c, out);
                        go(v, out);
                    }
                    go(else_, out);
                }
                HExpr::Call { args, .. } => {
                    for a in args {
                        go(a, out);
                    }
                }
                HExpr::CastReal(inner) => go(inner, out),
                _ => {}
            }
        }
        go(self, &mut out);
        out
    }

    /// Collect every scalar data read (params, scalar locals/results,
    /// record fields).
    pub fn scalar_reads(&self) -> Vec<DataId> {
        let mut out = Vec::new();
        self.visit(&mut |e| match e {
            HExpr::ReadScalar(d) | HExpr::ReadField(d, _) => out.push(*d),
            _ => {}
        });
        out
    }

    /// Collect record-field reads as `(record, field index)` pairs.
    pub fn field_reads(&self) -> Vec<(DataId, usize)> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let HExpr::ReadField(d, idx) = e {
                out.push((*d, *idx));
            }
        });
        out
    }
}

/// A checked, normalized equation.
#[derive(Clone, Debug)]
pub struct Equation {
    /// Paper-style label: `eq.1`, `eq.2`, ... in source order.
    pub label: String,
    /// The data item defined by this equation.
    pub lhs: DataId,
    /// Record field index when the target is `R.field`.
    pub lhs_field: Option<usize>,
    /// One entry per dimension of the LHS array (empty for scalars).
    pub lhs_subs: Vec<LhsSub>,
    /// Index variables bound by the LHS, in dimension order.
    pub ivs: IndexVec<IvId, IndexVar>,
    pub rhs: HExpr,
    pub span: Span,
}

impl Equation {
    /// The index variables in LHS dimension order (the scheduler's
    /// "node dimensions" for this equation node).
    pub fn dim_ivs(&self) -> impl Iterator<Item = (IvId, &IndexVar)> {
        self.ivs.iter_enumerated()
    }

    /// The iv bound at LHS dimension `dim`, if that dimension is a var.
    pub fn lhs_var_at(&self, dim: usize) -> Option<IvId> {
        match self.lhs_subs.get(dim) {
            Some(LhsSub::Var(iv)) => Some(*iv),
            _ => None,
        }
    }
}

/// A fully checked module.
#[derive(Clone, Debug)]
pub struct HirModule {
    pub name: Symbol,
    pub data: IndexVec<DataId, DataItem>,
    pub params: Vec<DataId>,
    pub results: Vec<DataId>,
    pub subranges: IndexVec<SubrangeId, Subrange>,
    pub enums: IndexVec<EnumId, EnumDef>,
    pub records: IndexVec<RecordId, RecordDef>,
    pub equations: IndexVec<EqId, Equation>,
}

impl HirModule {
    /// The *runtime* scalar type of a declared type: enumerations and
    /// characters are carried as integers by the evaluators and the C
    /// emitter, arrays report their element type. Records have no scalar
    /// runtime type (fields are read individually via [`HExpr::ReadField`]).
    pub fn runtime_scalar_ty(&self, ty: &Ty) -> ScalarTy {
        match ty {
            Ty::Scalar(ScalarTy::Char) => ScalarTy::Int,
            Ty::Scalar(s) => *s,
            Ty::Enum(_) => ScalarTy::Int,
            Ty::Array { elem, .. } => {
                if *elem == ScalarTy::Char {
                    ScalarTy::Int
                } else {
                    *elem
                }
            }
            Ty::Record(_) | Ty::Error => {
                panic!("type {ty:?} has no scalar runtime representation")
            }
        }
    }

    /// Synthesize the runtime scalar type of `e`, a (sub)expression of
    /// `eq`'s right-hand side.
    ///
    /// The checker guarantees every `HExpr` is scalar-typed and inserts
    /// explicit [`HExpr::CastReal`] widenings, so the type is derivable
    /// bottom-up without an environment. This is the type information an
    /// ahead-of-time lowering (e.g. `ps-runtime`'s compiled engine, which
    /// assigns every node a typed untagged register) needs from the front
    /// end. Characters and enumeration values report [`ScalarTy::Int`],
    /// matching their runtime representation.
    pub fn expr_scalar_ty(&self, eq: &Equation, e: &HExpr) -> ScalarTy {
        match e {
            HExpr::Int(_) | HExpr::Char(_) | HExpr::EnumConst(..) | HExpr::Iv(_) => ScalarTy::Int,
            HExpr::Real(_) | HExpr::CastReal(_) => ScalarTy::Real,
            HExpr::Bool(_) => ScalarTy::Bool,
            HExpr::ReadScalar(d) => self.runtime_scalar_ty(&self.data[*d].ty),
            HExpr::ReadField(d, idx) => match &self.data[*d].ty {
                Ty::Record(rid) => self.runtime_scalar_ty(&self.records[*rid].fields[*idx].1),
                other => panic!("field read of non-record type {other:?}"),
            },
            HExpr::ReadArray { array, .. } => self.runtime_scalar_ty(&self.data[*array].ty),
            HExpr::Binary { op, lhs, .. } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul => self.expr_scalar_ty(eq, lhs),
                BinOp::Div => ScalarTy::Real,
                BinOp::IntDiv | BinOp::Mod => ScalarTy::Int,
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or => ScalarTy::Bool,
            },
            HExpr::Unary { op, operand } => match op {
                UnOp::Neg => self.expr_scalar_ty(eq, operand),
                UnOp::Not => ScalarTy::Bool,
            },
            // The checker widens arms to a common type, so any arm works;
            // the `else` branch is always present.
            HExpr::If { else_, .. } => self.expr_scalar_ty(eq, else_),
            HExpr::Call { builtin, args } => match builtin {
                Builtin::Abs | Builtin::Min | Builtin::Max => self.expr_scalar_ty(eq, &args[0]),
                Builtin::Sqrt
                | Builtin::Exp
                | Builtin::Ln
                | Builtin::Sin
                | Builtin::Cos
                | Builtin::RealFn => ScalarTy::Real,
                Builtin::Trunc | Builtin::Round | Builtin::Ord => ScalarTy::Int,
            },
        }
    }

    /// Look a data item up by name.
    pub fn data_by_name(&self, name: &str) -> Option<DataId> {
        let sym = Symbol::intern(name);
        self.data
            .iter_enumerated()
            .find(|(_, d)| d.name == sym)
            .map(|(id, _)| id)
    }

    /// Look an equation up by its `eq.N` label.
    pub fn equation_by_label(&self, label: &str) -> Option<EqId> {
        self.equations
            .iter_enumerated()
            .find(|(_, e)| e.label == label)
            .map(|(id, _)| id)
    }

    /// Scalar integer parameters (the symbols usable in affine bounds).
    pub fn scalar_int_params(&self) -> Vec<DataId> {
        self.params
            .iter()
            .copied()
            .filter(|&d| self.data[d].ty == Ty::Scalar(ScalarTy::Int))
            .collect()
    }

    /// Every scalar (non-array) parameter, in declaration order.
    ///
    /// This is the runtime's *parameter-register table*: a compiled
    /// artifact that wants to be reusable across runs assigns each of
    /// these a slot, binds the slot from the live [`Inputs`] at run time,
    /// and lowers parameter reads to slot references instead of folding
    /// the current value in as a constant.
    ///
    /// [`Inputs`]: DataKind::Param
    pub fn scalar_params(&self) -> Vec<DataId> {
        self.params
            .iter()
            .copied()
            .filter(|&d| !self.data[d].is_array())
            .collect()
    }

    /// All equations defining `target`.
    pub fn defs_of(&self, target: DataId) -> Vec<EqId> {
        self.equations
            .iter_enumerated()
            .filter(|(_, e)| e.lhs == target)
            .map(|(id, _)| id)
            .collect()
    }

    pub fn subrange(&self, id: SubrangeId) -> &Subrange {
        &self.subranges[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_ix_algebra() {
        let a = AffineIx::from_iv(IvId(0)).scale(2); // 2K
        let b = AffineIx::from_iv(IvId(1)); // I
        let sum = a.add(&b).add_const(3); // 2K + I + 3
        assert_eq!(sum.coeff(IvId(0)), 2);
        assert_eq!(sum.coeff(IvId(1)), 1);
        assert_eq!(sum.coeff(IvId(2)), 0);
        assert_eq!(sum.rest.as_constant(), Some(3));
        let cancelled = sum.sub(&sum);
        assert!(cancelled.is_constant());
        assert_eq!(cancelled.rest.as_constant(), Some(0));
    }

    #[test]
    fn subscript_canonicalization() {
        // iv + 0 → Var
        let v = SubscriptExpr::from_affine(AffineIx::from_iv(IvId(1)));
        assert!(matches!(v, SubscriptExpr::Var(IvId(1))));
        // iv - 1 → VarOffset(-1), the paper's "I - constant"
        let off = SubscriptExpr::from_affine(AffineIx::from_iv(IvId(0)).add_const(-1));
        assert!(matches!(off, SubscriptExpr::VarOffset(IvId(0), -1)));
        // 2iv → general affine
        let aff = SubscriptExpr::from_affine(AffineIx::from_iv(IvId(0)).scale(2));
        assert!(matches!(aff, SubscriptExpr::Affine(_)));
        // param-only → constant affine
        let c =
            SubscriptExpr::from_affine(AffineIx::constant(Affine::param(Symbol::intern("maxK"))));
        assert!(matches!(c, SubscriptExpr::Affine(a) if a.is_constant()));
    }

    #[test]
    fn builtin_lookup() {
        assert_eq!(Builtin::lookup("sqrt"), Some(Builtin::Sqrt));
        assert_eq!(Builtin::lookup("nope"), None);
        assert_eq!(Builtin::Min.arity(), 2);
        assert_eq!(Builtin::Abs.arity(), 1);
    }

    #[test]
    fn expr_scalar_ty_synthesis() {
        let m = crate::frontend(
            "T: module (n: int): [y: real];
             type I = 1 .. n; Color = (red, green);
             var a: array [I] of real; c: array [I] of int;
             f: bool; col: Color;
             define
                a[I] = real(I) / 2.0 + 1.0;
                c[I] = if I > 1 then I mod 2 else abs(I - 2);
                f = a[1] < a[n];
                col = green;
                y = a[n] + real(c[n] + ord(col));
             end T;",
        )
        .unwrap();
        let rhs_ty = |label: &str| {
            let id = m.equation_by_label(label).unwrap();
            let eq = &m.equations[id];
            m.expr_scalar_ty(eq, &eq.rhs)
        };
        assert_eq!(rhs_ty("eq.1"), ScalarTy::Real, "real arithmetic");
        assert_eq!(rhs_ty("eq.2"), ScalarTy::Int, "if/mod/abs over ints");
        assert_eq!(rhs_ty("eq.3"), ScalarTy::Bool, "comparison");
        assert_eq!(rhs_ty("eq.4"), ScalarTy::Int, "enum carried as int");
        assert_eq!(rhs_ty("eq.5"), ScalarTy::Real, "cast + call");
    }

    #[test]
    fn array_reads_walks_nested() {
        // B[ A[iv0] ] — dynamic subscript containing a read.
        let inner = HExpr::ReadArray {
            array: DataId(0),
            subs: vec![SubscriptExpr::Var(IvId(0))],
            span: Span::DUMMY,
        };
        let outer = HExpr::ReadArray {
            array: DataId(1),
            subs: vec![SubscriptExpr::Dynamic(Box::new(inner))],
            span: Span::DUMMY,
        };
        let reads = outer.array_reads();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].0, DataId(1));
        assert_eq!(reads[1].0, DataId(0));
    }
}
