//! Hand-written lexer for PS.
//!
//! Notable PS lexical features:
//! * comments are `(* ... *)` and **nest** (the paper's Figure 1 carries a
//!   `(*$m+v+x+t-*)` pragma comment — treated as an ordinary comment here);
//! * `..` (subrange) must be distinguished from the decimal point, so `0..M`
//!   lexes as `0`, `..`, `M` while `0.5` is a real literal;
//! * identifiers are case-sensitive; keywords are lowercase.

use crate::token::{Token, TokenKind};
use ps_support::{Diagnostic, DiagnosticSink, Span, Symbol};

struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
    tokens: Vec<Token>,
}

/// Lex `source`, reporting errors to `sink`. Always produces a token stream
/// terminated by [`TokenKind::Eof`]; on errors the offending characters are
/// skipped so parsing can still proceed for later constructs.
pub fn lex(source: &str, sink: &DiagnosticSink) -> Vec<Token> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
    };
    lx.run(sink);
    lx.tokens
}

impl<'src> Lexer<'src> {
    fn peek(&self) -> u8 {
        self.src.get(self.pos).copied().unwrap_or(0)
    }

    fn peek2(&self) -> u8 {
        self.src.get(self.pos + 1).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn push(&mut self, kind: TokenKind, lo: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(lo as u32, self.pos as u32),
        });
    }

    fn run(&mut self, sink: &DiagnosticSink) {
        loop {
            self.skip_trivia(sink);
            let lo = self.pos;
            if self.pos >= self.src.len() {
                self.push(TokenKind::Eof, lo);
                break;
            }
            let b = self.peek();
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(lo),
                b'0'..=b'9' => self.number(lo, sink),
                b'\'' => self.char_literal(lo, sink),
                b'(' => {
                    self.bump();
                    self.push(TokenKind::LParen, lo);
                }
                b')' => {
                    self.bump();
                    self.push(TokenKind::RParen, lo);
                }
                b'[' => {
                    self.bump();
                    self.push(TokenKind::LBracket, lo);
                }
                b']' => {
                    self.bump();
                    self.push(TokenKind::RBracket, lo);
                }
                b':' => {
                    self.bump();
                    self.push(TokenKind::Colon, lo);
                }
                b';' => {
                    self.bump();
                    self.push(TokenKind::Semi, lo);
                }
                b',' => {
                    self.bump();
                    self.push(TokenKind::Comma, lo);
                }
                b'.' => {
                    self.bump();
                    if self.peek() == b'.' {
                        self.bump();
                        self.push(TokenKind::DotDot, lo);
                    } else {
                        self.push(TokenKind::Dot, lo);
                    }
                }
                b'=' => {
                    self.bump();
                    self.push(TokenKind::Eq, lo);
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        b'>' => {
                            self.bump();
                            self.push(TokenKind::Ne, lo);
                        }
                        b'=' => {
                            self.bump();
                            self.push(TokenKind::Le, lo);
                        }
                        _ => self.push(TokenKind::Lt, lo),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        self.push(TokenKind::Ge, lo);
                    } else {
                        self.push(TokenKind::Gt, lo);
                    }
                }
                b'+' => {
                    self.bump();
                    self.push(TokenKind::Plus, lo);
                }
                b'-' => {
                    self.bump();
                    self.push(TokenKind::Minus, lo);
                }
                b'*' => {
                    self.bump();
                    self.push(TokenKind::Star, lo);
                }
                b'/' => {
                    self.bump();
                    self.push(TokenKind::Slash, lo);
                }
                other => {
                    self.bump();
                    sink.emit(
                        Diagnostic::error(
                            "E0101",
                            format!("unexpected character `{}`", other as char),
                        )
                        .with_span(Span::new(lo as u32, self.pos as u32)),
                    );
                }
            }
        }
    }

    /// Skip whitespace and (nested) `(* ... *)` comments.
    fn skip_trivia(&mut self, sink: &DiagnosticSink) {
        loop {
            while self.peek().is_ascii_whitespace() {
                self.bump();
            }
            if self.peek() == b'(' && self.peek2() == b'*' {
                let lo = self.pos;
                self.bump();
                self.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    if self.pos >= self.src.len() {
                        sink.emit(
                            Diagnostic::error("E0102", "unterminated comment")
                                .with_span(Span::new(lo as u32, self.pos as u32)),
                        );
                        return;
                    }
                    if self.peek() == b'(' && self.peek2() == b'*' {
                        self.bump();
                        self.bump();
                        depth += 1;
                    } else if self.peek() == b'*' && self.peek2() == b')' {
                        self.bump();
                        self.bump();
                        depth -= 1;
                    } else {
                        self.bump();
                    }
                }
                continue;
            }
            break;
        }
    }

    fn ident(&mut self, lo: usize) {
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[lo..self.pos]).expect("ascii ident");
        let kind =
            TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(Symbol::intern(text)));
        self.push(kind, lo);
    }

    fn number(&mut self, lo: usize, sink: &DiagnosticSink) {
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        let mut is_real = false;
        // A '.' followed by a digit is a decimal point; `..` is a subrange.
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_real = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if matches!(self.peek(), b'e' | b'E') {
            let save = self.pos;
            self.bump();
            if matches!(self.peek(), b'+' | b'-') {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                is_real = true;
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. `2elsif...` won't occur,
                // but `2e` followed by an ident char): back off.
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[lo..self.pos]).expect("ascii number");
        let span = Span::new(lo as u32, self.pos as u32);
        if is_real {
            match text.parse::<f64>() {
                Ok(v) => self.push(TokenKind::Real(v), lo),
                Err(_) => {
                    sink.emit(
                        Diagnostic::error("E0103", format!("invalid real literal `{text}`"))
                            .with_span(span),
                    );
                    self.push(TokenKind::Real(0.0), lo);
                }
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => self.push(TokenKind::Int(v), lo),
                Err(_) => {
                    sink.emit(
                        Diagnostic::error(
                            "E0104",
                            format!("integer literal `{text}` out of range"),
                        )
                        .with_span(span),
                    );
                    self.push(TokenKind::Int(0), lo);
                }
            }
        }
    }

    fn char_literal(&mut self, lo: usize, sink: &DiagnosticSink) {
        self.bump(); // opening quote
        let c = self.bump();
        if self.peek() == b'\'' {
            self.bump();
            self.push(TokenKind::Char(c as char), lo);
        } else {
            sink.emit(
                Diagnostic::error("E0105", "unterminated character literal")
                    .with_span(Span::new(lo as u32, self.pos as u32)),
            );
            self.push(TokenKind::Char(c as char), lo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let sink = DiagnosticSink::new();
        let toks = lex(src, &sink);
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_module_header() {
        let ks = kinds("Relaxation: module (M: int):");
        assert_eq!(ks[0], TokenKind::Ident(Symbol::intern("Relaxation")));
        assert_eq!(ks[1], TokenKind::Colon);
        assert_eq!(ks[2], TokenKind::KwModule);
        assert_eq!(ks[3], TokenKind::LParen);
    }

    #[test]
    fn subrange_vs_real() {
        assert_eq!(
            kinds("0..9"),
            vec![
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(9),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("0.5"), vec![TokenKind::Real(0.5), TokenKind::Eof]);
        assert_eq!(
            kinds("1..M"),
            vec![
                TokenKind::Int(1),
                TokenKind::DotDot,
                TokenKind::Ident(Symbol::intern("M")),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn exponents() {
        assert_eq!(
            kinds("2.5e3"),
            vec![TokenKind::Real(2500.0), TokenKind::Eof]
        );
        assert_eq!(kinds("1e-2"), vec![TokenKind::Real(0.01), TokenKind::Eof]);
    }

    #[test]
    fn nested_comments_skipped() {
        let ks = kinds("(* outer (* inner *) still outer *) x");
        assert_eq!(
            ks,
            vec![TokenKind::Ident(Symbol::intern("x")), TokenKind::Eof]
        );
    }

    #[test]
    fn pragma_comment_is_comment() {
        let ks = kinds("(*$m+v+x+t-*) define");
        assert_eq!(ks, vec![TokenKind::KwDefine, TokenKind::Eof]);
    }

    #[test]
    fn relational_operators() {
        assert_eq!(
            kinds("< <= <> > >= ="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Ne,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        let sink = DiagnosticSink::new();
        lex("(* never closed", &sink);
        assert!(sink.has_errors());
    }

    #[test]
    fn unexpected_character_recovers() {
        let sink = DiagnosticSink::new();
        let toks = lex("a ? b", &sink);
        assert!(sink.has_errors());
        // `a` and `b` still lexed.
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn char_literals() {
        assert_eq!(kinds("'x'"), vec![TokenKind::Char('x'), TokenKind::Eof]);
    }

    #[test]
    fn spans_cover_lexemes() {
        let sink = DiagnosticSink::new();
        let toks = lex("abc 12", &sink);
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 6));
    }

    #[test]
    fn keywords_are_case_sensitive() {
        let ks = kinds("if If");
        assert_eq!(ks[0], TokenKind::KwIf);
        assert_eq!(ks[1], TokenKind::Ident(Symbol::intern("If")));
    }
}
