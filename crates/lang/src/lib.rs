//! Front end for the **PS** ("Problem Specification") nonprocedural dataflow
//! language of Gokhale's ICPP'87 paper.
//!
//! A PS program is a set of *modules*; each module declares typed inputs,
//! results, subrange/array/record/enum types and local variables, and then a
//! `define` section of unordered single-assignment *equations*. There is no
//! control flow — the compiler's scheduler derives the execution order (and
//! the DO/DOALL loop nesting) from the data dependency graph.
//!
//! Pipeline implemented here:
//!
//! ```text
//! source ──lexer──▶ tokens ──parser──▶ AST ──check──▶ HIR (typed, normalized)
//! ```
//!
//! The HIR is the hand-off point to `ps-depgraph`: every array reference is
//! expanded to full rank, every subscript is classified into the paper's
//! Figure-2 forms (`I`, `I - constant`, *other*), and implicit slice
//! assignments (`A[1] = InitialA`) are expanded with synthesized index
//! variables so the scheduler can generate the `DOALL I (DOALL J (eq.1))`
//! nests of Figure 5.

#![forbid(unsafe_code)]

pub mod ast;
pub mod bounds;
pub mod check;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod print;
pub mod region;
pub mod token;
pub mod types;

pub use bounds::Affine;
pub use check::{check_module, check_program};
pub use hir::{
    DataId, DataItem, DataKind, EqId, Equation, HExpr, HirModule, IvId, LhsSub, SubscriptExpr,
};
pub use lexer::lex;
pub use parser::parse_program;
pub use types::{ScalarTy, Subrange, SubrangeId, Ty};

use ps_support::{DiagnosticSink, SourceMap};

/// Convenience: lex, parse and check a single-module source string.
///
/// Returns the checked module or the rendered diagnostics.
pub fn frontend(source: &str) -> Result<hir::HirModule, String> {
    let mut sources = SourceMap::new();
    let file = sources.add_file("<input>", source);
    let sink = DiagnosticSink::new();
    let tokens = lexer::lex(source, &sink);
    let program = parser::parse_program(&tokens, &sink);
    if sink.has_errors() {
        return Err(sink.render_all(file, &sources));
    }
    let module = program
        .modules
        .into_iter()
        .next()
        .ok_or_else(|| "no module in source".to_string())?;
    let hir = check::check_module(&module, &sink);
    if sink.has_errors() {
        return Err(sink.render_all(file, &sources));
    }
    hir.ok_or_else(|| "internal: checker produced no module without errors".to_string())
}
