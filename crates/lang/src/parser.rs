//! Recursive-descent parser for PS.
//!
//! Grammar (EBNF, `{}` repetition, `[]` option):
//!
//! ```text
//! program    = { module } ;
//! module     = IDENT ":" "module" "(" [ params ] ")" ":"
//!              "[" results "]" ";" { section } "end" IDENT ";" ;
//! params     = paramdecl { ";" paramdecl } ;
//! results    = paramdecl { ("," | ";") paramdecl } ;
//! paramdecl  = IDENT { "," IDENT } ":" typeexpr ;
//! section    = "type" { typedecl } | "var" { vardecl } | "define" { equation } ;
//! typedecl   = IDENT { "," IDENT } "=" typeexpr ";" ;
//! vardecl    = IDENT { "," IDENT } ":" typeexpr ";" ;
//! equation   = lhs "=" expr ";" ;
//! lhs        = IDENT [ "." IDENT ] [ "[" expr { "," expr } "]" ] ;
//! typeexpr   = "array" "[" typeexpr { "," typeexpr } "]" "of" typeexpr
//!            | "record" { paramdecl ";" } "end"
//!            | "(" IDENT { "," IDENT } ")"
//!            | expr ".." expr
//!            | IDENT ;
//! ```
//!
//! Expressions use standard precedence:
//! `if/or/and/not/relational/additive/multiplicative/unary/postfix`.
//! Error recovery synchronizes on `;` so one bad equation does not hide the
//! rest of the module.

use crate::ast::*;
use crate::token::{Token, TokenKind};
use ps_support::{Diagnostic, DiagnosticSink, Span, Symbol};

/// Parse a whole program (sequence of modules).
pub fn parse_program(tokens: &[Token], sink: &DiagnosticSink) -> Program {
    let mut p = Parser {
        tokens,
        pos: 0,
        sink,
    };
    let mut modules = Vec::new();
    while !p.at(TokenKind::Eof) {
        let before = p.pos;
        if let Some(m) = p.module() {
            modules.push(m);
        }
        if p.pos == before {
            // Ensure progress even on unrecoverable garbage.
            p.bump();
        }
    }
    Program { modules }
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    sink: &'a DiagnosticSink,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Token {
        self.tokens
            .get(self.pos)
            .copied()
            .unwrap_or_else(|| *self.tokens.last().expect("lexer always emits Eof"))
    }

    fn peek_kind(&self) -> TokenKind {
        self.peek().kind
    }

    fn nth_kind(&self, n: usize) -> TokenKind {
        self.tokens
            .get(self.pos + n)
            .map(|t| t.kind)
            .unwrap_or(TokenKind::Eof)
    }

    fn at(&self, kind: TokenKind) -> bool {
        std::mem::discriminant(&self.peek_kind()) == std::mem::discriminant(&kind)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, ctx: &str) -> Option<Token> {
        if self.at(kind) {
            Some(self.bump())
        } else {
            let found = self.peek();
            self.sink.emit(
                Diagnostic::error(
                    "E0110",
                    format!(
                        "expected {} {ctx}, found {}",
                        kind.describe(),
                        found.kind.describe()
                    ),
                )
                .with_span(found.span),
            );
            None
        }
    }

    fn expect_ident(&mut self, ctx: &str) -> Option<(Symbol, Span)> {
        match self.peek_kind() {
            TokenKind::Ident(s) => {
                let t = self.bump();
                Some((s, t.span))
            }
            other => {
                self.sink.emit(
                    Diagnostic::error(
                        "E0111",
                        format!("expected identifier {ctx}, found {}", other.describe()),
                    )
                    .with_span(self.peek().span),
                );
                None
            }
        }
    }

    /// Skip ahead past the next `;` (or stop at `end`/EOF) after an error.
    fn synchronize(&mut self) {
        loop {
            match self.peek_kind() {
                TokenKind::Semi => {
                    self.bump();
                    return;
                }
                TokenKind::Eof | TokenKind::KwEnd => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- module -----------------------------------------------------------

    fn module(&mut self) -> Option<Module> {
        let (name, name_span) = self.expect_ident("as module name")?;
        self.expect(TokenKind::Colon, "after module name")?;
        self.expect(TokenKind::KwModule, "in module header")?;
        self.expect(TokenKind::LParen, "before module parameters")?;
        let mut params = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                if let Some(p) = self.param_decl() {
                    params.push(p);
                } else {
                    self.synchronize();
                }
                if !self.eat(TokenKind::Semi) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "after module parameters")?;
        self.expect(TokenKind::Colon, "before module results")?;
        self.expect(TokenKind::LBracket, "before module results")?;
        let mut results = Vec::new();
        while let Some(r) = self.param_decl() {
            results.push(r);
            if !(self.eat(TokenKind::Comma) || {
                // Results may also be `;`-separated, mirroring parameters.
                self.at(TokenKind::Semi) && {
                    self.bump();
                    true
                }
            }) {
                break;
            }
        }
        self.expect(TokenKind::RBracket, "after module results")?;
        self.expect(TokenKind::Semi, "after module header")?;

        let mut sections = Vec::new();
        loop {
            match self.peek_kind() {
                TokenKind::KwType => {
                    self.bump();
                    sections.push(Section::Types(self.type_decls()));
                }
                TokenKind::KwVar => {
                    self.bump();
                    sections.push(Section::Vars(self.var_decls()));
                }
                TokenKind::KwDefine => {
                    self.bump();
                    sections.push(Section::Define(self.equations()));
                }
                TokenKind::KwEnd => break,
                TokenKind::Eof => {
                    self.sink.emit(
                        Diagnostic::error("E0112", "missing `end` for module")
                            .with_span(self.peek().span),
                    );
                    break;
                }
                other => {
                    self.sink.emit(
                        Diagnostic::error(
                            "E0113",
                            format!(
                                "expected `type`, `var`, `define` or `end`, found {}",
                                other.describe()
                            ),
                        )
                        .with_span(self.peek().span),
                    );
                    self.synchronize();
                }
            }
        }
        self.eat(TokenKind::KwEnd);
        let end_name = self
            .expect_ident("after `end`")
            .map(|(s, _)| s)
            .unwrap_or(name);
        self.expect(TokenKind::Semi, "after `end <name>`");
        if end_name != name {
            self.sink.emit(
                Diagnostic::error(
                    "E0114",
                    format!("module `{name}` is closed by `end {end_name}`"),
                )
                .with_span(name_span),
            );
        }
        let end_span = self.tokens[self.pos.saturating_sub(1)].span;
        Some(Module {
            name,
            params,
            results,
            sections,
            end_name,
            span: name_span.to(end_span),
        })
    }

    fn param_decl(&mut self) -> Option<ParamDecl> {
        let first = self.expect_ident("in declaration")?;
        let mut names = vec![first];
        while self.eat(TokenKind::Comma) {
            names.push(self.expect_ident("in declaration")?);
        }
        self.expect(TokenKind::Colon, "before type")?;
        let ty = self.type_expr()?;
        let span = names[0].1.to(ty.span());
        Some(ParamDecl { names, ty, span })
    }

    // ---- declarations ------------------------------------------------------

    fn decl_names(&mut self) -> Option<Vec<(Symbol, Span)>> {
        let first = self.expect_ident("in declaration")?;
        let mut names = vec![first];
        while self.eat(TokenKind::Comma) {
            names.push(self.expect_ident("in declaration")?);
        }
        Some(names)
    }

    fn type_decls(&mut self) -> Vec<TypeDecl> {
        let mut decls = Vec::new();
        // A type section runs until the next section keyword or `end`.
        while matches!(self.peek_kind(), TokenKind::Ident(_)) {
            let start = self.peek().span;
            let Some(names) = self.decl_names() else {
                self.synchronize();
                continue;
            };
            if self.expect(TokenKind::Eq, "in type declaration").is_none() {
                self.synchronize();
                continue;
            }
            let Some(ty) = self.type_expr() else {
                self.synchronize();
                continue;
            };
            let end = self.peek().span;
            self.expect(TokenKind::Semi, "after type declaration");
            decls.push(TypeDecl {
                names,
                ty,
                span: start.to(end),
            });
        }
        decls
    }

    fn var_decls(&mut self) -> Vec<VarDecl> {
        let mut decls = Vec::new();
        while matches!(self.peek_kind(), TokenKind::Ident(_)) {
            let start = self.peek().span;
            let Some(names) = self.decl_names() else {
                self.synchronize();
                continue;
            };
            if self
                .expect(TokenKind::Colon, "in variable declaration")
                .is_none()
            {
                self.synchronize();
                continue;
            }
            let Some(ty) = self.type_expr() else {
                self.synchronize();
                continue;
            };
            let end = self.peek().span;
            self.expect(TokenKind::Semi, "after variable declaration");
            decls.push(VarDecl {
                names,
                ty,
                span: start.to(end),
            });
        }
        decls
    }

    fn equations(&mut self) -> Vec<EquationDecl> {
        let mut eqs = Vec::new();
        while matches!(self.peek_kind(), TokenKind::Ident(_)) {
            match self.equation() {
                Some(eq) => eqs.push(eq),
                None => self.synchronize(),
            }
        }
        eqs
    }

    fn equation(&mut self) -> Option<EquationDecl> {
        let (name, name_span) = self.expect_ident("at start of equation")?;
        let mut field = None;
        if self.eat(TokenKind::Dot) {
            field = Some(self.expect_ident("after `.` in equation target")?);
        }
        let mut subscripts = Vec::new();
        if self.eat(TokenKind::LBracket) {
            loop {
                subscripts.push(self.expr()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBracket, "after subscripts")?;
        }
        let lhs_end = self.tokens[self.pos.saturating_sub(1)].span;
        self.expect(TokenKind::Eq, "in equation")?;
        let rhs = self.expr()?;
        let end = self.peek().span;
        self.expect(TokenKind::Semi, "after equation")?;
        Some(EquationDecl {
            lhs: LhsExpr {
                name,
                name_span,
                subscripts,
                field,
                span: name_span.to(lhs_end),
            },
            rhs,
            span: name_span.to(end),
        })
    }

    // ---- types -------------------------------------------------------------

    fn type_expr(&mut self) -> Option<TypeExpr> {
        match self.peek_kind() {
            TokenKind::KwArray => {
                let start = self.bump().span;
                self.expect(TokenKind::LBracket, "after `array`")?;
                let mut index_specs = Vec::new();
                loop {
                    index_specs.push(self.type_expr()?);
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RBracket, "after array index types")?;
                self.expect(TokenKind::KwOf, "in array type")?;
                let elem = Box::new(self.type_expr()?);
                let span = start.to(elem.span());
                Some(TypeExpr::Array {
                    index_specs,
                    elem,
                    span,
                })
            }
            TokenKind::KwRecord => {
                let start = self.bump().span;
                let mut fields = Vec::new();
                while matches!(self.peek_kind(), TokenKind::Ident(_)) {
                    let Some(decl) = self.param_decl() else {
                        self.synchronize();
                        continue;
                    };
                    self.expect(TokenKind::Semi, "after record field");
                    for (name, nspan) in &decl.names {
                        fields.push((*name, decl.ty.clone(), *nspan));
                    }
                }
                let end = self.peek().span;
                self.expect(TokenKind::KwEnd, "to close record type")?;
                Some(TypeExpr::Record {
                    fields,
                    span: start.to(end),
                })
            }
            TokenKind::LParen => {
                // Could be an enumeration `(a, b, c)` or a parenthesized
                // bound expression starting a subrange `(M+1) .. N`.
                if let TokenKind::Ident(_) = self.nth_kind(1) {
                    if matches!(self.nth_kind(2), TokenKind::Comma | TokenKind::RParen) {
                        return self.enum_type();
                    }
                }
                self.subrange_or_named()
            }
            _ => self.subrange_or_named(),
        }
    }

    fn enum_type(&mut self) -> Option<TypeExpr> {
        let start = self.expect(TokenKind::LParen, "in enumeration")?.span;
        let mut variants = Vec::new();
        loop {
            variants.push(self.expect_ident("as enumeration variant")?);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(TokenKind::RParen, "after enumeration")?.span;
        Some(TypeExpr::Enum {
            variants,
            span: start.to(end),
        })
    }

    /// Parse either `expr .. expr` (subrange) or a bare type name.
    fn subrange_or_named(&mut self) -> Option<TypeExpr> {
        let start = self.peek().span;
        let first = self.expr()?;
        if self.eat(TokenKind::DotDot) {
            let hi = self.expr()?;
            let span = start.to(hi.span());
            return Some(TypeExpr::Subrange {
                lo: first,
                hi,
                span,
            });
        }
        match first.unparen() {
            Expr::Var(name, span) => Some(TypeExpr::Named(*name, *span)),
            other => {
                self.sink.emit(
                    Diagnostic::error("E0115", "expected a type name or a `lo .. hi` subrange")
                        .with_span(other.span()),
                );
                None
            }
        }
    }

    // ---- expressions --------------------------------------------------------

    fn expr(&mut self) -> Option<Expr> {
        if self.at(TokenKind::KwIf) {
            return self.if_expr();
        }
        self.or_expr()
    }

    fn if_expr(&mut self) -> Option<Expr> {
        let start = self.expect(TokenKind::KwIf, "")?.span;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        self.expect(TokenKind::KwThen, "in `if` expression")?;
        let value = self.expr()?;
        arms.push((cond, value));
        while self.eat(TokenKind::KwElsif) {
            let c = self.expr()?;
            self.expect(TokenKind::KwThen, "in `elsif` arm")?;
            let v = self.expr()?;
            arms.push((c, v));
        }
        self.expect(TokenKind::KwElse, "in `if` expression")?;
        let else_ = Box::new(self.expr()?);
        let span = start.to(else_.span());
        Some(Expr::If { arms, else_, span })
    }

    fn or_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at(TokenKind::KwOr) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Some(lhs)
    }

    fn and_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.not_expr()?;
        while self.at(TokenKind::KwAnd) {
            self.bump();
            let rhs = self.not_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Some(lhs)
    }

    fn not_expr(&mut self) -> Option<Expr> {
        if self.at(TokenKind::KwNot) {
            let start = self.bump().span;
            let operand = self.not_expr()?;
            let span = start.to(operand.span());
            return Some(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
                span,
            });
        }
        self.rel_expr()
    }

    fn rel_expr(&mut self) -> Option<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Some(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span().to(rhs.span());
        Some(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Some(lhs)
    }

    fn mul_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::KwDiv => BinOp::IntDiv,
                TokenKind::KwMod => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Some(lhs)
    }

    fn unary_expr(&mut self) -> Option<Expr> {
        if self.at(TokenKind::Minus) {
            let start = self.bump().span;
            let operand = self.unary_expr()?;
            let span = start.to(operand.span());
            return Some(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
                span,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Option<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek_kind() {
                TokenKind::LBracket => {
                    self.bump();
                    let mut subscripts = Vec::new();
                    loop {
                        subscripts.push(self.expr()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(TokenKind::RBracket, "after subscripts")?.span;
                    let span = e.span().to(end);
                    e = Expr::Subscript {
                        base: Box::new(e),
                        subscripts,
                        span,
                    };
                }
                TokenKind::Dot => {
                    self.bump();
                    let (field, fspan) = self.expect_ident("after `.`")?;
                    let span = e.span().to(fspan);
                    e = Expr::Field {
                        base: Box::new(e),
                        field,
                        span,
                    };
                }
                _ => break,
            }
        }
        Some(e)
    }

    fn primary_expr(&mut self) -> Option<Expr> {
        match self.peek_kind() {
            TokenKind::Int(v) => {
                let t = self.bump();
                Some(Expr::IntLit(v, t.span))
            }
            TokenKind::Real(v) => {
                let t = self.bump();
                Some(Expr::RealLit(v, t.span))
            }
            TokenKind::Char(c) => {
                let t = self.bump();
                Some(Expr::CharLit(c, t.span))
            }
            TokenKind::KwTrue => {
                let t = self.bump();
                Some(Expr::BoolLit(true, t.span))
            }
            TokenKind::KwFalse => {
                let t = self.bump();
                Some(Expr::BoolLit(false, t.span))
            }
            TokenKind::Ident(name) => {
                let t = self.bump();
                if self.at(TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen, "after call arguments")?.span;
                    Some(Expr::Call {
                        name,
                        name_span: t.span,
                        args,
                        span: t.span.to(end),
                    })
                } else {
                    Some(Expr::Var(name, t.span))
                }
            }
            TokenKind::LParen => {
                let start = self.bump().span;
                let inner = self.expr()?;
                let end = self.expect(TokenKind::RParen, "to close parenthesis")?.span;
                Some(Expr::Paren(Box::new(inner), start.to(end)))
            }
            other => {
                self.sink.emit(
                    Diagnostic::error(
                        "E0116",
                        format!("expected expression, found {}", other.describe()),
                    )
                    .with_span(self.peek().span),
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Program {
        let sink = DiagnosticSink::new();
        let toks = lex(src, &sink);
        let prog = parse_program(&toks, &sink);
        assert!(
            !sink.has_errors(),
            "unexpected parse errors: {:#?}",
            sink.snapshot()
        );
        prog
    }

    const MINI: &str = "
        Mini: module (x: int): [y: int];
        define
            y = x + 1;
        end Mini;
    ";

    #[test]
    fn parses_minimal_module() {
        let prog = parse_ok(MINI);
        assert_eq!(prog.modules.len(), 1);
        let m = &prog.modules[0];
        assert_eq!(m.name.as_str(), "Mini");
        assert_eq!(m.params.len(), 1);
        assert_eq!(m.results.len(), 1);
        assert_eq!(m.equations().count(), 1);
    }

    #[test]
    fn parses_relaxation_shape() {
        let src = "
            Relaxation: module (InitialA: array[I,J] of real;
                                M: int; maxK: int):
                        [newA: array[I,J] of real];
            type
                I, J = 0 .. M+1;
                K = 2 .. maxK;
            var
                A: array [1 .. maxK] of array[I,J] of real;
            define
                A[1] = InitialA;
                newA = A[maxK];
                A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                           then A[K-1,I,J]
                           else ( A[K-1,I,J-1]
                                + A[K-1,I-1,J]
                                + A[K-1,I,J+1]
                                + A[K-1,I+1,J] ) / 4;
            end Relaxation;
        ";
        let prog = parse_ok(src);
        let m = &prog.modules[0];
        assert_eq!(m.type_decls().count(), 2);
        assert_eq!(m.var_decls().count(), 1);
        let eqs: Vec<_> = m.equations().collect();
        assert_eq!(eqs.len(), 3);
        // eq.1: A[1] = InitialA
        assert_eq!(eqs[0].lhs.name.as_str(), "A");
        assert_eq!(eqs[0].lhs.subscripts.len(), 1);
        // eq.3 has a 3-subscript LHS and an if RHS.
        assert_eq!(eqs[2].lhs.subscripts.len(), 3);
        assert!(matches!(eqs[2].rhs, Expr::If { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let prog = parse_ok("T: module (): [y: int]; define y = 1 + 2 * 3; end T;");
        let eq = prog.modules[0].equations().next().unwrap();
        match &eq.rhs {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("expected Add at top, got {other:?}"),
        }
    }

    #[test]
    fn if_with_elsif_chain() {
        let prog = parse_ok(
            "T: module (x: int): [y: int];
             define y = if x < 0 then 0 elsif x > 10 then 10 else x;
             end T;",
        );
        let eq = prog.modules[0].equations().next().unwrap();
        match &eq.rhs {
            Expr::If { arms, .. } => assert_eq!(arms.len(), 2),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn enum_and_record_types() {
        let prog = parse_ok(
            "T: module (): [y: int];
             type
                Color = (red, green, blue);
                Pt = record x: real; y: real; end;
             define y = 1;
             end T;",
        );
        let decls: Vec<_> = prog.modules[0].type_decls().collect();
        assert!(matches!(decls[0].ty, TypeExpr::Enum { .. }));
        assert!(matches!(decls[1].ty, TypeExpr::Record { .. }));
    }

    #[test]
    fn parenthesized_subrange_bound() {
        let prog = parse_ok(
            "T: module (n: int): [y: int];
             type R = (n-1) .. (n*2);
             define y = 1;
             end T;",
        );
        let decl = prog.modules[0].type_decls().next().unwrap();
        assert!(matches!(decl.ty, TypeExpr::Subrange { .. }));
    }

    #[test]
    fn error_recovery_keeps_later_equations() {
        let sink = DiagnosticSink::new();
        let toks = lex(
            "T: module (): [y: int];
             define
                y = 1 + ;
                z = 2;
             end T;",
            &sink,
        );
        let prog = parse_program(&toks, &sink);
        assert!(sink.has_errors());
        // The bad equation is dropped but `z = 2;` survives.
        let eqs: Vec<_> = prog.modules[0].equations().collect();
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].lhs.name.as_str(), "z");
    }

    #[test]
    fn mismatched_end_name_reported() {
        let sink = DiagnosticSink::new();
        let toks = lex("A: module (): [y: int]; define y = 1; end B;", &sink);
        parse_program(&toks, &sink);
        assert!(sink.has_errors());
    }

    #[test]
    fn record_field_lhs() {
        let prog = parse_ok(
            "T: module (): [y: real];
             type Pt = record a: real; b: real; end;
             var p: Pt;
             define
                p.a = 1.0;
                p.b = 2.0;
                y = p.a + p.b;
             end T;",
        );
        let eqs: Vec<_> = prog.modules[0].equations().collect();
        assert_eq!(eqs[0].lhs.field.map(|(s, _)| s.as_str()), Some("a"));
    }

    #[test]
    fn multiple_modules() {
        let prog = parse_ok(
            "A: module (): [y: int]; define y = 1; end A;
             B: module (): [z: int]; define z = 2; end B;",
        );
        assert_eq!(prog.modules.len(), 2);
    }

    #[test]
    fn builtin_call_syntax() {
        let prog = parse_ok("T: module (x: real): [y: real]; define y = max(abs(x), 1.0); end T;");
        let eq = prog.modules[0].equations().next().unwrap();
        assert!(matches!(eq.rhs, Expr::Call { .. }));
    }
}
