//! Pretty-printers: AST → PS surface syntax and HIR → annotated listing.
//!
//! The AST printer supports the Figure-1 round-trip test (parse the paper's
//! Relaxation module, print it, re-parse, compare structure); the HIR
//! printer is a debugging aid showing classified subscripts.

use crate::ast::{self, Expr, Module, TypeExpr};
use crate::hir::{HExpr, HirModule, LhsSub, SubscriptExpr};
use ps_support::pretty::PrettyWriter;

/// Render a module back to PS source.
pub fn print_module(m: &Module) -> String {
    let mut w = PrettyWriter::new();
    w.write(&format!("{}: module (", m.name));
    let params: Vec<String> = m.params.iter().map(print_param).collect();
    w.write(&params.join("; "));
    w.write("):");
    w.newline();
    w.indented(|w| {
        let results: Vec<String> = m.results.iter().map(print_param).collect();
        w.line(&format!("[{}];", results.join(", ")));
    });
    for section in &m.sections {
        match section {
            ast::Section::Types(ds) => {
                w.line("type");
                w.indented(|w| {
                    for d in ds {
                        let names: Vec<String> =
                            d.names.iter().map(|(n, _)| n.to_string()).collect();
                        w.line(&format!("{} = {};", names.join(", "), print_type(&d.ty)));
                    }
                });
            }
            ast::Section::Vars(ds) => {
                w.line("var");
                w.indented(|w| {
                    for d in ds {
                        let names: Vec<String> =
                            d.names.iter().map(|(n, _)| n.to_string()).collect();
                        w.line(&format!("{}: {};", names.join(", "), print_type(&d.ty)));
                    }
                });
            }
            ast::Section::Define(eqs) => {
                w.line("define");
                w.indented(|w| {
                    for eq in eqs {
                        let mut lhs = eq.lhs.name.to_string();
                        if let Some((f, _)) = eq.lhs.field {
                            lhs.push('.');
                            lhs.push_str(f.as_str());
                        }
                        if !eq.lhs.subscripts.is_empty() {
                            let subs: Vec<String> =
                                eq.lhs.subscripts.iter().map(print_expr).collect();
                            lhs = format!("{lhs}[{}]", subs.join(", "));
                        }
                        w.line(&format!("{lhs} = {};", print_expr(&eq.rhs)));
                    }
                });
            }
        }
    }
    w.line(&format!("end {};", m.name));
    w.finish()
}

fn print_param(p: &ast::ParamDecl) -> String {
    let names: Vec<String> = p.names.iter().map(|(n, _)| n.to_string()).collect();
    format!("{}: {}", names.join(", "), print_type(&p.ty))
}

/// Render a type expression.
pub fn print_type(t: &TypeExpr) -> String {
    match t {
        TypeExpr::Named(n, _) => n.to_string(),
        TypeExpr::Subrange { lo, hi, .. } => {
            format!("{} .. {}", print_expr(lo), print_expr(hi))
        }
        TypeExpr::Array {
            index_specs, elem, ..
        } => {
            let specs: Vec<String> = index_specs.iter().map(print_type).collect();
            format!("array [{}] of {}", specs.join(", "), print_type(elem))
        }
        TypeExpr::Record { fields, .. } => {
            let fs: Vec<String> = fields
                .iter()
                .map(|(n, t, _)| format!("{n}: {}", print_type(t)))
                .collect();
            format!("record {} end", fs.join("; "))
        }
        TypeExpr::Enum { variants, .. } => {
            let vs: Vec<String> = variants.iter().map(|(n, _)| n.to_string()).collect();
            format!("({})", vs.join(", "))
        }
    }
}

/// Render an expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v, _) => v.to_string(),
        Expr::RealLit(v, _) => {
            let s = v.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::BoolLit(v, _) => v.to_string(),
        Expr::CharLit(c, _) => format!("'{c}'"),
        Expr::Var(n, _) => n.to_string(),
        Expr::Subscript {
            base, subscripts, ..
        } => {
            let subs: Vec<String> = subscripts.iter().map(print_expr).collect();
            format!("{}[{}]", print_expr(base), subs.join(", "))
        }
        Expr::Field { base, field, .. } => format!("{}.{field}", print_expr(base)),
        Expr::Call { name, args, .. } => {
            let a: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", a.join(", "))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("{} {} {}", print_expr(lhs), op.as_str(), print_expr(rhs))
        }
        Expr::Unary { op, operand, .. } => match op {
            ast::UnOp::Neg => format!("-{}", print_expr(operand)),
            ast::UnOp::Not => format!("not {}", print_expr(operand)),
        },
        Expr::If { arms, else_, .. } => {
            let mut s = String::new();
            for (i, (c, v)) in arms.iter().enumerate() {
                let kw = if i == 0 { "if" } else { " elsif" };
                s.push_str(&format!("{kw} {} then {}", print_expr(c), print_expr(v)));
            }
            s.push_str(&format!(" else {}", print_expr(else_)));
            s
        }
        Expr::Paren(inner, _) => format!("({})", print_expr(inner)),
    }
}

/// Render a checked module as an annotated listing (debugging aid).
pub fn print_hir(m: &HirModule) -> String {
    let mut w = PrettyWriter::new();
    w.line(&format!("module {}", m.name));
    w.indented(|w| {
        for (id, d) in m.data.iter_enumerated() {
            let dims: Vec<String> = d
                .dims()
                .iter()
                .map(|&sr| m.subranges[sr].display_name())
                .collect();
            let dims = if dims.is_empty() {
                String::new()
            } else {
                format!(" [{}]", dims.join(", "))
            };
            w.line(&format!("{id:?} {:?} {}{dims}: {}", d.kind, d.name, d.ty));
        }
        for (_, eq) in m.equations.iter_enumerated() {
            let subs: Vec<String> = eq
                .lhs_subs
                .iter()
                .map(|s| match s {
                    LhsSub::Const(a) => a.to_string(),
                    LhsSub::Var(iv) => eq.ivs[*iv].name.to_string(),
                })
                .collect();
            let target = if subs.is_empty() {
                m.data[eq.lhs].name.to_string()
            } else {
                format!("{}[{}]", m.data[eq.lhs].name, subs.join(", "))
            };
            w.line(&format!(
                "{}: {target} = {}",
                eq.label,
                print_hexpr(m, eq, &eq.rhs)
            ));
        }
    });
    w.finish()
}

/// Render an HIR expression (uses equation context for index-var names).
pub fn print_hexpr(m: &HirModule, eq: &crate::hir::Equation, e: &HExpr) -> String {
    match e {
        HExpr::Int(v) => v.to_string(),
        HExpr::Real(v) => format!("{v:?}"),
        HExpr::Bool(v) => v.to_string(),
        HExpr::Char(c) => format!("'{c}'"),
        HExpr::EnumConst(eid, idx) => m.enums[*eid].variants[*idx].to_string(),
        HExpr::ReadScalar(d) => m.data[*d].name.to_string(),
        HExpr::ReadField(d, idx) => {
            let rec = match &m.data[*d].ty {
                crate::types::Ty::Record(rid) => &m.records[*rid],
                _ => return format!("{}.<field{idx}>", m.data[*d].name),
            };
            format!("{}.{}", m.data[*d].name, rec.fields[*idx].0)
        }
        HExpr::Iv(iv) => eq.ivs[*iv].name.to_string(),
        HExpr::ReadArray { array, subs, .. } => {
            let ss: Vec<String> = subs.iter().map(|s| print_subscript(m, eq, s)).collect();
            format!("{}[{}]", m.data[*array].name, ss.join(", "))
        }
        HExpr::Binary { op, lhs, rhs } => format!(
            "({} {} {})",
            print_hexpr(m, eq, lhs),
            op.as_str(),
            print_hexpr(m, eq, rhs)
        ),
        HExpr::Unary { op, operand } => match op {
            ast::UnOp::Neg => format!("-{}", print_hexpr(m, eq, operand)),
            ast::UnOp::Not => format!("not {}", print_hexpr(m, eq, operand)),
        },
        HExpr::If { arms, else_ } => {
            let mut s = String::new();
            for (i, (c, v)) in arms.iter().enumerate() {
                let kw = if i == 0 { "if" } else { " elsif" };
                s.push_str(&format!(
                    "{kw} {} then {}",
                    print_hexpr(m, eq, c),
                    print_hexpr(m, eq, v)
                ));
            }
            s.push_str(&format!(" else {}", print_hexpr(m, eq, else_)));
            s
        }
        HExpr::Call { builtin, args } => {
            let a: Vec<String> = args.iter().map(|x| print_hexpr(m, eq, x)).collect();
            format!("{}({})", builtin.name(), a.join(", "))
        }
        HExpr::CastReal(inner) => format!("real({})", print_hexpr(m, eq, inner)),
    }
}

/// Render a classified subscript.
pub fn print_subscript(m: &HirModule, eq: &crate::hir::Equation, s: &SubscriptExpr) -> String {
    match s {
        SubscriptExpr::Var(iv) => eq.ivs[*iv].name.to_string(),
        SubscriptExpr::VarOffset(iv, d) => {
            if *d >= 0 {
                format!("{}+{d}", eq.ivs[*iv].name)
            } else {
                format!("{}-{}", eq.ivs[*iv].name, -d)
            }
        }
        SubscriptExpr::Affine(a) => {
            let mut parts: Vec<String> = Vec::new();
            for &(iv, c) in &a.iv_terms {
                let name = eq.ivs[iv].name;
                parts.push(match c {
                    1 => name.to_string(),
                    -1 => format!("-{name}"),
                    c => format!("{c}*{name}"),
                });
            }
            let rest = a.rest.to_string();
            if rest != "0" || parts.is_empty() {
                parts.push(rest);
            }
            parts.join(" + ").replace("+ -", "- ")
        }
        SubscriptExpr::Dynamic(e) => print_hexpr(m, eq, e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_program;
    use ps_support::DiagnosticSink;

    #[test]
    fn ast_print_round_trips() {
        let src = "
            T: module (x: int; ys: array[1..3] of real): [z: real];
            type I = 1 .. 3;
            define
                z = if x > 0 then ys[x] else 0.0;
            end T;
        ";
        let sink = DiagnosticSink::new();
        let prog = parse_program(&lex(src, &sink), &sink);
        assert!(!sink.has_errors());
        let printed = print_module(&prog.modules[0]);

        // Re-parse the printed text; structure must survive.
        let sink2 = DiagnosticSink::new();
        let prog2 = parse_program(&lex(&printed, &sink2), &sink2);
        assert!(!sink2.has_errors(), "reparse failed:\n{printed}");
        let printed2 = print_module(&prog2.modules[0]);
        assert_eq!(printed, printed2, "printing must be a fixed point");
    }
}
