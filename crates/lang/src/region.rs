//! Definition-region analysis: the single-assignment discipline for arrays.
//!
//! PS is a single-assignment language, but an *array* may legally be defined
//! by several equations covering disjoint regions — the paper's Relaxation
//! module defines `A[1]` in eq.1 and `A[K,I,J]` for `K = 2..maxK` in eq.3.
//! This pass checks, per data item:
//!
//! * scalars and record fields have **exactly one** defining equation;
//! * arrays have at least one definition, pairwise **provably disjoint**
//!   definitions (or a warning when disjointness is unprovable), and —
//!   when provable in the affine bound algebra — definitions that **tile**
//!   the declared index space exactly (a warning, not an error, otherwise:
//!   incompletely defined elements surface as runtime errors).

use crate::bounds::Affine;
use crate::hir::{DataId, DataKind, Equation, HirModule, LhsSub};
use crate::types::Ty;
use ps_support::{Diagnostic, DiagnosticSink};

/// One dimension of a definition region.
#[derive(Clone, Debug)]
enum DimPattern {
    /// A single plane at a parameter-affine position.
    Point(Affine),
    /// The full range of a subrange `lo..hi`.
    Range(Affine, Affine),
}

/// Three-valued comparison result for symbolic analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tri {
    Yes,
    No,
    Unknown,
}

fn patterns_of(module: &HirModule, eq: &Equation) -> Vec<DimPattern> {
    eq.lhs_subs
        .iter()
        .map(|s| match s {
            LhsSub::Const(a) => DimPattern::Point(a.clone()),
            LhsSub::Var(iv) => {
                let sr = &module.subranges[eq.ivs[*iv].subrange];
                DimPattern::Range(sr.lo.clone(), sr.hi.clone())
            }
        })
        .collect()
}

/// Is the intersection of two dim patterns provably empty / nonempty?
fn dims_disjoint(a: &DimPattern, b: &DimPattern) -> Tri {
    match (a, b) {
        (DimPattern::Point(x), DimPattern::Point(y)) => match x.const_difference(y) {
            Some(0) => Tri::No,
            Some(_) => Tri::Yes,
            None => Tri::Unknown,
        },
        (DimPattern::Point(p), DimPattern::Range(lo, hi))
        | (DimPattern::Range(lo, hi), DimPattern::Point(p)) => {
            let below = lo.const_difference(p).map(|d| d > 0); // lo > p
            let above = p.const_difference(hi).map(|d| d > 0); // p > hi
            match (below, above) {
                (Some(true), _) | (_, Some(true)) => Tri::Yes,
                (Some(false), Some(false)) => Tri::No,
                _ => Tri::Unknown,
            }
        }
        (DimPattern::Range(lo1, hi1), DimPattern::Range(lo2, hi2)) => {
            // Structurally identical ranges overlap (declared subranges are
            // nonempty by assumption; the runtime validates that).
            if lo1.const_difference(lo2) == Some(0) && hi1.const_difference(hi2) == Some(0) {
                return Tri::No;
            }
            let sep1 = lo2.const_difference(hi1).map(|d| d > 0); // lo2 > hi1
            let sep2 = lo1.const_difference(hi2).map(|d| d > 0); // lo1 > hi2
            match (sep1, sep2) {
                (Some(true), _) | (_, Some(true)) => Tri::Yes,
                (Some(false), Some(false)) => Tri::No,
                _ => Tri::Unknown,
            }
        }
    }
}

/// Run the analysis over every data item of `module`.
pub fn check_regions(module: &HirModule, sink: &DiagnosticSink) {
    for (data_id, item) in module.data.iter_enumerated() {
        if item.kind == DataKind::Param {
            continue;
        }
        match &item.ty {
            Ty::Record(rid) => check_record(module, sink, data_id, *rid),
            Ty::Array { .. } => check_array(module, sink, data_id),
            Ty::Error => {}
            _ => check_scalar(module, sink, data_id),
        }
    }
}

fn check_scalar(module: &HirModule, sink: &DiagnosticSink, data_id: DataId) {
    let defs = module.defs_of(data_id);
    let item = &module.data[data_id];
    match defs.len() {
        0 => sink.emit(
            Diagnostic::error("E0270", format!("`{}` has no defining equation", item.name))
                .with_span(item.span),
        ),
        1 => {}
        _ => sink.emit(
            Diagnostic::error(
                "E0271",
                format!("`{}` is defined by {} equations", item.name, defs.len()),
            )
            .with_span(module.equations[defs[1]].span),
        ),
    }
}

fn check_record(
    module: &HirModule,
    sink: &DiagnosticSink,
    data_id: DataId,
    rid: crate::types::RecordId,
) {
    let item = &module.data[data_id];
    let rec = &module.records[rid];
    for (fidx, (fname, _)) in rec.fields.iter().enumerate() {
        let defs: Vec<_> = module
            .defs_of(data_id)
            .into_iter()
            .filter(|&e| module.equations[e].lhs_field == Some(fidx))
            .collect();
        match defs.len() {
            0 => sink.emit(
                Diagnostic::error(
                    "E0270",
                    format!("field `{}.{}` has no defining equation", item.name, fname),
                )
                .with_span(item.span),
            ),
            1 => {}
            _ => sink.emit(
                Diagnostic::error(
                    "E0271",
                    format!(
                        "field `{}.{}` is defined by {} equations",
                        item.name,
                        fname,
                        defs.len()
                    ),
                )
                .with_span(module.equations[defs[1]].span),
            ),
        }
    }
}

fn check_array(module: &HirModule, sink: &DiagnosticSink, data_id: DataId) {
    let item = &module.data[data_id];
    let defs = module.defs_of(data_id);
    if defs.is_empty() {
        sink.emit(
            Diagnostic::error("E0270", format!("`{}` has no defining equation", item.name))
                .with_span(item.span),
        );
        return;
    }

    let patterns: Vec<Vec<DimPattern>> = defs
        .iter()
        .map(|&e| patterns_of(module, &module.equations[e]))
        .collect();

    // Pairwise disjointness: regions are disjoint when *some* dimension is
    // provably disjoint; they provably overlap when *every* dimension
    // provably intersects.
    for i in 0..defs.len() {
        for j in (i + 1)..defs.len() {
            let mut any_disjoint = false;
            let mut all_overlap = true;
            for (a, b) in patterns[i].iter().zip(&patterns[j]) {
                match dims_disjoint(a, b) {
                    Tri::Yes => any_disjoint = true,
                    Tri::No => {}
                    Tri::Unknown => all_overlap = false,
                }
            }
            if any_disjoint {
                continue;
            }
            let eq_i = &module.equations[defs[i]];
            let eq_j = &module.equations[defs[j]];
            if all_overlap {
                sink.emit(
                    Diagnostic::error(
                        "E0272",
                        format!(
                            "`{}` is multiply defined: {} and {} cover overlapping regions",
                            item.name, eq_i.label, eq_j.label
                        ),
                    )
                    .with_span(eq_j.span)
                    .with_note(
                        format!("first definition in {}", eq_i.label),
                        Some(eq_i.span),
                    ),
                );
            } else {
                sink.emit(
                    Diagnostic::warning(
                        "E0273",
                        format!(
                            "cannot prove that {} and {} define disjoint regions of `{}`",
                            eq_i.label, eq_j.label, item.name
                        ),
                    )
                    .with_span(eq_j.span),
                );
            }
        }
    }

    check_coverage(module, sink, data_id, &defs, &patterns);
}

/// Best-effort tiling check: provable only in simple (but common) shapes.
fn check_coverage(
    module: &HirModule,
    sink: &DiagnosticSink,
    data_id: DataId,
    defs: &[crate::hir::EqId],
    patterns: &[Vec<DimPattern>],
) {
    let item = &module.data[data_id];
    let dims = item.dims();

    // Single definition covering every dimension fully?
    if defs.len() == 1 {
        let full = patterns[0].iter().zip(dims).all(|(p, &d)| {
            let decl = &module.subranges[d];
            match p {
                DimPattern::Range(lo, hi) => {
                    lo.const_difference(&decl.lo) == Some(0)
                        && hi.const_difference(&decl.hi) == Some(0)
                }
                DimPattern::Point(_) => false,
            }
        });
        if !full {
            sink.emit(
                Diagnostic::warning(
                    "E0274",
                    format!(
                        "the single definition of `{}` may not cover the whole array",
                        item.name
                    ),
                )
                .with_span(module.equations[defs[0]].span),
            );
        }
        return;
    }

    // Multiple definitions: provable when they agree on all dimensions
    // except one, and the pieces in that dimension tile the declared range.
    let rank = dims.len();
    let mut varying_dim: Option<usize> = None;
    for d in 0..rank {
        let all_full = patterns.iter().all(|p| {
            let decl = &module.subranges[dims[d]];
            matches!(&p[d], DimPattern::Range(lo, hi)
                if lo.const_difference(&decl.lo) == Some(0)
                    && hi.const_difference(&decl.hi) == Some(0))
        });
        if all_full {
            continue;
        }
        if varying_dim.is_some() {
            // Too complex to prove; stay silent rather than noisy — the
            // disjointness check above already guards correctness.
            return;
        }
        varying_dim = Some(d);
    }
    let Some(d) = varying_dim else {
        return;
    };

    // Collect pieces in dimension d as (lo, hi) affine pairs.
    let mut pieces: Vec<(Affine, Affine)> = patterns
        .iter()
        .map(|p| match &p[d] {
            DimPattern::Point(a) => (a.clone(), a.clone()),
            DimPattern::Range(lo, hi) => (lo.clone(), hi.clone()),
        })
        .collect();
    let decl = &module.subranges[dims[d]];

    // Sort by provable offset from the declared low bound; bail out when
    // unprovable.
    let mut keyed: Vec<(i64, Affine, Affine)> = Vec::new();
    for (lo, hi) in pieces.drain(..) {
        match lo.const_difference(&decl.lo) {
            Some(k) => keyed.push((k, lo, hi)),
            None => return,
        }
    }
    keyed.sort_by_key(|(k, _, _)| *k);

    let mut ok = keyed.first().map(|(k, _, _)| *k == 0).unwrap_or(false);
    if ok {
        for w in keyed.windows(2) {
            let (_, _, prev_hi) = &w[0];
            let (_, next_lo, _) = &w[1];
            if next_lo.const_difference(prev_hi) != Some(1) {
                ok = false;
                break;
            }
        }
    }
    if ok {
        let (_, _, last_hi) = keyed.last().expect("nonempty");
        ok = last_hi.const_difference(&decl.hi) == Some(0);
    }
    if !ok {
        sink.emit(
            Diagnostic::warning(
                "E0274",
                format!(
                    "the definitions of `{}` may not tile dimension {} ({}..{})",
                    item.name, d, decl.lo, decl.hi
                ),
            )
            .with_span(item.span),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_support::Symbol;

    fn aff_const(k: i64) -> Affine {
        Affine::constant(k)
    }

    fn aff_param(p: &str) -> Affine {
        Affine::param(Symbol::intern(p))
    }

    #[test]
    fn point_point_disjointness() {
        let a = DimPattern::Point(aff_const(1));
        let b = DimPattern::Point(aff_const(2));
        assert_eq!(dims_disjoint(&a, &b), Tri::Yes);
        assert_eq!(dims_disjoint(&a, &a), Tri::No);
        let p = DimPattern::Point(aff_param("M"));
        assert_eq!(dims_disjoint(&a, &p), Tri::Unknown);
    }

    #[test]
    fn point_range_disjointness() {
        let range = DimPattern::Range(aff_const(2), aff_param("maxK"));
        assert_eq!(
            dims_disjoint(&DimPattern::Point(aff_const(1)), &range),
            Tri::Yes,
            "1 < lo bound 2"
        );
        assert_eq!(
            dims_disjoint(&DimPattern::Point(aff_const(2)), &range),
            Tri::Unknown,
            "2 >= 2 but vs maxK unknown"
        );
        let bounded = DimPattern::Range(aff_const(2), aff_const(9));
        assert_eq!(
            dims_disjoint(&DimPattern::Point(aff_const(5)), &bounded),
            Tri::No
        );
    }

    #[test]
    fn range_range_disjointness() {
        let a = DimPattern::Range(aff_const(0), aff_const(4));
        let b = DimPattern::Range(aff_const(5), aff_const(9));
        assert_eq!(dims_disjoint(&a, &b), Tri::Yes);
        assert_eq!(dims_disjoint(&b, &a), Tri::Yes);
        let c = DimPattern::Range(aff_const(4), aff_const(9));
        assert_eq!(dims_disjoint(&a, &c), Tri::No);
    }
}
