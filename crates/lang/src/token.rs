//! Token definitions for the PS language.

use ps_support::{Span, Symbol};
use std::fmt;

/// The kind of a lexed token.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TokenKind {
    // Literals and identifiers
    Ident(Symbol),
    Int(i64),
    Real(f64),
    Char(char),

    // Keywords
    KwModule,
    KwType,
    KwVar,
    KwDefine,
    KwEnd,
    KwIf,
    KwThen,
    KwElsif,
    KwElse,
    KwArray,
    KwOf,
    KwRecord,
    KwAnd,
    KwOr,
    KwNot,
    KwDiv,
    KwMod,
    KwTrue,
    KwFalse,

    // Punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    Colon,
    Semi,
    Comma,
    Dot,
    DotDot,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,

    /// End of input (always the last token).
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(text: &str) -> Option<TokenKind> {
        Some(match text {
            "module" => TokenKind::KwModule,
            "type" => TokenKind::KwType,
            "var" => TokenKind::KwVar,
            "define" => TokenKind::KwDefine,
            "end" => TokenKind::KwEnd,
            "if" => TokenKind::KwIf,
            "then" => TokenKind::KwThen,
            "elsif" => TokenKind::KwElsif,
            "else" => TokenKind::KwElse,
            "array" => TokenKind::KwArray,
            "of" => TokenKind::KwOf,
            "record" => TokenKind::KwRecord,
            "and" => TokenKind::KwAnd,
            "or" => TokenKind::KwOr,
            "not" => TokenKind::KwNot,
            "div" => TokenKind::KwDiv,
            "mod" => TokenKind::KwMod,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            _ => return None,
        })
    }

    /// Human-readable description used in "expected X, found Y" diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Real(v) => format!("real `{v}`"),
            TokenKind::Char(c) => format!("character '{c}'"),
            TokenKind::KwModule => "`module`".into(),
            TokenKind::KwType => "`type`".into(),
            TokenKind::KwVar => "`var`".into(),
            TokenKind::KwDefine => "`define`".into(),
            TokenKind::KwEnd => "`end`".into(),
            TokenKind::KwIf => "`if`".into(),
            TokenKind::KwThen => "`then`".into(),
            TokenKind::KwElsif => "`elsif`".into(),
            TokenKind::KwElse => "`else`".into(),
            TokenKind::KwArray => "`array`".into(),
            TokenKind::KwOf => "`of`".into(),
            TokenKind::KwRecord => "`record`".into(),
            TokenKind::KwAnd => "`and`".into(),
            TokenKind::KwOr => "`or`".into(),
            TokenKind::KwNot => "`not`".into(),
            TokenKind::KwDiv => "`div`".into(),
            TokenKind::KwMod => "`mod`".into(),
            TokenKind::KwTrue => "`true`".into(),
            TokenKind::KwFalse => "`false`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::DotDot => "`..`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Ne => "`<>`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("module"), Some(TokenKind::KwModule));
        assert_eq!(TokenKind::keyword("div"), Some(TokenKind::KwDiv));
        assert_eq!(TokenKind::keyword("Module"), None, "keywords are lowercase");
        assert_eq!(TokenKind::keyword("relax"), None);
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(TokenKind::DotDot.describe(), "`..`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
        assert_eq!(
            TokenKind::Ident(Symbol::intern("A")).describe(),
            "identifier `A`"
        );
    }
}
