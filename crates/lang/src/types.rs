//! Semantic types for checked PS modules.
//!
//! The key type is the *subrange*: a named (or anonymous) integer interval
//! with affine bounds, e.g. `I, J = 0 .. M+1`. Subranges play a double role
//! in PS, exactly as in the paper:
//!
//! 1. as **array dimension types** (`array [I, J] of real`), and
//! 2. as **index variables** in equations (`A[K, I, J] = ...` iterates the
//!    equation over the ranges of `K`, `I`, `J`).
//!
//! The scheduler's loop descriptors are therefore identified by
//! [`SubrangeId`]s, and `I` and `J` get *distinct* ids even though they have
//! equal bounds — the paper's Figure 5 `DOALL I (DOALL J ...)` depends on
//! that distinction.

use crate::bounds::Affine;
use ps_support::{new_index_type, Span, Symbol};
use std::fmt;

new_index_type! {
    /// Handle to a [`Subrange`] in a module's subrange table.
    pub struct SubrangeId; "sr"
}
new_index_type! {
    /// Handle to an enumeration declaration.
    pub struct EnumId; "en"
}
new_index_type! {
    /// Handle to a record declaration.
    pub struct RecordId; "rec"
}

/// Primitive scalar types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ScalarTy {
    Int,
    Real,
    Bool,
    Char,
}

impl ScalarTy {
    pub fn name(&self) -> &'static str {
        match self {
            ScalarTy::Int => "int",
            ScalarTy::Real => "real",
            ScalarTy::Bool => "bool",
            ScalarTy::Char => "char",
        }
    }

    pub fn is_numeric(&self) -> bool {
        matches!(self, ScalarTy::Int | ScalarTy::Real)
    }
}

/// A declared or anonymous subrange `lo .. hi` with affine bounds.
#[derive(Clone, Debug)]
pub struct Subrange {
    /// Declared name (`I`, `J`, `K`) or `None` for inline `array [1..maxK]`
    /// dimension types.
    pub name: Option<Symbol>,
    pub lo: Affine,
    pub hi: Affine,
    pub span: Span,
}

impl Subrange {
    /// Display name: the declared name, or `lo..hi` for anonymous ranges.
    pub fn display_name(&self) -> String {
        match self.name {
            Some(n) => n.to_string(),
            None => format!("{}..{}", self.lo, self.hi),
        }
    }

    /// Number of elements when the width is provable: `hi - lo + 1`.
    pub fn width(&self) -> Option<i64> {
        self.hi.const_difference(&self.lo).map(|d| d + 1)
    }

    /// True when both subranges have provably equal bounds.
    pub fn same_bounds(&self, other: &Subrange) -> bool {
        self.lo.const_difference(&other.lo) == Some(0)
            && self.hi.const_difference(&other.hi) == Some(0)
    }
}

/// An enumeration type.
#[derive(Clone, Debug)]
pub struct EnumDef {
    pub name: Symbol,
    pub variants: Vec<Symbol>,
    pub span: Span,
}

/// A record type with scalar-typed fields.
#[derive(Clone, Debug)]
pub struct RecordDef {
    pub name: Symbol,
    pub fields: Vec<(Symbol, Ty)>,
    pub span: Span,
}

impl RecordDef {
    pub fn field_index(&self, name: Symbol) -> Option<usize> {
        self.fields.iter().position(|(f, _)| *f == name)
    }
}

/// A semantic type.
#[derive(Clone, PartialEq, Debug)]
pub enum Ty {
    Scalar(ScalarTy),
    Enum(EnumId),
    /// An array with one [`SubrangeId`] per (flattened) dimension. Nested
    /// `array [..] of array [..]` declarations are flattened at check time,
    /// matching the paper's treatment of `A` as a 3-dimensional array.
    Array {
        dims: Vec<SubrangeId>,
        elem: ScalarTy,
    },
    Record(RecordId),
    /// Error recovery placeholder; compares equal to everything so one type
    /// error does not cascade.
    Error,
}

impl Ty {
    pub const INT: Ty = Ty::Scalar(ScalarTy::Int);
    pub const REAL: Ty = Ty::Scalar(ScalarTy::Real);
    pub const BOOL: Ty = Ty::Scalar(ScalarTy::Bool);

    pub fn is_error(&self) -> bool {
        matches!(self, Ty::Error)
    }

    pub fn scalar(&self) -> Option<ScalarTy> {
        match self {
            Ty::Scalar(s) => Some(*s),
            _ => None,
        }
    }

    pub fn is_numeric(&self) -> bool {
        matches!(self, Ty::Scalar(s) if s.is_numeric()) || self.is_error()
    }

    /// Array rank; 0 for scalars.
    pub fn rank(&self) -> usize {
        match self {
            Ty::Array { dims, .. } => dims.len(),
            _ => 0,
        }
    }

    /// Compatible for assignment/unification, with `int → real` widening.
    pub fn assignable_from(&self, from: &Ty) -> bool {
        if self.is_error() || from.is_error() {
            return true;
        }
        match (self, from) {
            (Ty::Scalar(ScalarTy::Real), Ty::Scalar(ScalarTy::Int)) => true,
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Scalar(s) => write!(f, "{}", s.name()),
            Ty::Enum(id) => write!(f, "enum#{id}"),
            Ty::Array { dims, elem } => {
                write!(f, "array[rank {}] of {}", dims.len(), elem.name())
            }
            Ty::Record(id) => write!(f, "record#{id}"),
            Ty::Error => write!(f, "<error>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subrange_width() {
        let sr = Subrange {
            name: Some(Symbol::intern("I")),
            lo: Affine::constant(0),
            hi: Affine::param(Symbol::intern("M")).add_const(1),
            span: Span::DUMMY,
        };
        assert_eq!(sr.width(), None, "symbolic width is unprovable");
        let sr2 = Subrange {
            name: None,
            lo: Affine::constant(1),
            hi: Affine::constant(10),
            span: Span::DUMMY,
        };
        assert_eq!(sr2.width(), Some(10));
        assert_eq!(sr2.display_name(), "1..10");
    }

    #[test]
    fn same_bounds_requires_provable_equality() {
        let m = Affine::param(Symbol::intern("M"));
        let a = Subrange {
            name: Some(Symbol::intern("I")),
            lo: Affine::constant(0),
            hi: m.add_const(1),
            span: Span::DUMMY,
        };
        let b = Subrange {
            name: Some(Symbol::intern("J")),
            lo: Affine::constant(0),
            hi: m.add_const(1),
            span: Span::DUMMY,
        };
        assert!(a.same_bounds(&b));
    }

    #[test]
    fn widening_assignability() {
        assert!(Ty::REAL.assignable_from(&Ty::INT));
        assert!(!Ty::INT.assignable_from(&Ty::REAL));
        assert!(Ty::Error.assignable_from(&Ty::BOOL));
        assert!(Ty::BOOL.assignable_from(&Ty::Error));
    }

    #[test]
    fn rank_of_types() {
        assert_eq!(Ty::INT.rank(), 0);
        let arr = Ty::Array {
            dims: vec![SubrangeId(0), SubrangeId(1)],
            elem: ScalarTy::Real,
        };
        assert_eq!(arr.rank(), 2);
    }
}
