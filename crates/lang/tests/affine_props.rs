//! Property tests for the affine bound algebra: ring laws and evaluation
//! homomorphism.

use proptest::prelude::*;
use ps_lang::Affine;
use ps_support::{FxHashMap, Symbol};

const PARAMS: [&str; 3] = ["M", "maxK", "n"];

fn arb_affine() -> impl Strategy<Value = Affine> {
    (
        prop::collection::vec((-5i64..=5, 0usize..PARAMS.len()), 0..4),
        -20i64..=20,
    )
        .prop_map(|(terms, k)| {
            let mut a = Affine::constant(k);
            for (c, p) in terms {
                a = a.add(&Affine::param(Symbol::intern(PARAMS[p])).scale(c));
            }
            a
        })
}

fn arb_env() -> impl Strategy<Value = FxHashMap<Symbol, i64>> {
    prop::collection::vec(-10i64..=10, PARAMS.len()).prop_map(|vs| {
        PARAMS
            .iter()
            .zip(vs)
            .map(|(p, v)| (Symbol::intern(p), v))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn eval_is_a_homomorphism(a in arb_affine(), b in arb_affine(), k in -7i64..=7, env in arb_env()) {
        let ea = a.eval(&env).unwrap();
        let eb = b.eval(&env).unwrap();
        prop_assert_eq!(a.add(&b).eval(&env).unwrap(), ea + eb);
        prop_assert_eq!(a.sub(&b).eval(&env).unwrap(), ea - eb);
        prop_assert_eq!(a.scale(k).eval(&env).unwrap(), ea * k);
        prop_assert_eq!(a.add_const(k).eval(&env).unwrap(), ea + k);
        if let Some(prod) = a.mul(&Affine::constant(k)) {
            prop_assert_eq!(prod.eval(&env).unwrap(), ea * k);
        }
    }

    #[test]
    fn ring_laws(a in arb_affine(), b in arb_affine(), c in arb_affine()) {
        // Commutativity and associativity of addition.
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        // Subtraction is inverse of addition.
        prop_assert_eq!(a.add(&b).sub(&b), a.clone());
        // Zero is the identity.
        prop_assert_eq!(a.add(&Affine::constant(0)), a.clone());
        // Self-subtraction cancels to a structural zero.
        let zero = a.sub(&a);
        prop_assert!(zero.is_constant());
        prop_assert_eq!(zero.as_constant(), Some(0));
    }

    #[test]
    fn const_difference_soundness(a in arb_affine(), b in arb_affine(), env in arb_env()) {
        if let Some(d) = a.const_difference(&b) {
            // Provable differences hold under EVERY environment.
            prop_assert_eq!(a.eval(&env).unwrap() - b.eval(&env).unwrap(), d);
        }
    }

    #[test]
    fn display_round_trips_through_eval(a in arb_affine(), env in arb_env()) {
        // The rendering contains every parameter with nonzero coefficient.
        let text = format!("{a}");
        for (p, c) in a.terms() {
            if c != 0 {
                prop_assert!(text.contains(p.as_str()), "{text} missing {p}");
            }
        }
        let _ = a.eval(&env);
    }
}
