//! Property tests for the affine bound algebra: ring laws and evaluation
//! homomorphism.
//!
//! Driven by a seeded LCG (no `proptest`): each property replays the same
//! 256 random cases on every run; a failure names its case index.

use ps_lang::Affine;
use ps_support::{FxHashMap, Lcg, Symbol};

const CASES: usize = 256;
const PARAMS: [&str; 3] = ["M", "maxK", "n"];

/// Random affine form: up to 3 parameter terms with coefficients in
/// -5..=5 plus a constant in -20..=20 (the original proptest strategy).
fn arb_affine(rng: &mut Lcg) -> Affine {
    let k = rng.int(-20, 20);
    let mut a = Affine::constant(k);
    for _ in 0..rng.usize(0, 3) {
        let c = rng.int(-5, 5);
        let p = rng.index(PARAMS.len());
        a = a.add(&Affine::param(Symbol::intern(PARAMS[p])).scale(c));
    }
    a
}

/// Random full environment: every parameter bound in -10..=10.
fn arb_env(rng: &mut Lcg) -> FxHashMap<Symbol, i64> {
    PARAMS
        .iter()
        .map(|p| (Symbol::intern(p), rng.int(-10, 10)))
        .collect()
}

#[test]
fn eval_is_a_homomorphism() {
    let mut rng = Lcg::new(0xaff0);
    for case in 0..CASES {
        let a = arb_affine(&mut rng);
        let b = arb_affine(&mut rng);
        let k = rng.int(-7, 7);
        let env = arb_env(&mut rng);
        let ea = a.eval(&env).unwrap();
        let eb = b.eval(&env).unwrap();
        assert_eq!(a.add(&b).eval(&env).unwrap(), ea + eb, "case {case}");
        assert_eq!(a.sub(&b).eval(&env).unwrap(), ea - eb, "case {case}");
        assert_eq!(a.scale(k).eval(&env).unwrap(), ea * k, "case {case}");
        assert_eq!(a.add_const(k).eval(&env).unwrap(), ea + k, "case {case}");
        if let Some(prod) = a.mul(&Affine::constant(k)) {
            assert_eq!(prod.eval(&env).unwrap(), ea * k, "case {case}");
        }
    }
}

#[test]
fn ring_laws() {
    let mut rng = Lcg::new(0xaff1);
    for case in 0..CASES {
        let a = arb_affine(&mut rng);
        let b = arb_affine(&mut rng);
        let c = arb_affine(&mut rng);
        // Commutativity and associativity of addition.
        assert_eq!(a.add(&b), b.add(&a), "case {case}");
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)), "case {case}");
        // Subtraction is inverse of addition.
        assert_eq!(a.add(&b).sub(&b), a.clone(), "case {case}");
        // Zero is the identity.
        assert_eq!(a.add(&Affine::constant(0)), a.clone(), "case {case}");
        // Self-subtraction cancels to a structural zero.
        let zero = a.sub(&a);
        assert!(zero.is_constant(), "case {case}");
        assert_eq!(zero.as_constant(), Some(0), "case {case}");
    }
}

#[test]
fn const_difference_soundness() {
    let mut rng = Lcg::new(0xaff2);
    for case in 0..CASES {
        let a = arb_affine(&mut rng);
        let b = arb_affine(&mut rng);
        let env = arb_env(&mut rng);
        if let Some(d) = a.const_difference(&b) {
            // Provable differences hold under EVERY environment.
            assert_eq!(
                a.eval(&env).unwrap() - b.eval(&env).unwrap(),
                d,
                "case {case}"
            );
        }
    }
}

#[test]
fn display_round_trips_through_eval() {
    let mut rng = Lcg::new(0xaff3);
    for case in 0..CASES {
        let a = arb_affine(&mut rng);
        let env = arb_env(&mut rng);
        // The rendering contains every parameter with nonzero coefficient.
        let text = format!("{a}");
        for (p, c) in a.terms() {
            if c != 0 {
                assert!(text.contains(p.as_str()), "case {case}: {text} missing {p}");
            }
        }
        let _ = a.eval(&env);
    }
}
