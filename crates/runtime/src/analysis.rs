//! Glue between the compiled tapes and the `ps-analyze` static verifier.
//!
//! The analyzer is deliberately runtime-agnostic: it consumes a neutral
//! [`pa::AProgram`] — per-equation step lists, affine addresses, declared
//! array bounds, and the scheduled loop tree. This module lowers a
//! compiled `Tapes` into that form (the instruction-level conversion
//! itself lives with the private `Insn` type in `compiled.rs`),
//! runs the three analyses, and maps the per-array verdicts back onto
//! `DataId`s as the tag-elision mask [`crate::Program`] threads through
//! instantiation and specialization.
//!
//! Elision policy (sound by construction):
//!
//! * only Local/Result arrays elide — parameter inputs never allocate
//!   tags in the first place;
//! * windowed arrays never elide (their tags also catch window
//!   evictions, which the interval domain does not model);
//! * arrays touched by a hyperplane drain never elide (the drain copies
//!   through the tree-walker's checked accessors, outside the tapes the
//!   analyzer saw);
//! * everything else elides only when every store is proven in-bounds,
//!   injective over all enclosing counters, and pairwise disjoint across
//!   equations, and every load is proven in-bounds.

use crate::compiled::{compile_tapes, Tapes};
use crate::store::StorePlan;
use ps_analyze as pa;
use ps_lang::hir::DataKind;
use ps_lang::{DataId, HirModule};
use ps_scheduler::{Descriptor, Flowchart, LoopKind, MemoryPlan};
use ps_support::idx::Idx;

/// The result of verifying one compiled program.
pub(crate) struct AnalysisOutcome {
    pub(crate) report: pa::Report,
    /// Tag-elision mask, indexed by `DataId`.
    pub(crate) verified: Vec<bool>,
}

/// Run the static verifier over an already-compiled tape set.
pub(crate) fn analyze_tapes(
    module: &HirModule,
    flowchart: &Flowchart,
    plan: &StorePlan<'_>,
    tapes: &Tapes,
) -> AnalysisOutcome {
    // Array table: every declared array, in data order.
    let mut array_ix: Vec<usize> = vec![usize::MAX; module.data.len()];
    let mut array_ids: Vec<DataId> = Vec::new();
    let mut arrays: Vec<pa::ArrayInfo> = Vec::new();
    for (id, item) in module.data.iter_enumerated() {
        if !item.is_array() {
            continue;
        }
        array_ix[id.index()] = arrays.len();
        array_ids.push(id);
        arrays.push(pa::ArrayInfo {
            name: item.name.to_string(),
            dims: item
                .dims()
                .iter()
                .map(|&sr| {
                    let s = module.subrange(sr);
                    pa::DimInfo {
                        lo: s.lo.clone(),
                        hi: s.hi.clone(),
                    }
                })
                .collect(),
            windowed: plan.is_windowed(id),
            elidable: matches!(item.kind, DataKind::Local | DataKind::Result),
            input: item.kind == DataKind::Param,
        });
    }
    // Drained arrays copy through the tree-walker's checked accessors,
    // outside anything the analyzer inspects: never elide either side.
    let mut drained: Vec<DataId> = Vec::new();
    collect_drains(&flowchart.items, &mut drained);
    for id in drained {
        let ix = array_ix[id.index()];
        if ix != usize::MAX {
            arrays[ix].elidable = false;
        }
    }

    // Equation tapes, indexed densely in flowchart order.
    let lookup = |id: DataId| array_ix[id.index()];
    let mut eq_ix: Vec<usize> = vec![usize::MAX; module.equations.len()];
    let mut eqs: Vec<pa::EqTape> = Vec::new();
    for eq_id in flowchart.equations() {
        match tapes.analysis_tape(eq_id, module, &lookup) {
            Some(tape) => {
                eq_ix[eq_id.index()] = eqs.len();
                eqs.push(tape);
            }
            None => {
                // A scheduled equation without a tape (cannot happen with
                // the current compiler): its writes are invisible to the
                // analysis, so its target must keep runtime checks.
                let ix = array_ix[module.equations[eq_id].lhs.index()];
                if ix != usize::MAX {
                    arrays[ix].elidable = false;
                }
            }
        }
    }

    let schedule = convert_items(module, &flowchart.items, &eq_ix);
    let program = pa::AProgram {
        arrays,
        eqs,
        schedule,
    };
    let report = pa::analyze(&program);

    // Scatter the per-array verdicts back onto DataIds.
    let mut verified = vec![false; module.data.len()];
    for (ix, ok) in report.verified_mask().into_iter().enumerate() {
        verified[array_ids[ix].index()] = ok;
    }
    AnalysisOutcome { report, verified }
}

/// Compile the given scheduled module's tapes and verify them: the
/// standalone entry point for linters and tests (no [`crate::Program`]
/// needed). The report carries one verdict per declared array plus any
/// `E06xx` diagnostics; [`pa::Report::has_errors`] is the gate.
pub fn analyze_compiled(
    module: &HirModule,
    flowchart: &Flowchart,
    memory: &MemoryPlan,
) -> pa::Report {
    let plan = StorePlan::new(module, memory);
    let tapes = compile_tapes(module, &plan, flowchart, false, true);
    analyze_tapes(module, flowchart, &plan, &tapes).report
}

fn collect_drains(items: &[Descriptor], out: &mut Vec<DataId>) {
    for d in items {
        match d {
            Descriptor::Equation(_) => {}
            Descriptor::Loop(l) => collect_drains(&l.body, out),
            Descriptor::Drain(spec) => {
                out.push(spec.dst);
                out.push(spec.src);
            }
        }
    }
}

fn convert_items(module: &HirModule, items: &[Descriptor], eq_ix: &[usize]) -> Vec<pa::Node> {
    let mut out = Vec::new();
    for d in items {
        match d {
            Descriptor::Equation(eq) => {
                let ix = eq_ix[eq.index()];
                if ix != usize::MAX {
                    out.push(pa::Node::Eq(ix));
                }
            }
            Descriptor::Loop(l) => {
                let s = module.subrange(l.subrange);
                out.push(pa::Node::Loop {
                    parallel: l.kind == LoopKind::Doall,
                    name: l.name.clone(),
                    lo: s.lo.clone(),
                    hi: s.hi.clone(),
                    bindings: l
                        .bindings
                        .iter()
                        .filter(|(eq, _)| eq_ix[eq.index()] != usize::MAX)
                        .map(|&(eq, iv)| (eq_ix[eq.index()], iv.index() as u16))
                        .collect(),
                    body: convert_items(module, &l.body, eq_ix),
                });
            }
            // The drain is not an equation tape; its safety is delegated
            // to the runtime accessors (see module docs).
            Descriptor::Drain(_) => {}
        }
    }
    out
}
