//! The compiled evaluation engine: typed register bytecode, split along
//! the compile-once / run-many seam.
//!
//! Lowering happens **once per [`crate::Program`]**, not once per run.
//! Every equation scheduled in the flowchart is lowered to a flat
//! postorder instruction tape over *typed, untagged* registers — separate
//! `f64` / `i64` / `bool` files, with types synthesized ahead of time by
//! `HirModule::expr_scalar_ty`. An iteration of a `DO`/`DOALL` body then
//! executes as a non-recursive tape walk with direct buffer loads and
//! stores. The artifact splits in three:
//!
//! * [`Tapes`] — the parameter-*independent* program: instruction tapes,
//!   register-file sizes, constant pools, the parameter-register preload
//!   table, and *symbolic* addresses ([`SymAddr`]: per-dimension affine
//!   forms over registers, not yet folded against any layout).
//! * [`Spec`] — one cheap per-parameter-layout *specialization*: every
//!   symbolic address folded against the concrete array layouts into
//!   strength-reduced physical offsets. Cached per distinct integer
//!   parameter vector, so repeat runs skip it entirely.
//! * [`ExecProg`] — one run's execution view: the tapes + spec + the live
//!   store's typed buffers resolved by index.
//!
//! The engine's invariants:
//!
//! * **No tagged dispatch**: every instruction knows its operand types, so
//!   there is no per-node `Value` matching.
//! * **Counters are registers**: the first `i64` registers of each
//!   equation's frame *are* its loop counters — binding a `DO`/`DOALL`
//!   index is one store, and reading `I` in an expression costs nothing.
//! * **Parameters are registers too**: a module parameter read costs
//!   nothing per iteration — each equation's frame preloads the live
//!   parameter values once per run ([`Frames::bind_params`]), and
//!   pure-integer parameter expressions (`M+1` in a boundary guard) are
//!   hoisted into *derived* registers evaluated once per run, so the tape
//!   is exactly as short as the old fold-parameters-as-constants lowering.
//! * **Strength-reduced subscripts**: each array access is folded (at
//!   specialization time) against the array's *physical* layout into
//!   `base + Σ cᵢ·regᵢ` (coefficients pre-multiplied by physical strides;
//!   dynamic subscripts and parameter terms join the dot product through
//!   the register holding their value); the window `mod` survives only for
//!   genuinely windowed dimensions.
//! * **Branch-lowered guards**: `if` conditions emit conditional jumps
//!   directly (short-circuit `and`/`or` become control flow), so boundary
//!   guards never materialize intermediate booleans.
//! * **Zero per-iteration allocations**: registers live in per-worker
//!   reusable [`Frames`]; the tape only indexes into them — with
//!   *unchecked* indexing, justified by a full validation pass over every
//!   lowered tape (`validate`) at compile time.
//! * **Optional checked mode**: when built with `check_writes`, every load
//!   and store re-derives its *logical* index from the same affine forms
//!   and performs the tree-walker's tag transitions (double-write and
//!   window-eviction detection) against the store's tag tables — the
//!   stress suites exercise the compiled path instead of falling back.
//!
//! Evaluation order matches the tree-walker exactly — the differential
//! suite asserts bit-identical outputs between engines.

#![deny(unsafe_op_in_unsafe_fn)]

use crate::ndarray::{NdSpec, ParVec, SharedBuffer};
use crate::store::{RuntimeError, Store, StorePlan};
use crate::value::Value;
use ps_analyze as pa;
use ps_lang::ast::{BinOp, UnOp};
use ps_lang::hir::{Builtin, DataKind, Equation, HExpr, LhsSub, SubscriptExpr};
use ps_lang::Affine;
use ps_lang::{DataId, EqId, HirModule, IvId, ScalarTy, Ty};
use ps_scheduler::Flowchart;
use ps_support::diag::Diagnostic;
use ps_support::idx::{Idx, IndexVec};
use ps_support::{FxHashMap, Symbol};
use std::cell::RefCell;
use std::sync::atomic::{AtomicI64, Ordering};

/// Runtime register kind. `char` and enumeration values are carried as
/// integers, mirroring [`Value`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    F,
    I,
    B,
}

fn kind_of(ty: ScalarTy) -> Kind {
    match ty {
        ScalarTy::Real => Kind::F,
        ScalarTy::Int | ScalarTy::Char => Kind::I,
        ScalarTy::Bool => Kind::B,
    }
}

/// A typed register reference.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Reg {
    F(u16),
    I(u16),
    B(u16),
}

/// Comparison operator with the tree-walker's `partial_cmp` semantics
/// (NaN compares false under everything except `<>`).
#[derive(Clone, Copy, Debug)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn from_binop(op: BinOp) -> CmpOp {
        match op {
            BinOp::Eq => CmpOp::Eq,
            BinOp::Ne => CmpOp::Ne,
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            other => panic!("{other:?} is not a comparison"),
        }
    }

    #[inline]
    fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match a.partial_cmp(&b) {
            None => matches!(self, CmpOp::Ne),
            Some(ord) => match self {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => !ord.is_eq(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            },
        }
    }
}

/// One tape instruction. Operands are register indices into the executing
/// equation's [`Frame`]; `addr` indices refer to the equation's
/// strength-reduced [`Addr`] table, `buf` indices to the program-wide
/// typed buffer tables. All indices are range-checked once by
/// `CompiledEq::validate`, so execution uses unchecked access.
#[derive(Clone, Copy, Debug)]
enum Insn {
    CopyF {
        src: u16,
        dst: u16,
    },
    CopyI {
        src: u16,
        dst: u16,
    },
    CopyB {
        src: u16,
        dst: u16,
    },
    /// Typed read of a live scalar slot (locals/results written earlier in
    /// the schedule; parameters are constant-folded instead).
    ReadScalar {
        slot: u32,
        dst: Reg,
    },
    LoadF {
        buf: u16,
        addr: u16,
        dst: u16,
    },
    LoadI {
        buf: u16,
        addr: u16,
        dst: u16,
    },
    LoadB {
        buf: u16,
        addr: u16,
        dst: u16,
    },
    AddF {
        a: u16,
        b: u16,
        dst: u16,
    },
    SubF {
        a: u16,
        b: u16,
        dst: u16,
    },
    MulF {
        a: u16,
        b: u16,
        dst: u16,
    },
    DivF {
        a: u16,
        b: u16,
        dst: u16,
    },
    MinF {
        a: u16,
        b: u16,
        dst: u16,
    },
    MaxF {
        a: u16,
        b: u16,
        dst: u16,
    },
    AddI {
        a: u16,
        b: u16,
        dst: u16,
    },
    SubI {
        a: u16,
        b: u16,
        dst: u16,
    },
    MulI {
        a: u16,
        b: u16,
        dst: u16,
    },
    DivI {
        a: u16,
        b: u16,
        dst: u16,
    },
    ModI {
        a: u16,
        b: u16,
        dst: u16,
    },
    MinI {
        a: u16,
        b: u16,
        dst: u16,
    },
    MaxI {
        a: u16,
        b: u16,
        dst: u16,
    },
    NegF {
        a: u16,
        dst: u16,
    },
    NegI {
        a: u16,
        dst: u16,
    },
    AbsF {
        a: u16,
        dst: u16,
    },
    AbsI {
        a: u16,
        dst: u16,
    },
    NotB {
        a: u16,
        dst: u16,
    },
    SqrtF {
        a: u16,
        dst: u16,
    },
    ExpF {
        a: u16,
        dst: u16,
    },
    LnF {
        a: u16,
        dst: u16,
    },
    SinF {
        a: u16,
        dst: u16,
    },
    CosF {
        a: u16,
        dst: u16,
    },
    /// `int → real` widening (checker casts and the `real` builtin).
    CastIF {
        a: u16,
        dst: u16,
    },
    TruncFI {
        a: u16,
        dst: u16,
    },
    RoundFI {
        a: u16,
        dst: u16,
    },
    CmpF {
        op: CmpOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    CmpI {
        op: CmpOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    CmpB {
        op: CmpOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    Jump {
        target: u32,
    },
    JumpIfNot {
        cond: u16,
        target: u32,
    },
    JumpIf {
        cond: u16,
        target: u32,
    },
    /// Fused compare-and-branch (branch-lowered `if` guards): jump when
    /// the comparison is *false*.
    JumpCmpFNot {
        op: CmpOp,
        a: u16,
        b: u16,
        target: u32,
    },
    JumpCmpINot {
        op: CmpOp,
        a: u16,
        b: u16,
        target: u32,
    },
    /// Fused compare-and-branch: jump when the comparison is *true*.
    JumpCmpF {
        op: CmpOp,
        a: u16,
        b: u16,
        target: u32,
    },
    JumpCmpI {
        op: CmpOp,
        a: u16,
        b: u16,
        target: u32,
    },
}

/// An affine value over `i64` registers: `base + Σ cᵢ·regᵢ`. Loop
/// counters, preloaded parameter registers, and dynamic-subscript results
/// are all plain registers, so one form covers every subscript shape —
/// and, crucially, it contains no parameter *values*, so it survives
/// unchanged across runs with different parameters.
#[derive(Clone, Debug, Default)]
struct AffDim {
    base: i64,
    terms: Vec<(u16, i64)>,
}

/// One array access before layout folding: the target array plus one
/// affine form per dimension. Produced at lowering time (parameter-free),
/// folded into an [`Addr`] per specialization.
#[derive(Clone, Debug)]
struct SymAddr {
    array: DataId,
    dims: Vec<AffDim>,
}

/// A windowed dimension: physical index is
/// `(value − lo).rem_euclid(window) · stride`.
#[derive(Clone, Debug)]
struct WinDim {
    stride: i64,
    lo: i64,
    window: i64,
    value: AffDim,
}

/// One dimension's pre-fold affine value plus its logical bounds and
/// logical stride. Carried when the program checks writes (to re-derive
/// the logical index for the tag tables) and in debug builds (to assert
/// in-range subscripts with the same strictness as `NdSpec::offset`).
#[derive(Clone, Debug)]
struct ChkDim {
    value: AffDim,
    lo: i64,
    hi: i64,
    lstride: i64,
}

/// A strength-reduced physical address: `base + Σ cᵢ·regᵢ` (coefficients
/// pre-multiplied by physical strides; constants, subscript offsets and
/// parameter-register terms folded in) plus the windowed remainder
/// dimensions. For any access into an unwindowed array — affine *or*
/// dynamic — `special` is empty and the address is a single dot product.
#[derive(Clone, Debug, Default)]
struct Addr {
    base: i64,
    lin: Vec<(u16, i64)>,
    special: Vec<WinDim>,
    /// Per-dimension logical views; empty in unchecked release builds.
    chk: Vec<ChkDim>,
}

/// A pure-integer expression over module parameters and constants.
///
/// Lowering hoists any such subexpression out of the per-iteration tape
/// into a *derived register* evaluated once per run
/// ([`Frames::bind_params`]) — the parameter-register generalisation of
/// constant folding: `M+1` in the jacobi boundary guard costs zero tape
/// instructions, for every value of `M`. Only total operators are
/// admitted (`div`/`mod` stay on the tape, where guards can protect
/// them), and arithmetic wraps — hoisting may evaluate an expression the
/// tape's guards would have skipped, so evaluation must never panic
/// (wrapping matches the release-mode semantics of the tape itself).
#[derive(Clone, Debug, PartialEq)]
enum PInt {
    Const(i64),
    /// Index into the program's parameter table.
    Param(u16),
    Add(Box<PInt>, Box<PInt>),
    Sub(Box<PInt>, Box<PInt>),
    Mul(Box<PInt>, Box<PInt>),
    Min(Box<PInt>, Box<PInt>),
    Max(Box<PInt>, Box<PInt>),
    Neg(Box<PInt>),
    Abs(Box<PInt>),
}

impl PInt {
    /// Fold constant operands eagerly so a parameter-free expression
    /// collapses to `Const` (and lands in the constant pool instead).
    fn bin(op: BinOp, a: PInt, b: PInt) -> PInt {
        if let (PInt::Const(x), PInt::Const(y)) = (&a, &b) {
            return PInt::Const(match op {
                BinOp::Add => x.wrapping_add(*y),
                BinOp::Sub => x.wrapping_sub(*y),
                BinOp::Mul => x.wrapping_mul(*y),
                other => panic!("{other:?} is not a static int op"),
            });
        }
        match op {
            BinOp::Add => PInt::Add(Box::new(a), Box::new(b)),
            BinOp::Sub => PInt::Sub(Box::new(a), Box::new(b)),
            BinOp::Mul => PInt::Mul(Box::new(a), Box::new(b)),
            other => panic!("{other:?} is not a static int op"),
        }
    }

    fn min_max(is_min: bool, a: PInt, b: PInt) -> PInt {
        if let (PInt::Const(x), PInt::Const(y)) = (&a, &b) {
            return PInt::Const(if is_min { *x.min(y) } else { *x.max(y) });
        }
        if is_min {
            PInt::Min(Box::new(a), Box::new(b))
        } else {
            PInt::Max(Box::new(a), Box::new(b))
        }
    }

    fn neg(a: PInt) -> PInt {
        match a {
            PInt::Const(x) => PInt::Const(x.wrapping_neg()),
            a => PInt::Neg(Box::new(a)),
        }
    }

    fn abs(a: PInt) -> PInt {
        match a {
            PInt::Const(x) => PInt::Const(x.wrapping_abs()),
            a => PInt::Abs(Box::new(a)),
        }
    }

    /// Evaluate under the run's parameter values. Wrapping on purpose:
    /// this may run for an expression the tape's guards would have
    /// skipped, so it must be panic-free even in debug builds.
    fn eval(&self, params: &[Value]) -> i64 {
        match self {
            PInt::Const(v) => *v,
            PInt::Param(ix) => params[*ix as usize].as_int(),
            PInt::Add(a, b) => a.eval(params).wrapping_add(b.eval(params)),
            PInt::Sub(a, b) => a.eval(params).wrapping_sub(b.eval(params)),
            PInt::Mul(a, b) => a.eval(params).wrapping_mul(b.eval(params)),
            PInt::Min(a, b) => a.eval(params).min(b.eval(params)),
            PInt::Max(a, b) => a.eval(params).max(b.eval(params)),
            PInt::Neg(a) => a.eval(params).wrapping_neg(),
            PInt::Abs(a) => a.eval(params).wrapping_abs(),
        }
    }

    /// Range-check every parameter reference (tape validation); returns
    /// fault messages instead of panicking so the caller can attach the
    /// equation and instruction context.
    fn validate(&self, n_params: usize) -> Vec<String> {
        let mut out = Vec::new();
        self.validate_into(n_params, &mut out);
        out
    }

    fn validate_into(&self, n_params: usize, out: &mut Vec<String>) {
        match self {
            PInt::Const(_) => {}
            PInt::Param(ix) => {
                if (*ix as usize) >= n_params {
                    out.push(format!("param {ix} out of range"));
                }
            }
            PInt::Add(a, b)
            | PInt::Sub(a, b)
            | PInt::Mul(a, b)
            | PInt::Min(a, b)
            | PInt::Max(a, b) => {
                a.validate_into(n_params, out);
                b.validate_into(n_params, out);
            }
            PInt::Neg(a) | PInt::Abs(a) => a.validate_into(n_params, out),
        }
    }
}

/// The compiled result store of one equation.
#[derive(Clone, Copy, Debug)]
enum OutSpec {
    Scalar { slot: u32 },
    ArrayF { buf: u16, addr: u16 },
    ArrayI { buf: u16, addr: u16 },
    ArrayB { buf: u16, addr: u16 },
}

/// One lowered equation: instruction tape, symbolic address table,
/// register-file sizes, preloaded constants, the per-run preload tables
/// (parameter registers and derived integer registers), and the final
/// store. The first `n_counters` `i64` registers are the equation's loop
/// counters in [`IvId`] order.
struct CompiledEq {
    insns: Vec<Insn>,
    sym_addrs: Vec<SymAddr>,
    n_f: u16,
    n_i: u16,
    n_b: u16,
    consts_f: Vec<(u16, f64)>,
    consts_i: Vec<(u16, i64)>,
    consts_b: Vec<(u16, bool)>,
    /// `(register, parameter-table index)` pairs filled per run.
    preload_f: Vec<(u16, u16)>,
    preload_i: Vec<(u16, u16)>,
    preload_b: Vec<(u16, u16)>,
    /// Derived integer registers: hoisted pure-parameter expressions,
    /// evaluated once per run.
    derived_i: Vec<(u16, PInt)>,
    out: OutSpec,
    src: Reg,
}

impl CompiledEq {
    /// Range-check every register, address, buffer, parameter and jump
    /// reference in the tape. Running this once at compile time makes the
    /// unchecked frame access in [`ExecProg::run_eq`] sound: execution can
    /// only touch indices this pass has seen. Specialization only *folds*
    /// the validated affine forms (it introduces no new registers), so
    /// specialized addresses need no second pass.
    ///
    /// Returns the list of faults (empty means the tape is well-formed);
    /// each names the offending instruction or table section, so the
    /// caller can surface a structural diagnostic instead of a bare index
    /// panic.
    fn validate(
        &self,
        n_bufs_f: usize,
        n_bufs_i: usize,
        n_bufs_b: usize,
        n_slots: usize,
        n_params: usize,
    ) -> Vec<String> {
        let faults: RefCell<Vec<String>> = RefCell::new(Vec::new());
        let ctx: RefCell<String> = RefCell::new(String::from("tape"));
        let fault = |msg: String| faults.borrow_mut().push(format!("{}: {msg}", ctx.borrow()));
        let f = |r: u16| {
            if r >= self.n_f {
                fault(format!("f-register {r} out of range"));
            }
        };
        let i = |r: u16| {
            if r >= self.n_i {
                fault(format!("i-register {r} out of range"));
            }
        };
        let b = |r: u16| {
            if r >= self.n_b {
                fault(format!("b-register {r} out of range"));
            }
        };
        let reg = |r: Reg| match r {
            Reg::F(x) => f(x),
            Reg::I(x) => i(x),
            Reg::B(x) => b(x),
        };
        let addr = |a: u16| {
            if (a as usize) >= self.sym_addrs.len() {
                fault(format!("addr {a} out of range"));
            }
        };
        let jump = |t: u32| {
            if (t as usize) > self.insns.len() {
                fault(format!("jump {t} out of range"));
            }
        };
        let buf_f = |x: u16| {
            if (x as usize) >= n_bufs_f {
                fault(format!("f-buffer {x} out of range"));
            }
        };
        let buf_i = |x: u16| {
            if (x as usize) >= n_bufs_i {
                fault(format!("i-buffer {x} out of range"));
            }
        };
        let buf_b = |x: u16| {
            if (x as usize) >= n_bufs_b {
                fault(format!("b-buffer {x} out of range"));
            }
        };
        let slot_ok = |slot: u32| {
            if (slot as usize) >= n_slots {
                fault(format!("slot {slot} out of range"));
            }
        };
        for (ix, insn) in self.insns.iter().enumerate() {
            *ctx.borrow_mut() = format!("insn {ix} `{insn:?}`");
            match *insn {
                Insn::CopyF { src, dst } => {
                    f(src);
                    f(dst);
                }
                Insn::CopyI { src, dst } => {
                    i(src);
                    i(dst);
                }
                Insn::CopyB { src, dst } => {
                    b(src);
                    b(dst);
                }
                Insn::ReadScalar { slot, dst } => {
                    slot_ok(slot);
                    reg(dst);
                }
                Insn::LoadF { buf, addr: a, dst } => {
                    buf_f(buf);
                    addr(a);
                    f(dst);
                }
                Insn::LoadI { buf, addr: a, dst } => {
                    buf_i(buf);
                    addr(a);
                    i(dst);
                }
                Insn::LoadB { buf, addr: a, dst } => {
                    buf_b(buf);
                    addr(a);
                    b(dst);
                }
                Insn::AddF { a, b: o, dst }
                | Insn::SubF { a, b: o, dst }
                | Insn::MulF { a, b: o, dst }
                | Insn::DivF { a, b: o, dst }
                | Insn::MinF { a, b: o, dst }
                | Insn::MaxF { a, b: o, dst } => {
                    f(a);
                    f(o);
                    f(dst);
                }
                Insn::AddI { a, b: o, dst }
                | Insn::SubI { a, b: o, dst }
                | Insn::MulI { a, b: o, dst }
                | Insn::DivI { a, b: o, dst }
                | Insn::ModI { a, b: o, dst }
                | Insn::MinI { a, b: o, dst }
                | Insn::MaxI { a, b: o, dst } => {
                    i(a);
                    i(o);
                    i(dst);
                }
                Insn::NegF { a, dst } | Insn::AbsF { a, dst } => {
                    f(a);
                    f(dst);
                }
                Insn::NegI { a, dst } | Insn::AbsI { a, dst } => {
                    i(a);
                    i(dst);
                }
                Insn::NotB { a, dst } => {
                    b(a);
                    b(dst);
                }
                Insn::SqrtF { a, dst }
                | Insn::ExpF { a, dst }
                | Insn::LnF { a, dst }
                | Insn::SinF { a, dst }
                | Insn::CosF { a, dst } => {
                    f(a);
                    f(dst);
                }
                Insn::CastIF { a, dst } => {
                    i(a);
                    f(dst);
                }
                Insn::TruncFI { a, dst } | Insn::RoundFI { a, dst } => {
                    f(a);
                    i(dst);
                }
                Insn::CmpF { a, b: o, dst, .. } => {
                    f(a);
                    f(o);
                    b(dst);
                }
                Insn::CmpI { a, b: o, dst, .. } => {
                    i(a);
                    i(o);
                    b(dst);
                }
                Insn::CmpB { a, b: o, dst, .. } => {
                    b(a);
                    b(o);
                    b(dst);
                }
                Insn::Jump { target } => jump(target),
                Insn::JumpIfNot { cond, target } | Insn::JumpIf { cond, target } => {
                    b(cond);
                    jump(target);
                }
                Insn::JumpCmpFNot {
                    a, b: o, target, ..
                }
                | Insn::JumpCmpF {
                    a, b: o, target, ..
                } => {
                    f(a);
                    f(o);
                    jump(target);
                }
                Insn::JumpCmpINot {
                    a, b: o, target, ..
                }
                | Insn::JumpCmpI {
                    a, b: o, target, ..
                } => {
                    i(a);
                    i(o);
                    jump(target);
                }
            }
        }
        *ctx.borrow_mut() = String::from("address table");
        for a in &self.sym_addrs {
            for d in &a.dims {
                for &(r, _) in &d.terms {
                    i(r);
                }
            }
        }
        *ctx.borrow_mut() = String::from("constant pool");
        for &(r, _) in &self.consts_f {
            f(r);
        }
        for &(r, _) in &self.consts_i {
            i(r);
        }
        for &(r, _) in &self.consts_b {
            b(r);
        }
        *ctx.borrow_mut() = String::from("preload table");
        let param = |p: u16| {
            if (p as usize) >= n_params {
                fault(format!("param {p} out of range"));
            }
        };
        for &(r, p) in &self.preload_f {
            f(r);
            param(p);
        }
        for &(r, p) in &self.preload_i {
            i(r);
            param(p);
        }
        for &(r, p) in &self.preload_b {
            b(r);
            param(p);
        }
        *ctx.borrow_mut() = String::from("derived registers");
        for (r, p) in &self.derived_i {
            i(*r);
            for fp in p.validate(n_params) {
                fault(fp);
            }
        }
        *ctx.borrow_mut() = String::from("output");
        reg(self.src);
        match self.out {
            OutSpec::Scalar { slot } => slot_ok(slot),
            OutSpec::ArrayF { buf, addr: a } => {
                buf_f(buf);
                addr(a);
            }
            OutSpec::ArrayI { buf, addr: a } => {
                buf_i(buf);
                addr(a);
            }
            OutSpec::ArrayB { buf, addr: a } => {
                buf_b(buf);
                addr(a);
            }
        }
        faults.into_inner()
    }
}

/// The parameter-independent compiled program: every scheduled equation's
/// tape plus the tables shared across runs. Immutable once built; one
/// [`Tapes`] serves any number of (possibly concurrent) runs.
pub(crate) struct Tapes {
    eqs: IndexVec<EqId, Option<CompiledEq>>,
    /// Which array each typed buffer index refers to; resolved against the
    /// live store per run ([`ExecProg::new`]).
    buf_f: Vec<DataId>,
    buf_i: Vec<DataId>,
    buf_b: Vec<DataId>,
    /// The parameter-register table: scalar parameters in declaration
    /// order ([`HirModule::scalar_params`]).
    params: Vec<DataId>,
    /// Tape-level checked-writes mode: loads and stores perform the
    /// logical-tag transitions of the tree-walker's checked accessors.
    pub(crate) checked: bool,
}

impl Tapes {
    pub(crate) fn params(&self) -> &[DataId] {
        &self.params
    }

    /// Lowering statistics for one equation, used by tests: instruction
    /// count and address-table size.
    #[cfg(test)]
    fn stats(&self, eq: EqId) -> (usize, usize) {
        let ceq = self.eqs[eq].as_ref().expect("lowered");
        (ceq.insns.len(), ceq.sym_addrs.len())
    }

    /// Lower one compiled equation into the `ps-analyze` neutral IR (see
    /// [`crate::analysis`]). `array_ix` maps a referenced array's `DataId`
    /// to its index in the analyzer's array table. Returns `None` for
    /// equations the flowchart never scheduled.
    ///
    /// The conversion is *structural*: every instruction keeps its exact
    /// use/def sets and the forward-only jump targets, fused integer
    /// compares carry their operator so the analyzer can refine intervals
    /// along guard edges, and entry i-registers are classified as loop
    /// counters (the leading [`IvId`]-ordered registers), exact affine
    /// forms (constants, preloaded parameters, affine derived registers),
    /// opaque preset values (`min`/`max`/`abs` derived forms), or plain
    /// temporaries.
    pub(crate) fn analysis_tape(
        &self,
        eq_id: EqId,
        module: &HirModule,
        array_ix: &dyn Fn(DataId) -> usize,
    ) -> Option<pa::EqTape> {
        let ceq = self.eqs[eq_id].as_ref()?;
        let eq = &module.equations[eq_id];
        let cmp = |op: CmpOp| match op {
            CmpOp::Eq => pa::CmpOp::Eq,
            CmpOp::Ne => pa::CmpOp::Ne,
            CmpOp::Lt => pa::CmpOp::Lt,
            CmpOp::Le => pa::CmpOp::Le,
            CmpOp::Gt => pa::CmpOp::Gt,
            CmpOp::Ge => pa::CmpOp::Ge,
        };
        let reg = |r: Reg| match r {
            Reg::F(x) => pa::Reg::F(x),
            Reg::I(x) => pa::Reg::I(x),
            Reg::B(x) => pa::Reg::B(x),
        };
        let adim = |d: &AffDim| pa::ADim {
            base: d.base,
            terms: d.terms.iter().copied().filter(|&(_, c)| c != 0).collect(),
        };
        let access = |a: u16| {
            let sym = &ceq.sym_addrs[a as usize];
            (
                array_ix(sym.array),
                sym.dims.iter().map(adim).collect::<Vec<_>>(),
            )
        };
        let mut ivals = vec![pa::IVal::Temp; ceq.n_i as usize];
        for c in ivals.iter_mut().take(eq.ivs.len()) {
            *c = pa::IVal::Counter;
        }
        for &(r, v) in &ceq.consts_i {
            ivals[r as usize] = pa::IVal::Exact(Affine::constant(v));
        }
        for &(r, p) in &ceq.preload_i {
            let name = module.data[self.params[p as usize]].name;
            ivals[r as usize] = pa::IVal::Exact(Affine::param(name));
        }
        for (r, pint) in &ceq.derived_i {
            ivals[*r as usize] = match self.pint_affine(pint, module) {
                Some(a) => pa::IVal::Exact(a),
                None => pa::IVal::Opaque,
            };
        }
        let mut steps = Vec::with_capacity(ceq.insns.len());
        for insn in &ceq.insns {
            steps.push(match *insn {
                Insn::CopyF { src, dst } => pa::Step::Op {
                    uses: vec![pa::Reg::F(src)],
                    def: Some(pa::Reg::F(dst)),
                },
                Insn::CopyI { src, dst } => pa::Step::CopyI { src, dst },
                Insn::CopyB { src, dst } => pa::Step::Op {
                    uses: vec![pa::Reg::B(src)],
                    def: Some(pa::Reg::B(dst)),
                },
                Insn::ReadScalar { dst, .. } => pa::Step::Op {
                    uses: Vec::new(),
                    def: Some(reg(dst)),
                },
                Insn::LoadF { addr, dst, .. } => {
                    let (array, dims) = access(addr);
                    pa::Step::Load {
                        array,
                        addr: dims,
                        def: pa::Reg::F(dst),
                    }
                }
                Insn::LoadI { addr, dst, .. } => {
                    let (array, dims) = access(addr);
                    pa::Step::Load {
                        array,
                        addr: dims,
                        def: pa::Reg::I(dst),
                    }
                }
                Insn::LoadB { addr, dst, .. } => {
                    let (array, dims) = access(addr);
                    pa::Step::Load {
                        array,
                        addr: dims,
                        def: pa::Reg::B(dst),
                    }
                }
                Insn::AddF { a, b, dst }
                | Insn::SubF { a, b, dst }
                | Insn::MulF { a, b, dst }
                | Insn::DivF { a, b, dst }
                | Insn::MinF { a, b, dst }
                | Insn::MaxF { a, b, dst } => pa::Step::Op {
                    uses: vec![pa::Reg::F(a), pa::Reg::F(b)],
                    def: Some(pa::Reg::F(dst)),
                },
                Insn::AddI { a, b, dst }
                | Insn::SubI { a, b, dst }
                | Insn::MulI { a, b, dst }
                | Insn::DivI { a, b, dst }
                | Insn::ModI { a, b, dst }
                | Insn::MinI { a, b, dst }
                | Insn::MaxI { a, b, dst } => pa::Step::Op {
                    uses: vec![pa::Reg::I(a), pa::Reg::I(b)],
                    def: Some(pa::Reg::I(dst)),
                },
                Insn::NegF { a, dst }
                | Insn::AbsF { a, dst }
                | Insn::SqrtF { a, dst }
                | Insn::ExpF { a, dst }
                | Insn::LnF { a, dst }
                | Insn::SinF { a, dst }
                | Insn::CosF { a, dst } => pa::Step::Op {
                    uses: vec![pa::Reg::F(a)],
                    def: Some(pa::Reg::F(dst)),
                },
                Insn::NegI { a, dst } | Insn::AbsI { a, dst } => pa::Step::Op {
                    uses: vec![pa::Reg::I(a)],
                    def: Some(pa::Reg::I(dst)),
                },
                Insn::NotB { a, dst } => pa::Step::Op {
                    uses: vec![pa::Reg::B(a)],
                    def: Some(pa::Reg::B(dst)),
                },
                Insn::CastIF { a, dst } => pa::Step::Op {
                    uses: vec![pa::Reg::I(a)],
                    def: Some(pa::Reg::F(dst)),
                },
                Insn::TruncFI { a, dst } | Insn::RoundFI { a, dst } => pa::Step::Op {
                    uses: vec![pa::Reg::F(a)],
                    def: Some(pa::Reg::I(dst)),
                },
                Insn::CmpF { a, b, dst, .. } => pa::Step::Op {
                    uses: vec![pa::Reg::F(a), pa::Reg::F(b)],
                    def: Some(pa::Reg::B(dst)),
                },
                Insn::CmpI { a, b, dst, .. } => pa::Step::Op {
                    uses: vec![pa::Reg::I(a), pa::Reg::I(b)],
                    def: Some(pa::Reg::B(dst)),
                },
                Insn::CmpB { a, b, dst, .. } => pa::Step::Op {
                    uses: vec![pa::Reg::B(a), pa::Reg::B(b)],
                    def: Some(pa::Reg::B(dst)),
                },
                Insn::Jump { target } => pa::Step::Jump {
                    target: target as usize,
                },
                Insn::JumpIfNot { cond, target } | Insn::JumpIf { cond, target } => {
                    pa::Step::Branch {
                        uses: vec![pa::Reg::B(cond)],
                        target: target as usize,
                        cmp: None,
                    }
                }
                Insn::JumpCmpFNot { op, a, b, target } => pa::Step::Branch {
                    uses: vec![pa::Reg::F(a), pa::Reg::F(b)],
                    target: target as usize,
                    cmp: Some(pa::CmpInfo {
                        op: cmp(op),
                        a: pa::Reg::F(a),
                        b: pa::Reg::F(b),
                        jump_on_true: false,
                    }),
                },
                Insn::JumpCmpF { op, a, b, target } => pa::Step::Branch {
                    uses: vec![pa::Reg::F(a), pa::Reg::F(b)],
                    target: target as usize,
                    cmp: Some(pa::CmpInfo {
                        op: cmp(op),
                        a: pa::Reg::F(a),
                        b: pa::Reg::F(b),
                        jump_on_true: true,
                    }),
                },
                Insn::JumpCmpINot { op, a, b, target } => pa::Step::Branch {
                    uses: vec![pa::Reg::I(a), pa::Reg::I(b)],
                    target: target as usize,
                    cmp: Some(pa::CmpInfo {
                        op: cmp(op),
                        a: pa::Reg::I(a),
                        b: pa::Reg::I(b),
                        jump_on_true: false,
                    }),
                },
                Insn::JumpCmpI { op, a, b, target } => pa::Step::Branch {
                    uses: vec![pa::Reg::I(a), pa::Reg::I(b)],
                    target: target as usize,
                    cmp: Some(pa::CmpInfo {
                        op: cmp(op),
                        a: pa::Reg::I(a),
                        b: pa::Reg::I(b),
                        jump_on_true: true,
                    }),
                },
            });
        }
        let store = match ceq.out {
            OutSpec::Scalar { .. } => None,
            OutSpec::ArrayF { addr, .. }
            | OutSpec::ArrayI { addr, .. }
            | OutSpec::ArrayB { addr, .. } => {
                let (array, dims) = access(addr);
                Some(pa::StoreSpec { array, dims })
            }
        };
        Some(pa::EqTape {
            label: eq.label.clone(),
            n_f: ceq.n_f,
            n_i: ceq.n_i,
            n_b: ceq.n_b,
            entry_f: ceq
                .consts_f
                .iter()
                .map(|&(r, _)| r)
                .chain(ceq.preload_f.iter().map(|&(r, _)| r))
                .collect(),
            entry_b: ceq
                .consts_b
                .iter()
                .map(|&(r, _)| r)
                .chain(ceq.preload_b.iter().map(|&(r, _)| r))
                .collect(),
            ivals,
            steps,
            store,
            result: reg(ceq.src),
        })
    }

    /// A derived register's value as an affine form over the module's
    /// integer parameters, when it is one (`min`/`max`/`abs` are not).
    fn pint_affine(&self, p: &PInt, module: &HirModule) -> Option<Affine> {
        Some(match p {
            PInt::Const(v) => Affine::constant(*v),
            PInt::Param(ix) => Affine::param(module.data[self.params[*ix as usize]].name),
            PInt::Add(a, b) => self
                .pint_affine(a, module)?
                .add(&self.pint_affine(b, module)?),
            PInt::Sub(a, b) => self
                .pint_affine(a, module)?
                .sub(&self.pint_affine(b, module)?),
            PInt::Mul(a, b) => {
                let x = self.pint_affine(a, module)?;
                let y = self.pint_affine(b, module)?;
                if let Some(k) = x.as_constant() {
                    y.scale(k)
                } else if let Some(k) = y.as_constant() {
                    x.scale(k)
                } else {
                    return None;
                }
            }
            PInt::Neg(a) => self.pint_affine(a, module)?.scale(-1),
            PInt::Min(..) | PInt::Max(..) | PInt::Abs(..) => return None,
        })
    }
}

/// One specialization of a [`Tapes`]: every symbolic address folded
/// against the concrete array layouts induced by one integer parameter
/// vector (`key`). Building one is cheap — a few arithmetic folds per
/// array access — and the result is cached per key, so the second run
/// with the same parameters does no lowering, validation, or folding at
/// all.
pub(crate) struct Spec {
    pub(crate) key: Vec<i64>,
    addrs: IndexVec<EqId, Vec<Addr>>,
}

impl Spec {
    /// How many addresses of `eq` kept a windowed special dimension.
    #[cfg(test)]
    fn special_count(&self, eq: EqId) -> usize {
        self.addrs[eq].iter().map(|a| a.special.len()).sum()
    }
}

/// Fold per-dimension affine subscripts against `spec`'s physical layout
/// into a strength-reduced [`Addr`] (the old per-run lowering's
/// `push_addr`, now executed once per parameter layout).
fn fold_addr(sym: &SymAddr, spec: &NdSpec, with_chk: bool) -> Addr {
    assert_eq!(sym.dims.len(), spec.dims.len(), "subscript rank mismatch");
    let n = spec.dims.len();
    let mut strides = vec![1i64; n];
    let mut lstrides = vec![1i64; n];
    for d in (0..n.saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * spec.dims[d + 1].physical_width();
        lstrides[d] = lstrides[d + 1] * spec.dims[d + 1].logical_width();
    }
    let mut addr = Addr::default();
    for (d, value) in sym.dims.iter().enumerate() {
        let ds = &spec.dims[d];
        let stride = strides[d];
        if with_chk {
            addr.chk.push(ChkDim {
                value: value.clone(),
                lo: ds.lo,
                hi: ds.hi,
                lstride: lstrides[d],
            });
        }
        match ds.window {
            // Genuinely windowed: the mod is load-bearing.
            Some(w) if w < ds.logical_width() => addr.special.push(WinDim {
                stride,
                lo: ds.lo,
                window: w,
                value: value.clone(),
            }),
            // Plain dimension: fold into the linear form.
            _ => {
                addr.base += (value.base - ds.lo) * stride;
                for &(r, c) in &value.terms {
                    match addr.lin.iter_mut().find(|(v, _)| *v == r) {
                        Some((_, existing)) => *existing += c * stride,
                        None => addr.lin.push((r, c * stride)),
                    }
                }
            }
        }
    }
    addr.lin.retain(|&(_, c)| c != 0);
    addr
}

/// Build the [`Spec`] for one parameter environment: evaluate each
/// referenced array's layout once, then fold every symbolic address.
pub(crate) fn specialize(
    tapes: &Tapes,
    plan: &StorePlan<'_>,
    params: &FxHashMap<Symbol, i64>,
    key: Vec<i64>,
    verified: Option<&[bool]>,
) -> Result<Spec, RuntimeError> {
    let module = plan.module;
    let mut layouts: IndexVec<DataId, Option<NdSpec>> = module.data.iter().map(|_| None).collect();
    let mut addrs: IndexVec<EqId, Vec<Addr>> = tapes.eqs.iter().map(|_| Vec::new()).collect();
    for (eq, opt) in tapes.eqs.iter_enumerated() {
        let Some(ceq) = opt else { continue };
        let mut folded = Vec::with_capacity(ceq.sym_addrs.len());
        for sym in &ceq.sym_addrs {
            if layouts[sym.array].is_none() {
                layouts[sym.array] = Some(plan.nd_spec(sym.array, params)?);
            }
            // Checked runs need the logical views — except for arrays the
            // static analysis fully verified, whose tags are elided along
            // with the per-access logical re-derivation. Debug builds keep
            // them regardless so `eval_addr` can assert in-range
            // subscripts with the same strictness as `NdSpec::offset`.
            let elided = verified.is_some_and(|m| m[sym.array.index()]);
            let with_chk = (tapes.checked && !elided) || cfg!(debug_assertions);
            folded.push(fold_addr(
                sym,
                layouts[sym.array].as_ref().expect("just filled"),
                with_chk,
            ));
        }
        addrs[eq] = folded;
    }
    Ok(Spec { key, addrs })
}

/// One run's execution view: tapes + specialized addresses + the live
/// store's typed buffers (and, in checked mode, their tag tables)
/// resolved by index. Constructed per run; cheap (three short `Vec`s).
pub(crate) struct ExecProg<'r, 'm> {
    store: &'r Store<'m>,
    tapes: &'r Tapes,
    spec: &'r Spec,
    bufs_f: Vec<&'r ParVec<f64>>,
    bufs_i: Vec<&'r ParVec<i64>>,
    bufs_b: Vec<&'r ParVec<bool>>,
    tags_f: Vec<Option<&'r [AtomicI64]>>,
    tags_i: Vec<Option<&'r [AtomicI64]>>,
    tags_b: Vec<Option<&'r [AtomicI64]>>,
}

/// Per-equation register file. The first `i`-registers are the equation's
/// loop counters; the rest (and all `f`/`b` registers) are tape
/// temporaries and preloaded constants. Reused across every iteration the
/// owning worker executes — the hot path never allocates.
#[derive(Clone, Default)]
struct Frame {
    f: Vec<f64>,
    i: Vec<i64>,
    b: Vec<bool>,
}

impl Frame {
    #[inline(always)]
    fn gf(&self, r: u16) -> f64 {
        debug_assert!((r as usize) < self.f.len());
        // SAFETY: validated against n_f, and self.f.len() == n_f.
        unsafe { *self.f.get_unchecked(r as usize) }
    }

    #[inline(always)]
    fn gi(&self, r: u16) -> i64 {
        debug_assert!((r as usize) < self.i.len());
        // SAFETY: validated against n_i.
        unsafe { *self.i.get_unchecked(r as usize) }
    }

    #[inline(always)]
    fn gb(&self, r: u16) -> bool {
        debug_assert!((r as usize) < self.b.len());
        // SAFETY: validated against n_b.
        unsafe { *self.b.get_unchecked(r as usize) }
    }

    #[inline(always)]
    fn sf(&mut self, r: u16, v: f64) {
        debug_assert!((r as usize) < self.f.len());
        // SAFETY: validated against n_f.
        unsafe { *self.f.get_unchecked_mut(r as usize) = v }
    }

    #[inline(always)]
    fn si(&mut self, r: u16, v: i64) {
        debug_assert!((r as usize) < self.i.len());
        // SAFETY: validated against n_i.
        unsafe { *self.i.get_unchecked_mut(r as usize) = v }
    }

    #[inline(always)]
    fn sb(&mut self, r: u16, v: bool) {
        debug_assert!((r as usize) < self.b.len());
        // SAFETY: validated against n_b.
        unsafe { *self.b.get_unchecked_mut(r as usize) = v }
    }
}

/// All equations' frames for one worker. Cloned per `DOALL` chunk (so
/// concurrent workers own disjoint counters) with constants preserved.
#[derive(Clone)]
pub(crate) struct Frames {
    frames: IndexVec<EqId, Frame>,
}

impl Frames {
    pub(crate) fn new(tapes: &Tapes) -> Frames {
        let frames = tapes
            .eqs
            .iter()
            .map(|opt| match opt {
                None => Frame::default(),
                Some(ceq) => {
                    let mut fr = Frame {
                        f: vec![0.0; ceq.n_f as usize],
                        i: vec![0; ceq.n_i as usize],
                        b: vec![false; ceq.n_b as usize],
                    };
                    for &(r, v) in &ceq.consts_f {
                        fr.f[r as usize] = v;
                    }
                    for &(r, v) in &ceq.consts_i {
                        fr.i[r as usize] = v;
                    }
                    for &(r, v) in &ceq.consts_b {
                        fr.b[r as usize] = v;
                    }
                    fr
                }
            })
            .collect();
        Frames { frames }
    }

    /// Bind this run's parameter values: fill every equation's parameter
    /// registers and evaluate its derived integer registers. Constants
    /// persist from [`Frames::new`], so a pooled `Frames` only needs this
    /// call to be ready for the next run.
    pub(crate) fn bind_params(&mut self, tapes: &Tapes, values: &[Value]) {
        for (eq, opt) in tapes.eqs.iter_enumerated() {
            let Some(ceq) = opt else { continue };
            let fr = &mut self.frames[eq];
            for &(r, p) in &ceq.preload_f {
                fr.f[r as usize] = values[p as usize].widen_real();
            }
            for &(r, p) in &ceq.preload_i {
                fr.i[r as usize] = values[p as usize].as_int();
            }
            for &(r, p) in &ceq.preload_b {
                fr.b[r as usize] = values[p as usize].as_bool();
            }
            for (r, pint) in &ceq.derived_i {
                fr.i[*r as usize] = pint.eval(values);
            }
        }
    }

    /// Bind loop counter `iv` of `eq` — counters are the leading
    /// `i`-registers, so this is a single indexed store.
    #[inline]
    pub(crate) fn set_iv(&mut self, eq: EqId, iv: IvId, value: i64) {
        self.frames[eq].i[iv.index()] = value;
    }

    /// Clone only the frames of `eqs` (the equations a `DOALL` chunk will
    /// execute); every other equation gets an empty frame. Keeps the
    /// per-chunk cost proportional to the loop body, not the module.
    pub(crate) fn clone_for(&self, eqs: &[EqId]) -> Frames {
        let mut frames: IndexVec<EqId, Frame> =
            self.frames.iter().map(|_| Frame::default()).collect();
        for &eq in eqs {
            frames[eq] = self.frames[eq].clone();
        }
        Frames { frames }
    }
}

/// Typed buffer table shared by all equations of one program. Buffer
/// *indices* are assigned at compile time from declared element types;
/// the live `ParVec`s are resolved per run.
struct BufTable {
    refs: Vec<Option<(Kind, u16)>>,
    f: Vec<DataId>,
    i: Vec<DataId>,
    b: Vec<DataId>,
}

impl BufTable {
    fn new(n_data: usize) -> BufTable {
        BufTable {
            refs: vec![None; n_data],
            f: Vec::new(),
            i: Vec::new(),
            b: Vec::new(),
        }
    }

    fn resolve(&mut self, module: &HirModule, id: DataId) -> (Kind, u16) {
        if let Some(r) = self.refs[id.index()] {
            return r;
        }
        let kind = kind_of(module.runtime_scalar_ty(&module.data[id].ty));
        let r = match kind {
            Kind::F => {
                self.f.push(id);
                (Kind::F, (self.f.len() - 1) as u16)
            }
            Kind::I => {
                self.i.push(id);
                (Kind::I, (self.i.len() - 1) as u16)
            }
            Kind::B => {
                self.b.push(id);
                (Kind::B, (self.b.len() - 1) as u16)
            }
        };
        self.refs[id.index()] = Some(r);
        r
    }
}

/// The parameter table: scalar parameters with a symbol lookup side-map
/// (affine subscript remainders name parameters by symbol).
struct ParamTable {
    ids: Vec<DataId>,
    by_sym: FxHashMap<Symbol, u16>,
}

impl ParamTable {
    fn new(module: &HirModule) -> ParamTable {
        let ids = module.scalar_params();
        let by_sym = ids
            .iter()
            .enumerate()
            .map(|(ix, &d)| (module.data[d].name, ix as u16))
            .collect();
        ParamTable { ids, by_sym }
    }

    fn index_of(&self, d: DataId) -> Option<u16> {
        self.ids.iter().position(|&p| p == d).map(|ix| ix as u16)
    }
}

/// Lower every equation the flowchart executes. Parameter-independent:
/// the result can be reused for any number of runs with any inputs.
/// `fold_static` enables hoisting pure-integer parameter expressions into
/// derived registers (always on in production; tests disable it to prove
/// the tapes get shorter).
pub(crate) fn compile_tapes(
    module: &HirModule,
    plan: &StorePlan<'_>,
    flowchart: &Flowchart,
    checked: bool,
    fold_static: bool,
) -> Tapes {
    let params = ParamTable::new(module);
    let mut bufs = BufTable::new(module.data.len());
    let mut eqs: IndexVec<EqId, Option<CompiledEq>> =
        module.equations.iter().map(|_| None).collect();
    for eq_id in flowchart.equations() {
        let lowerer = Lowerer::new(module, plan, &params, eq_id, &mut bufs, fold_static);
        eqs[eq_id] = Some(lowerer.lower_equation());
    }
    let n_slots = plan.slot_count();
    for (eq_id, opt) in eqs.iter_enumerated() {
        let Some(ceq) = opt else { continue };
        let faults = ceq.validate(
            bufs.f.len(),
            bufs.i.len(),
            bufs.b.len(),
            n_slots,
            params.ids.len(),
        );
        if !faults.is_empty() {
            // A malformed tape is a lowering bug, not a user error: still
            // fatal, but surfaced as a structural diagnostic naming the
            // equation, its target, and the offending instruction rather
            // than a bare index panic deep in the validator.
            let eq = &module.equations[eq_id];
            let mut diag = Diagnostic::error(
                "E0604",
                format!(
                    "internal tape fault in {} (writes `{}`): {}",
                    eq.label, module.data[eq.lhs].name, faults[0]
                ),
            );
            for extra in &faults[1..] {
                diag = diag.with_note(extra.clone(), None);
            }
            let notes: String = diag
                .notes
                .iter()
                .map(|(n, _)| format!("\n  = note: {n}"))
                .collect();
            panic!("{}[{}]: {}{notes}", diag.severity, diag.code, diag.message);
        }
    }
    Tapes {
        eqs,
        buf_f: bufs.f,
        buf_i: bufs.i,
        buf_b: bufs.b,
        params: params.ids,
        checked,
    }
}

struct Lowerer<'a, 'p, 'm> {
    module: &'m HirModule,
    plan: &'a StorePlan<'m>,
    params: &'p ParamTable,
    eq: &'m Equation,
    insns: Vec<Insn>,
    sym_addrs: Vec<SymAddr>,
    n_f: u16,
    n_i: u16,
    n_b: u16,
    consts_f: Vec<(u16, f64)>,
    consts_i: Vec<(u16, i64)>,
    consts_b: Vec<(u16, bool)>,
    /// Memoized parameter registers, indexed by parameter-table index.
    param_regs: Vec<Option<Reg>>,
    preload_f: Vec<(u16, u16)>,
    preload_i: Vec<(u16, u16)>,
    preload_b: Vec<(u16, u16)>,
    derived_i: Vec<(u16, PInt)>,
    fold_static: bool,
    bufs: &'a mut BufTable,
}

impl<'a, 'p, 'm> Lowerer<'a, 'p, 'm> {
    fn new(
        module: &'m HirModule,
        plan: &'a StorePlan<'m>,
        params: &'p ParamTable,
        eq_id: EqId,
        bufs: &'a mut BufTable,
        fold_static: bool,
    ) -> Lowerer<'a, 'p, 'm> {
        let eq = &module.equations[eq_id];
        Lowerer {
            module,
            plan,
            params,
            eq,
            insns: Vec::new(),
            sym_addrs: Vec::new(),
            n_f: 0,
            // Counters occupy the leading i-registers, one per index var.
            n_i: u16::try_from(eq.ivs.len()).expect("too many index variables"),
            n_b: 0,
            consts_f: Vec::new(),
            consts_i: Vec::new(),
            consts_b: Vec::new(),
            param_regs: vec![None; params.ids.len()],
            preload_f: Vec::new(),
            preload_i: Vec::new(),
            preload_b: Vec::new(),
            derived_i: Vec::new(),
            fold_static,
            bufs,
        }
    }

    /// The (preloaded) register holding parameter `pidx`, allocating it on
    /// first use. Reading a parameter in a hot body is thereafter free —
    /// the run-time generalization of the old constant folding.
    fn param_reg(&mut self, pidx: u16) -> Reg {
        if let Some(r) = self.param_regs[pidx as usize] {
            return r;
        }
        let item = &self.module.data[self.params.ids[pidx as usize]];
        let r = match kind_of(self.module.runtime_scalar_ty(&item.ty)) {
            Kind::F => {
                let r = self.alloc_f();
                self.preload_f.push((r, pidx));
                Reg::F(r)
            }
            Kind::I => {
                let r = self.alloc_i();
                self.preload_i.push((r, pidx));
                Reg::I(r)
            }
            Kind::B => {
                let r = self.alloc_b();
                self.preload_b.push((r, pidx));
                Reg::B(r)
            }
        };
        self.param_regs[pidx as usize] = Some(r);
        r
    }

    /// The `i64` register for the parameter named `sym` (affine subscript
    /// remainders name parameters by symbol).
    fn param_i_reg_by_sym(&mut self, sym: Symbol) -> u16 {
        let pidx = *self
            .params
            .by_sym
            .get(&sym)
            .unwrap_or_else(|| panic!("parameter `{sym}` not in table"));
        let r = self.param_reg(pidx);
        self.expect_i(r)
    }

    /// Decompose a parameter-affine form into a register-affine one:
    /// the constant part stays a constant, each parameter term becomes a
    /// `(param register, coefficient)` entry.
    fn affine_dim(&mut self, a: &ps_lang::Affine) -> AffDim {
        let mut dim = AffDim {
            base: a.constant_part(),
            terms: Vec::new(),
        };
        for (sym, c) in a.terms() {
            let reg = self.param_i_reg_by_sym(sym);
            dim.terms.push((reg, c));
        }
        dim
    }

    fn lower_equation(mut self) -> CompiledEq {
        let mut src = self.lower(&self.eq.rhs);
        let eq = self.eq;
        let out = match eq.lhs_field {
            Some(fidx) => OutSpec::Scalar {
                slot: self.plan.slot_index(eq.lhs, fidx + 1) as u32,
            },
            None if eq.lhs_subs.is_empty() => OutSpec::Scalar {
                slot: self.plan.slot_index(eq.lhs, 0) as u32,
            },
            None => {
                let dims: Vec<AffDim> = eq
                    .lhs_subs
                    .iter()
                    .map(|s| match s {
                        LhsSub::Const(a) => self.affine_dim(a),
                        LhsSub::Var(iv) => AffDim {
                            base: 0,
                            terms: vec![(iv.index() as u16, 1)],
                        },
                    })
                    .collect();
                let (kind, buf) = self.bufs.resolve(self.module, eq.lhs);
                let addr = self.push_addr(eq.lhs, dims);
                // Int results widen into real arrays, mirroring
                // `ArrayInstance::write`.
                if kind == Kind::F {
                    if let Reg::I(r) = src {
                        let dst = self.alloc_f();
                        self.insns.push(Insn::CastIF { a: r, dst });
                        src = Reg::F(dst);
                    }
                }
                match (kind, src) {
                    (Kind::F, Reg::F(_)) => OutSpec::ArrayF { buf, addr },
                    (Kind::I, Reg::I(_)) => OutSpec::ArrayI { buf, addr },
                    (Kind::B, Reg::B(_)) => OutSpec::ArrayB { buf, addr },
                    (k, s) => panic!("type mismatch writing {s:?} into {k:?} array"),
                }
            }
        };
        CompiledEq {
            insns: self.insns,
            sym_addrs: self.sym_addrs,
            n_f: self.n_f,
            n_i: self.n_i,
            n_b: self.n_b,
            consts_f: self.consts_f,
            consts_i: self.consts_i,
            consts_b: self.consts_b,
            preload_f: self.preload_f,
            preload_i: self.preload_i,
            preload_b: self.preload_b,
            derived_i: self.derived_i,
            out,
            src,
        }
    }

    // ---- static integer folding (over the parameter-register form) ----

    /// Classify `e` as a pure-integer expression over parameters and
    /// constants, if it is one. Only total operators are admitted and
    /// [`PInt::eval`] wraps, so hoisting the evaluation to run start
    /// cannot introduce a panic a guard would have prevented.
    fn static_int(&self, e: &HExpr) -> Option<PInt> {
        Some(match e {
            HExpr::Int(v) => PInt::Const(*v),
            HExpr::Char(c) => PInt::Const(*c as i64),
            HExpr::EnumConst(_, ord) => PInt::Const(*ord as i64),
            HExpr::ReadScalar(d) => {
                let item = &self.module.data[*d];
                if item.kind != DataKind::Param || item.ty != Ty::Scalar(ScalarTy::Int) {
                    return None;
                }
                PInt::Param(self.params.index_of(*d)?)
            }
            HExpr::Binary { op, lhs, rhs }
                if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) =>
            {
                PInt::bin(*op, self.static_int(lhs)?, self.static_int(rhs)?)
            }
            HExpr::Unary {
                op: UnOp::Neg,
                operand,
            } => PInt::neg(self.static_int(operand)?),
            HExpr::Call { builtin, args } => match builtin {
                Builtin::Abs => PInt::abs(self.static_int(&args[0])?),
                Builtin::Min => {
                    PInt::min_max(true, self.static_int(&args[0])?, self.static_int(&args[1])?)
                }
                Builtin::Max => PInt::min_max(
                    false,
                    self.static_int(&args[0])?,
                    self.static_int(&args[1])?,
                ),
                _ => return None,
            },
            _ => return None,
        })
    }

    /// The register holding static expression `p`: constants go to the
    /// constant pool, bare parameters to their parameter register, and
    /// everything else to a (deduplicated) derived register.
    fn static_reg(&mut self, p: PInt) -> u16 {
        match p {
            PInt::Const(v) => self.const_i(v),
            PInt::Param(ix) => {
                let r = self.param_reg(ix);
                self.expect_i(r)
            }
            p => {
                if let Some(&(r, _)) = self.derived_i.iter().find(|(_, q)| *q == p) {
                    return r;
                }
                let r = self.alloc_i();
                self.derived_i.push((r, p));
                r
            }
        }
    }

    fn alloc_f(&mut self) -> u16 {
        let r = self.n_f;
        self.n_f = self.n_f.checked_add(1).expect("f64 register file overflow");
        r
    }

    fn alloc_i(&mut self) -> u16 {
        let r = self.n_i;
        self.n_i = self.n_i.checked_add(1).expect("i64 register file overflow");
        r
    }

    fn alloc_b(&mut self) -> u16 {
        let r = self.n_b;
        self.n_b = self
            .n_b
            .checked_add(1)
            .expect("bool register file overflow");
        r
    }

    fn alloc(&mut self, kind: Kind) -> Reg {
        match kind {
            Kind::F => Reg::F(self.alloc_f()),
            Kind::I => Reg::I(self.alloc_i()),
            Kind::B => Reg::B(self.alloc_b()),
        }
    }

    fn const_f(&mut self, v: f64) -> u16 {
        if let Some(&(r, _)) = self
            .consts_f
            .iter()
            .find(|(_, x)| x.to_bits() == v.to_bits())
        {
            return r;
        }
        let r = self.alloc_f();
        self.consts_f.push((r, v));
        r
    }

    fn const_i(&mut self, v: i64) -> u16 {
        if let Some(&(r, _)) = self.consts_i.iter().find(|&&(_, x)| x == v) {
            return r;
        }
        let r = self.alloc_i();
        self.consts_i.push((r, v));
        r
    }

    fn const_b(&mut self, v: bool) -> u16 {
        if let Some(&(r, _)) = self.consts_b.iter().find(|&&(_, x)| x == v) {
            return r;
        }
        let r = self.alloc_b();
        self.consts_b.push((r, v));
        r
    }

    /// Emit a jump placeholder; returns its index for [`Lowerer::patch`].
    fn emit_jump(&mut self, insn: Insn) -> usize {
        self.insns.push(insn);
        self.insns.len() - 1
    }

    /// Point the jump at `at` to the current end of the tape.
    fn patch(&mut self, at: usize) {
        let here = self.insns.len() as u32;
        match &mut self.insns[at] {
            Insn::Jump { target }
            | Insn::JumpIfNot { target, .. }
            | Insn::JumpIf { target, .. }
            | Insn::JumpCmpFNot { target, .. }
            | Insn::JumpCmpINot { target, .. }
            | Insn::JumpCmpF { target, .. }
            | Insn::JumpCmpI { target, .. } => *target = here,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn expect_b(&self, r: Reg) -> u16 {
        match r {
            Reg::B(x) => x,
            other => panic!("expected bool operand, got {other:?}"),
        }
    }

    fn expect_i(&self, r: Reg) -> u16 {
        match r {
            Reg::I(x) => x,
            other => panic!("expected int operand, got {other:?}"),
        }
    }

    fn expect_f(&self, r: Reg) -> u16 {
        match r {
            Reg::F(x) => x,
            other => panic!("expected real operand, got {other:?}"),
        }
    }

    fn emit_copy(&mut self, src: Reg, dst: Reg) {
        match (src, dst) {
            (Reg::F(s), Reg::F(d)) => self.insns.push(Insn::CopyF { src: s, dst: d }),
            (Reg::I(s), Reg::I(d)) => self.insns.push(Insn::CopyI { src: s, dst: d }),
            (Reg::B(s), Reg::B(d)) => self.insns.push(Insn::CopyB { src: s, dst: d }),
            (s, d) => panic!("arm type mismatch: {s:?} into {d:?}"),
        }
    }

    fn lower_bool(&mut self, e: &HExpr) -> u16 {
        let r = self.lower(e);
        self.expect_b(r)
    }

    /// Branch-lower condition `e`: after the emitted code, control *falls
    /// through* iff `e` is true; every returned placeholder must be
    /// patched to the false target. Short-circuit `and`/`or` become pure
    /// control flow and comparisons fuse into compare-and-branch
    /// instructions, so guards never materialize booleans. Evaluation
    /// order matches the tree-walker exactly.
    fn lower_cond(&mut self, e: &HExpr) -> Vec<usize> {
        match e {
            HExpr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let mut false_jumps = self.lower_cond(lhs);
                false_jumps.extend(self.lower_cond(rhs));
                false_jumps
            }
            HExpr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } => {
                let lhs_false = self.lower_cond(lhs);
                // lhs true: the whole `or` is true — skip the rhs.
                let skip_rhs = self.emit_jump(Insn::Jump { target: u32::MAX });
                for j in lhs_false {
                    self.patch(j);
                }
                let false_jumps = self.lower_cond(rhs);
                self.patch(skip_rhs);
                false_jumps
            }
            HExpr::Binary { op, lhs, rhs }
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) =>
            {
                let cmp = CmpOp::from_binop(*op);
                let l = self.lower(lhs);
                let r = self.lower(rhs);
                let insn = match (l, r) {
                    (Reg::F(a), Reg::F(b)) => Insn::JumpCmpFNot {
                        op: cmp,
                        a,
                        b,
                        target: u32::MAX,
                    },
                    (Reg::I(a), Reg::I(b)) => Insn::JumpCmpINot {
                        op: cmp,
                        a,
                        b,
                        target: u32::MAX,
                    },
                    // Bool comparisons are rare: materialize.
                    (Reg::B(a), Reg::B(b)) => {
                        let dst = self.alloc_b();
                        self.insns.push(Insn::CmpB { op: cmp, a, b, dst });
                        Insn::JumpIfNot {
                            cond: dst,
                            target: u32::MAX,
                        }
                    }
                    (l, r) => panic!("comparison type mismatch: {l:?} vs {r:?}"),
                };
                vec![self.emit_jump(insn)]
            }
            // `not (a ⋈ b)`: fall through iff the comparison is false —
            // fuse to a jump-when-true branch.
            HExpr::Unary {
                op: UnOp::Not,
                operand,
            } if matches!(
                **operand,
                HExpr::Binary {
                    op: BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge,
                    ..
                }
            ) =>
            {
                let HExpr::Binary { op, lhs, rhs } = &**operand else {
                    unreachable!()
                };
                let cmp = CmpOp::from_binop(*op);
                let l = self.lower(lhs);
                let r = self.lower(rhs);
                let insn = match (l, r) {
                    (Reg::F(a), Reg::F(b)) => Insn::JumpCmpF {
                        op: cmp,
                        a,
                        b,
                        target: u32::MAX,
                    },
                    (Reg::I(a), Reg::I(b)) => Insn::JumpCmpI {
                        op: cmp,
                        a,
                        b,
                        target: u32::MAX,
                    },
                    // Bool comparisons are rare: materialize and negate.
                    (Reg::B(a), Reg::B(b)) => {
                        let dst = self.alloc_b();
                        self.insns.push(Insn::CmpB { op: cmp, a, b, dst });
                        Insn::JumpIf {
                            cond: dst,
                            target: u32::MAX,
                        }
                    }
                    (l, r) => panic!("comparison type mismatch: {l:?} vs {r:?}"),
                };
                vec![self.emit_jump(insn)]
            }
            // Anything else (bool reads, constants, nested `not`):
            // evaluate as a value and branch on it.
            other => {
                let cond = self.lower_bool(other);
                vec![self.emit_jump(Insn::JumpIfNot {
                    cond,
                    target: u32::MAX,
                })]
            }
        }
    }

    fn lower(&mut self, e: &HExpr) -> Reg {
        // Pure-integer parameter expressions vanish from the tape: they
        // evaluate once per run into a derived register.
        if self.fold_static {
            if let Some(p) = self.static_int(e) {
                return Reg::I(self.static_reg(p));
            }
        }
        match e {
            HExpr::Int(v) => Reg::I(self.const_i(*v)),
            HExpr::Real(v) => Reg::F(self.const_f(*v)),
            HExpr::Bool(v) => Reg::B(self.const_b(*v)),
            HExpr::Char(c) => Reg::I(self.const_i(*c as i64)),
            HExpr::EnumConst(_, ord) => Reg::I(self.const_i(*ord as i64)),
            HExpr::ReadScalar(d) => self.lower_read_scalar(*d),
            HExpr::ReadField(d, idx) => {
                let slot = self.plan.slot_index(*d, *idx + 1) as u32;
                let kind = kind_of(self.module.expr_scalar_ty(self.eq, e));
                let dst = self.alloc(kind);
                self.insns.push(Insn::ReadScalar { slot, dst });
                dst
            }
            // Loop counters are the leading i-registers: reading one is
            // free.
            HExpr::Iv(iv) => Reg::I(iv.index() as u16),
            HExpr::ReadArray { array, subs, .. } => {
                let dims: Vec<AffDim> = subs.iter().map(|s| self.lower_sub(s)).collect();
                let (kind, buf) = self.bufs.resolve(self.module, *array);
                let addr = self.push_addr(*array, dims);
                match kind {
                    Kind::F => {
                        let dst = self.alloc_f();
                        self.insns.push(Insn::LoadF { buf, addr, dst });
                        Reg::F(dst)
                    }
                    Kind::I => {
                        let dst = self.alloc_i();
                        self.insns.push(Insn::LoadI { buf, addr, dst });
                        Reg::I(dst)
                    }
                    Kind::B => {
                        let dst = self.alloc_b();
                        self.insns.push(Insn::LoadB { buf, addr, dst });
                        Reg::B(dst)
                    }
                }
            }
            HExpr::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs),
            HExpr::Unary { op, operand } => {
                let v = self.lower(operand);
                match (op, v) {
                    (UnOp::Neg, Reg::F(a)) => {
                        let dst = self.alloc_f();
                        self.insns.push(Insn::NegF { a, dst });
                        Reg::F(dst)
                    }
                    (UnOp::Neg, Reg::I(a)) => {
                        let dst = self.alloc_i();
                        self.insns.push(Insn::NegI { a, dst });
                        Reg::I(dst)
                    }
                    (UnOp::Not, Reg::B(a)) => {
                        let dst = self.alloc_b();
                        self.insns.push(Insn::NotB { a, dst });
                        Reg::B(dst)
                    }
                    (op, v) => panic!("bad unary {op:?} on {v:?}"),
                }
            }
            HExpr::If { arms, else_ } => {
                let kind = kind_of(self.module.expr_scalar_ty(self.eq, else_));
                let dst = self.alloc(kind);
                let mut end_jumps = Vec::with_capacity(arms.len());
                for (cond, val) in arms {
                    let false_jumps = self.lower_cond(cond);
                    let v = self.lower(val);
                    self.emit_copy(v, dst);
                    end_jumps.push(self.emit_jump(Insn::Jump { target: u32::MAX }));
                    for j in false_jumps {
                        self.patch(j);
                    }
                }
                let e = self.lower(else_);
                self.emit_copy(e, dst);
                for j in end_jumps {
                    self.patch(j);
                }
                dst
            }
            HExpr::Call { builtin, args } => self.lower_call(*builtin, args),
            HExpr::CastReal(inner) => {
                let v = self.lower(inner);
                match v {
                    Reg::F(_) => v,
                    Reg::I(a) => {
                        let dst = self.alloc_f();
                        self.insns.push(Insn::CastIF { a, dst });
                        Reg::F(dst)
                    }
                    Reg::B(_) => panic!("cannot widen bool to real"),
                }
            }
        }
    }

    fn lower_read_scalar(&mut self, d: DataId) -> Reg {
        let item = &self.module.data[d];
        if item.kind == DataKind::Param && !item.is_array() {
            // Parameters live in preloaded registers: reading one costs
            // nothing per iteration (this is what keeps `M`/`maxK` guard
            // reads out of hot DOALL bodies), yet the tape stays valid
            // for every future parameter binding.
            let pidx = self
                .params
                .index_of(d)
                .expect("scalar param is in the table");
            return self.param_reg(pidx);
        }
        if item.kind != DataKind::Param && item.is_array() {
            panic!("array `{}` read as scalar", item.name);
        }
        let slot = self.plan.slot_index(d, 0) as u32;
        let kind = kind_of(self.module.runtime_scalar_ty(&item.ty));
        let dst = self.alloc(kind);
        self.insns.push(Insn::ReadScalar { slot, dst });
        dst
    }

    fn lower_binary(&mut self, op: BinOp, lhs: &HExpr, rhs: &HExpr) -> Reg {
        match op {
            BinOp::And => {
                let dst = self.alloc_b();
                let la = self.lower_bool(lhs);
                let to_false = self.emit_jump(Insn::JumpIfNot {
                    cond: la,
                    target: u32::MAX,
                });
                let rb = self.lower_bool(rhs);
                self.insns.push(Insn::CopyB { src: rb, dst });
                let to_end = self.emit_jump(Insn::Jump { target: u32::MAX });
                self.patch(to_false);
                let cfalse = self.const_b(false);
                self.insns.push(Insn::CopyB { src: cfalse, dst });
                self.patch(to_end);
                return Reg::B(dst);
            }
            BinOp::Or => {
                let dst = self.alloc_b();
                let la = self.lower_bool(lhs);
                let to_true = self.emit_jump(Insn::JumpIf {
                    cond: la,
                    target: u32::MAX,
                });
                let rb = self.lower_bool(rhs);
                self.insns.push(Insn::CopyB { src: rb, dst });
                let to_end = self.emit_jump(Insn::Jump { target: u32::MAX });
                self.patch(to_true);
                let ctrue = self.const_b(true);
                self.insns.push(Insn::CopyB { src: ctrue, dst });
                self.patch(to_end);
                return Reg::B(dst);
            }
            _ => {}
        }
        let l = self.lower(lhs);
        let r = self.lower(rhs);
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => match (l, r) {
                (Reg::F(a), Reg::F(b)) => {
                    let dst = self.alloc_f();
                    self.insns.push(match op {
                        BinOp::Add => Insn::AddF { a, b, dst },
                        BinOp::Sub => Insn::SubF { a, b, dst },
                        _ => Insn::MulF { a, b, dst },
                    });
                    Reg::F(dst)
                }
                (Reg::I(a), Reg::I(b)) => {
                    let dst = self.alloc_i();
                    self.insns.push(match op {
                        BinOp::Add => Insn::AddI { a, b, dst },
                        BinOp::Sub => Insn::SubI { a, b, dst },
                        _ => Insn::MulI { a, b, dst },
                    });
                    Reg::I(dst)
                }
                (l, r) => panic!("{op:?} type mismatch: {l:?} vs {r:?}"),
            },
            BinOp::Div => {
                let (a, b) = (self.expect_f(l), self.expect_f(r));
                let dst = self.alloc_f();
                self.insns.push(Insn::DivF { a, b, dst });
                Reg::F(dst)
            }
            BinOp::IntDiv | BinOp::Mod => {
                let (a, b) = (self.expect_i(l), self.expect_i(r));
                let dst = self.alloc_i();
                self.insns.push(if op == BinOp::IntDiv {
                    Insn::DivI { a, b, dst }
                } else {
                    Insn::ModI { a, b, dst }
                });
                Reg::I(dst)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let cmp = CmpOp::from_binop(op);
                let dst = self.alloc_b();
                self.insns.push(match (l, r) {
                    (Reg::F(a), Reg::F(b)) => Insn::CmpF { op: cmp, a, b, dst },
                    (Reg::I(a), Reg::I(b)) => Insn::CmpI { op: cmp, a, b, dst },
                    (Reg::B(a), Reg::B(b)) => Insn::CmpB { op: cmp, a, b, dst },
                    (l, r) => panic!("comparison type mismatch: {l:?} vs {r:?}"),
                });
                Reg::B(dst)
            }
            BinOp::And | BinOp::Or => unreachable!("handled via short-circuit"),
        }
    }

    fn lower_call(&mut self, builtin: Builtin, args: &[HExpr]) -> Reg {
        let regs: Vec<Reg> = args.iter().map(|a| self.lower(a)).collect();
        match builtin {
            Builtin::Abs => match regs[0] {
                Reg::F(a) => {
                    let dst = self.alloc_f();
                    self.insns.push(Insn::AbsF { a, dst });
                    Reg::F(dst)
                }
                Reg::I(a) => {
                    let dst = self.alloc_i();
                    self.insns.push(Insn::AbsI { a, dst });
                    Reg::I(dst)
                }
                v => panic!("abs on {v:?}"),
            },
            Builtin::Min | Builtin::Max => match (regs[0], regs[1]) {
                (Reg::F(a), Reg::F(b)) => {
                    let dst = self.alloc_f();
                    self.insns.push(if builtin == Builtin::Min {
                        Insn::MinF { a, b, dst }
                    } else {
                        Insn::MaxF { a, b, dst }
                    });
                    Reg::F(dst)
                }
                (Reg::I(a), Reg::I(b)) => {
                    let dst = self.alloc_i();
                    self.insns.push(if builtin == Builtin::Min {
                        Insn::MinI { a, b, dst }
                    } else {
                        Insn::MaxI { a, b, dst }
                    });
                    Reg::I(dst)
                }
                (l, r) => panic!("{builtin:?} type mismatch: {l:?} vs {r:?}"),
            },
            Builtin::Sqrt | Builtin::Exp | Builtin::Ln | Builtin::Sin | Builtin::Cos => {
                let a = self.expect_f(regs[0]);
                let dst = self.alloc_f();
                self.insns.push(match builtin {
                    Builtin::Sqrt => Insn::SqrtF { a, dst },
                    Builtin::Exp => Insn::ExpF { a, dst },
                    Builtin::Ln => Insn::LnF { a, dst },
                    Builtin::Sin => Insn::SinF { a, dst },
                    _ => Insn::CosF { a, dst },
                });
                Reg::F(dst)
            }
            Builtin::Trunc | Builtin::Round => {
                let a = self.expect_f(regs[0]);
                let dst = self.alloc_i();
                self.insns.push(if builtin == Builtin::Trunc {
                    Insn::TruncFI { a, dst }
                } else {
                    Insn::RoundFI { a, dst }
                });
                Reg::I(dst)
            }
            Builtin::RealFn => {
                let a = self.expect_i(regs[0]);
                let dst = self.alloc_f();
                self.insns.push(Insn::CastIF { a, dst });
                Reg::F(dst)
            }
            // `ord` is the identity on the runtime int representation.
            Builtin::Ord => Reg::I(self.expect_i(regs[0])),
        }
    }

    /// Lower one RHS subscript to an affine form over `i64` registers.
    /// Loop counters *are* registers, a parameter term contributes its
    /// preloaded parameter register, and a dynamic subscript contributes
    /// the register its value lands in — so every subscript shape
    /// uniformly becomes `base + Σ c·reg` with no parameter values baked
    /// in.
    fn lower_sub(&mut self, s: &SubscriptExpr) -> AffDim {
        match s {
            SubscriptExpr::Var(iv) => AffDim {
                base: 0,
                terms: vec![(iv.index() as u16, 1)],
            },
            SubscriptExpr::VarOffset(iv, d) => AffDim {
                base: *d,
                terms: vec![(iv.index() as u16, 1)],
            },
            SubscriptExpr::Affine(a) => {
                let mut dim = self.affine_dim(&a.rest);
                for &(iv, c) in &a.iv_terms {
                    dim.terms.push((iv.index() as u16, c));
                }
                dim
            }
            SubscriptExpr::Dynamic(e) => {
                let r = self.lower(e);
                AffDim {
                    base: 0,
                    terms: vec![(self.expect_i(r), 1)],
                }
            }
        }
    }

    /// Record one symbolic array access; folding against the physical
    /// layout happens per specialization ([`fold_addr`]).
    fn push_addr(&mut self, array: DataId, dims: Vec<AffDim>) -> u16 {
        assert_eq!(
            dims.len(),
            self.module.data[array].dims().len(),
            "subscript rank mismatch"
        );
        self.sym_addrs.push(SymAddr { array, dims });
        u16::try_from(self.sym_addrs.len() - 1).expect("address table overflow")
    }
}

impl<'r, 'm> ExecProg<'r, 'm> {
    /// Resolve the tapes' buffer indices against one run's live store.
    pub(crate) fn new(tapes: &'r Tapes, spec: &'r Spec, store: &'r Store<'m>) -> ExecProg<'r, 'm> {
        fn buf_f<'r>(store: &'r Store<'_>, id: DataId) -> &'r ParVec<f64> {
            match store.array(id).buffer() {
                SharedBuffer::Real(p) => p,
                _ => panic!("buffer kind mismatch for f64 table"),
            }
        }
        fn buf_i<'r>(store: &'r Store<'_>, id: DataId) -> &'r ParVec<i64> {
            match store.array(id).buffer() {
                SharedBuffer::Int(p) => p,
                _ => panic!("buffer kind mismatch for i64 table"),
            }
        }
        fn buf_b<'r>(store: &'r Store<'_>, id: DataId) -> &'r ParVec<bool> {
            match store.array(id).buffer() {
                SharedBuffer::Bool(p) => p,
                _ => panic!("buffer kind mismatch for bool table"),
            }
        }
        let tags = |ids: &[DataId]| -> Vec<Option<&'r [AtomicI64]>> {
            if tapes.checked {
                ids.iter().map(|&id| store.array(id).tags()).collect()
            } else {
                Vec::new()
            }
        };
        ExecProg {
            store,
            tapes,
            spec,
            bufs_f: tapes.buf_f.iter().map(|&id| buf_f(store, id)).collect(),
            bufs_i: tapes.buf_i.iter().map(|&id| buf_i(store, id)).collect(),
            bufs_b: tapes.buf_b.iter().map(|&id| buf_b(store, id)).collect(),
            tags_f: tags(&tapes.buf_f),
            tags_i: tags(&tapes.buf_i),
            tags_b: tags(&tapes.buf_b),
        }
    }

    #[inline(always)]
    fn eval_addr(addr: &Addr, frame: &Frame) -> usize {
        // Debug builds re-derive each dimension's logical index and bounds
        // check it, matching `NdSpec::offset`'s strictness; release builds
        // rely on the schedule (plus the physical-buffer bounds check).
        #[cfg(debug_assertions)]
        for c in &addr.chk {
            let mut v = c.value.base;
            for &(r, cc) in &c.value.terms {
                v += cc * frame.gi(r);
            }
            assert!(
                v >= c.lo && v <= c.hi,
                "index {v} outside {}..{} (compiled subscript)",
                c.lo,
                c.hi
            );
        }
        let mut off = addr.base;
        for &(r, c) in &addr.lin {
            off += c * frame.gi(r);
        }
        for w in &addr.special {
            let mut v = w.value.base;
            for &(r, c) in &w.value.terms {
                v += c * frame.gi(r);
            }
            off += (v - w.lo).rem_euclid(w.window) * w.stride;
        }
        // A schedule bug that produced a negative offset wraps to a huge
        // usize here and trips the buffer bounds check — memory safe.
        off as usize
    }

    /// The *logical* flat index of an access (checked mode): re-derives
    /// each dimension from its affine form, bounds-asserting like
    /// `NdSpec::offset`.
    fn logical_of(addr: &Addr, frame: &Frame) -> i64 {
        let mut off = 0i64;
        for c in &addr.chk {
            let mut v = c.value.base;
            for &(r, cc) in &c.value.terms {
                v += cc * frame.gi(r);
            }
            assert!(
                v >= c.lo && v <= c.hi,
                "index {v} outside {}..{} (checked compiled subscript)",
                c.lo,
                c.hi
            );
            off += (v - c.lo) * c.lstride;
        }
        off
    }

    /// Checked-mode load: the slot must currently hold exactly the logical
    /// element being read (same transition as `ArrayInstance::read`).
    fn check_read(tags: Option<&[AtomicI64]>, addr: &Addr, frame: &Frame, off: usize) {
        // Tag-less arrays (analysis-verified, or parameter inputs) skip the
        // logical re-derivation entirely — that skip *is* the elision win.
        if let Some(tags) = tags {
            let logical = Self::logical_of(addr, frame);
            let tag = tags[off].load(Ordering::Acquire);
            assert!(
                tag == logical,
                "read of logical index {logical}: slot holds logical {tag} — \
                 element missing or evicted from its window"
            );
        }
    }

    /// Checked-mode store: tag the slot with the logical element, panic on
    /// a double write (same transition as `ArrayInstance::write`).
    fn check_write(tags: Option<&[AtomicI64]>, addr: &Addr, frame: &Frame, off: usize) {
        if let Some(tags) = tags {
            let logical = Self::logical_of(addr, frame);
            let prev = tags[off].swap(logical, Ordering::AcqRel);
            assert!(
                prev != logical,
                "double write of logical index {logical} (single assignment violated)"
            );
        }
    }

    /// Execute one equation's tape in `frames` and store the result.
    pub(crate) fn run_eq(&self, eq_id: EqId, frames: &mut Frames) {
        let ceq = self.tapes.eqs[eq_id]
            .as_ref()
            .unwrap_or_else(|| panic!("{eq_id:?} was not lowered"));
        let addrs = &self.spec.addrs[eq_id];
        let frame = &mut frames.frames[eq_id];
        self.exec_tape(ceq, addrs, frame);
    }

    /// Run one equation over a whole counter range (the single-equation
    /// `DOALL` body on a sequential executor): the tape, address table and
    /// frame are fetched once, not per element.
    pub(crate) fn run_eq_range(
        &self,
        eq_id: EqId,
        bindings: &[(EqId, IvId)],
        lo: i64,
        hi: i64,
        frames: &mut Frames,
    ) {
        let ceq = self.tapes.eqs[eq_id]
            .as_ref()
            .unwrap_or_else(|| panic!("{eq_id:?} was not lowered"));
        let addrs = &self.spec.addrs[eq_id];
        let frame = &mut frames.frames[eq_id];
        debug_assert!(bindings.iter().all(|&(eq, _)| eq == eq_id));
        for i in lo..=hi {
            for &(_, iv) in bindings {
                frame.i[iv.index()] = i;
            }
            self.exec_tape(ceq, addrs, frame);
        }
    }

    fn exec_tape(&self, ceq: &CompiledEq, addrs: &[Addr], frame: &mut Frame) {
        let checked = self.tapes.checked;
        let insns = &ceq.insns;
        let mut pc = 0usize;
        while pc < insns.len() {
            // SAFETY: `pc < insns.len()` is checked by the loop condition;
            // jump targets are validated to be ≤ len.
            match *unsafe { insns.get_unchecked(pc) } {
                Insn::CopyF { src, dst } => frame.sf(dst, frame.gf(src)),
                Insn::CopyI { src, dst } => frame.si(dst, frame.gi(src)),
                Insn::CopyB { src, dst } => frame.sb(dst, frame.gb(src)),
                Insn::ReadScalar { slot, dst } => {
                    let v = self
                        .store
                        .read_slot(slot as usize)
                        .unwrap_or_else(|| panic!("scalar slot {slot} read before definition"));
                    match (dst, v) {
                        (Reg::F(r), Value::Real(x)) => frame.sf(r, x),
                        (Reg::I(r), Value::Int(x)) => frame.si(r, x),
                        (Reg::B(r), Value::Bool(x)) => frame.sb(r, x),
                        (d, v) => panic!("scalar slot holds {v:?}, tape expects {d:?}"),
                    }
                }
                Insn::LoadF { buf, addr, dst } => {
                    let a = &addrs[addr as usize];
                    let off = Self::eval_addr(a, frame);
                    if checked {
                        Self::check_read(self.tags_f[buf as usize], a, frame, off);
                    }
                    frame.sf(dst, self.bufs_f[buf as usize].get(off));
                }
                Insn::LoadI { buf, addr, dst } => {
                    let a = &addrs[addr as usize];
                    let off = Self::eval_addr(a, frame);
                    if checked {
                        Self::check_read(self.tags_i[buf as usize], a, frame, off);
                    }
                    frame.si(dst, self.bufs_i[buf as usize].get(off));
                }
                Insn::LoadB { buf, addr, dst } => {
                    let a = &addrs[addr as usize];
                    let off = Self::eval_addr(a, frame);
                    if checked {
                        Self::check_read(self.tags_b[buf as usize], a, frame, off);
                    }
                    frame.sb(dst, self.bufs_b[buf as usize].get(off));
                }
                Insn::AddF { a, b, dst } => frame.sf(dst, frame.gf(a) + frame.gf(b)),
                Insn::SubF { a, b, dst } => frame.sf(dst, frame.gf(a) - frame.gf(b)),
                Insn::MulF { a, b, dst } => frame.sf(dst, frame.gf(a) * frame.gf(b)),
                Insn::DivF { a, b, dst } => frame.sf(dst, frame.gf(a) / frame.gf(b)),
                Insn::MinF { a, b, dst } => frame.sf(dst, frame.gf(a).min(frame.gf(b))),
                Insn::MaxF { a, b, dst } => frame.sf(dst, frame.gf(a).max(frame.gf(b))),
                Insn::AddI { a, b, dst } => frame.si(dst, frame.gi(a) + frame.gi(b)),
                Insn::SubI { a, b, dst } => frame.si(dst, frame.gi(a) - frame.gi(b)),
                Insn::MulI { a, b, dst } => frame.si(dst, frame.gi(a) * frame.gi(b)),
                Insn::DivI { a, b, dst } => {
                    let d = frame.gi(b);
                    assert!(d != 0, "div by zero");
                    frame.si(dst, frame.gi(a).div_euclid(d));
                }
                Insn::ModI { a, b, dst } => {
                    let d = frame.gi(b);
                    assert!(d != 0, "mod by zero");
                    frame.si(dst, frame.gi(a).rem_euclid(d));
                }
                Insn::MinI { a, b, dst } => frame.si(dst, frame.gi(a).min(frame.gi(b))),
                Insn::MaxI { a, b, dst } => frame.si(dst, frame.gi(a).max(frame.gi(b))),
                Insn::NegF { a, dst } => frame.sf(dst, -frame.gf(a)),
                Insn::NegI { a, dst } => frame.si(dst, -frame.gi(a)),
                Insn::AbsF { a, dst } => frame.sf(dst, frame.gf(a).abs()),
                Insn::AbsI { a, dst } => frame.si(dst, frame.gi(a).abs()),
                Insn::NotB { a, dst } => frame.sb(dst, !frame.gb(a)),
                Insn::SqrtF { a, dst } => frame.sf(dst, frame.gf(a).sqrt()),
                Insn::ExpF { a, dst } => frame.sf(dst, frame.gf(a).exp()),
                Insn::LnF { a, dst } => frame.sf(dst, frame.gf(a).ln()),
                Insn::SinF { a, dst } => frame.sf(dst, frame.gf(a).sin()),
                Insn::CosF { a, dst } => frame.sf(dst, frame.gf(a).cos()),
                Insn::CastIF { a, dst } => frame.sf(dst, frame.gi(a) as f64),
                Insn::TruncFI { a, dst } => frame.si(dst, frame.gf(a).trunc() as i64),
                Insn::RoundFI { a, dst } => frame.si(dst, frame.gf(a).round() as i64),
                Insn::CmpF { op, a, b, dst } => frame.sb(dst, op.eval(frame.gf(a), frame.gf(b))),
                Insn::CmpI { op, a, b, dst } => frame.sb(dst, op.eval(frame.gi(a), frame.gi(b))),
                Insn::CmpB { op, a, b, dst } => frame.sb(dst, op.eval(frame.gb(a), frame.gb(b))),
                Insn::Jump { target } => {
                    pc = target as usize;
                    continue;
                }
                Insn::JumpIfNot { cond, target } => {
                    if !frame.gb(cond) {
                        pc = target as usize;
                        continue;
                    }
                }
                Insn::JumpIf { cond, target } => {
                    if frame.gb(cond) {
                        pc = target as usize;
                        continue;
                    }
                }
                Insn::JumpCmpFNot { op, a, b, target } => {
                    if !op.eval(frame.gf(a), frame.gf(b)) {
                        pc = target as usize;
                        continue;
                    }
                }
                Insn::JumpCmpINot { op, a, b, target } => {
                    if !op.eval(frame.gi(a), frame.gi(b)) {
                        pc = target as usize;
                        continue;
                    }
                }
                Insn::JumpCmpF { op, a, b, target } => {
                    if op.eval(frame.gf(a), frame.gf(b)) {
                        pc = target as usize;
                        continue;
                    }
                }
                Insn::JumpCmpI { op, a, b, target } => {
                    if op.eval(frame.gi(a), frame.gi(b)) {
                        pc = target as usize;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        match ceq.out {
            OutSpec::Scalar { slot } => {
                let v = match ceq.src {
                    Reg::F(r) => Value::Real(frame.gf(r)),
                    Reg::I(r) => Value::Int(frame.gi(r)),
                    Reg::B(r) => Value::Bool(frame.gb(r)),
                };
                self.store.write_slot(slot as usize, v);
            }
            OutSpec::ArrayF { buf, addr } => {
                let a = &addrs[addr as usize];
                let off = Self::eval_addr(a, frame);
                if checked {
                    Self::check_write(self.tags_f[buf as usize], a, frame, off);
                }
                let Reg::F(r) = ceq.src else { unreachable!() };
                // SAFETY: the single-assignment schedule guarantees
                // concurrent DOALL iterations write disjoint offsets (same
                // contract as `ArrayInstance::write`).
                unsafe { self.bufs_f[buf as usize].set(off, frame.gf(r)) };
            }
            OutSpec::ArrayI { buf, addr } => {
                let a = &addrs[addr as usize];
                let off = Self::eval_addr(a, frame);
                if checked {
                    Self::check_write(self.tags_i[buf as usize], a, frame, off);
                }
                let Reg::I(r) = ceq.src else { unreachable!() };
                // SAFETY: as above.
                unsafe { self.bufs_i[buf as usize].set(off, frame.gi(r)) };
            }
            OutSpec::ArrayB { buf, addr } => {
                let a = &addrs[addr as usize];
                let off = Self::eval_addr(a, frame);
                if checked {
                    Self::check_write(self.tags_b[buf as usize], a, frame, off);
                }
                let Reg::B(r) = ceq.src else { unreachable!() };
                // SAFETY: as above.
                unsafe { self.bufs_b[buf as usize].set(off, frame.gb(r)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Inputs, StoreArena};
    use ps_depgraph::build_depgraph;
    use ps_lang::frontend;
    use ps_scheduler::{schedule_module, ScheduleOptions, ScheduleResult};

    fn build(src: &str) -> (HirModule, ScheduleResult) {
        let m = frontend(src).unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        (m, sched)
    }

    /// Compile tapes and one specialization against `inputs`.
    fn compile_all<'m>(
        m: &'m HirModule,
        sched: &ScheduleResult,
        inputs: &Inputs,
        fold_static: bool,
    ) -> (StorePlan<'m>, Tapes, Store<'m>, Spec) {
        let plan = StorePlan::new(m, &sched.memory);
        let tapes = compile_tapes(m, &plan, &sched.flowchart, false, fold_static);
        let store = plan
            .instantiate(inputs, false, &mut StoreArena::default())
            .unwrap();
        let spec = specialize(&tapes, &plan, &store.params, Vec::new(), None).unwrap();
        (plan, tapes, store, spec)
    }

    #[test]
    fn affine_subscripts_fold_to_linear_form() {
        // Unwindowed 2-D array: every access strength-reduces to base+Σc·iv
        // with no special dims.
        let src = "T: module (n: int): [out: array[1..n,1..n] of real];
             type I, J = 1 .. n;
             var a: array [I,J] of real;
             define
                a[I,J] = real(I) + real(J) * 2.0;
                out[I,J] = a[I,J] * 0.5;
             end T;";
        let inputs = Inputs::new().set_int("n", 4);
        let (m, sched) = build(src);
        let (_plan, tapes, _store, spec) = compile_all(&m, &sched, &inputs, true);
        let eq2 = m.equation_by_label("eq.2").unwrap();
        let (_, addrs) = tapes.stats(eq2);
        assert_eq!(addrs, 2, "one load + one store address");
        assert_eq!(
            spec.special_count(eq2),
            0,
            "fully linear: no window, no dynamic dims"
        );
    }

    #[test]
    fn windowed_dim_keeps_its_mod() {
        // fib with window 3: the K dimension must stay special.
        let src = "T: module (n: int): [y: int];
             type K = 3 .. n;
             var a: array [1 .. n] of int;
             define
                a[1] = 1;
                a[2] = 1;
                a[K] = a[K-1] + a[K-2];
                y = a[n];
             end T;";
        let inputs = Inputs::new().set_int("n", 10);
        let (m, sched) = build(src);
        let a = m.data_by_name("a").unwrap();
        assert_eq!(sched.memory.window(a, 0), Some(3), "planner windows a");
        let (_plan, tapes, _store, spec) = compile_all(&m, &sched, &inputs, true);
        let eq3 = m.equation_by_label("eq.3").unwrap();
        let (_, addrs) = tapes.stats(eq3);
        assert_eq!(addrs, 3, "two loads + one store");
        assert_eq!(
            spec.special_count(eq3),
            3,
            "every access of the windowed dim needs mod"
        );
    }

    #[test]
    fn guards_lower_to_fused_branches() {
        // A guarded body: the `if` condition must produce fused
        // compare-and-branch instructions, not materialized booleans.
        let src = "T: module (n: int): [out: array[1..n] of int];
             type I = 1 .. n;
             define
                out[I] = if (I = 1) or (I = n) then 0 else I;
             end T;";
        let inputs = Inputs::new().set_int("n", 8);
        let (m, sched) = build(src);
        let (_plan, tapes, _store, _spec) = compile_all(&m, &sched, &inputs, true);
        let eq1 = m.equation_by_label("eq.1").unwrap();
        let ceq = tapes.eqs[eq1].as_ref().unwrap();
        assert!(
            ceq.insns
                .iter()
                .any(|i| matches!(i, Insn::JumpCmpINot { .. })),
            "guard comparisons fuse into branches: {:?}",
            ceq.insns
        );
        assert!(
            !ceq.insns.iter().any(|i| matches!(i, Insn::CmpI { .. })),
            "no materialized guard booleans: {:?}",
            ceq.insns
        );
    }

    #[test]
    fn tape_executes_a_scalar_chain() {
        let src = "T: module (x: int): [y: int];
             var a, b: int;
             define
                a = x * 2;
                b = a + 1;
                y = b * b;
             end T;";
        let inputs = Inputs::new().set_int("x", 3);
        let (m, sched) = build(src);
        let (_plan, tapes, store, spec) = compile_all(&m, &sched, &inputs, true);
        let mut frames = Frames::new(&tapes);
        frames.bind_params(&tapes, &store.param_values(tapes.params()));
        {
            let view = ExecProg::new(&tapes, &spec, &store);
            for eq in sched.flowchart.equations() {
                view.run_eq(eq, &mut frames);
            }
        }
        let out = store.into_outputs();
        assert_eq!(out.scalar("y"), Value::Int(49));
    }

    #[test]
    fn pint_folds_constants_and_evaluates() {
        let five = PInt::bin(BinOp::Add, PInt::Const(2), PInt::Const(3));
        assert_eq!(five, PInt::Const(5), "const-const folds at build time");
        assert_eq!(PInt::neg(PInt::Const(4)), PInt::Const(-4));
        assert_eq!(PInt::abs(PInt::Const(-4)), PInt::Const(4));
        assert_eq!(
            PInt::min_max(true, PInt::Const(2), PInt::Const(9)),
            PInt::Const(2)
        );
        // M*2 + 1 under M = 8.
        let e = PInt::bin(
            BinOp::Add,
            PInt::bin(BinOp::Mul, PInt::Param(0), PInt::Const(2)),
            PInt::Const(1),
        );
        assert_eq!(e.eval(&[Value::Int(8)]), 17);
    }

    /// The satellite claim: static integer folding over the
    /// parameter-register representation yields strictly shorter tapes
    /// for the jacobi and wavefront-style bodies (the `M+1` / `n-1`
    /// parameter expressions vanish into derived registers).
    #[test]
    fn static_folding_shortens_jacobi_and_wavefront_tapes() {
        let jacobi = "Relaxation: module (InitialA: array[I,J] of real;
                            M: int; maxK: int):
                    [newA: array[I,J] of real];
        type I, J = 0 .. M+1; K = 2 .. maxK;
        var A: array [1 .. maxK] of array[I,J] of real;
        define
            A[1] = InitialA;
            newA = A[maxK];
            A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                       then A[K-1,I,J]
                       else ( A[K-1,I,J-1] + A[K-1,I-1,J]
                            + A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
        end Relaxation;";
        let wavefront = "W: module (n: int; xs: array[1..n] of real):
                [out: array[1..n] of real];
            type K = 2 .. n;
            var a: array [1 .. n] of real;
            define
                a[1] = xs[1] * real(n - 1);
                a[K] = a[K-1] + xs[n+1-K] * real(n - 1);
                out = a;
            end W;";
        for (name, src, label) in [("jacobi", jacobi, "eq.3"), ("wavefront", wavefront, "eq.2")] {
            let (m, sched) = build(src);
            let plan = StorePlan::new(&m, &sched.memory);
            let folded = compile_tapes(&m, &plan, &sched.flowchart, false, true);
            let unfolded = compile_tapes(&m, &plan, &sched.flowchart, false, false);
            let eq = m.equation_by_label(label).unwrap();
            let (f_len, _) = folded.stats(eq);
            let (u_len, _) = unfolded.stats(eq);
            assert!(
                f_len < u_len,
                "{name}: folded tape ({f_len} insns) must be shorter than \
                 unfolded ({u_len} insns)"
            );
            assert!(
                !folded.eqs[eq].as_ref().unwrap().derived_i.is_empty(),
                "{name}: the parameter expression becomes a derived register"
            );
        }
    }

    /// Tapes and specs are parameter-separable: one set of tapes, two
    /// specializations, bit-correct results under both parameter vectors.
    #[test]
    fn one_tape_two_specializations() {
        let src = "T: module (n: int): [y: int];
             type K = 2 .. n;
             var a: array [1 .. n] of int;
             define
                a[1] = 1;
                a[K] = a[K-1] + n;
                y = a[n];
             end T;";
        let (m, sched) = build(src);
        let plan = StorePlan::new(&m, &sched.memory);
        let tapes = compile_tapes(&m, &plan, &sched.flowchart, false, true);
        for n in [3i64, 7] {
            let inputs = Inputs::new().set_int("n", n);
            let store = plan
                .instantiate(&inputs, false, &mut StoreArena::default())
                .unwrap();
            let spec = specialize(&tapes, &plan, &store.params, vec![n], None).unwrap();
            let mut frames = Frames::new(&tapes);
            frames.bind_params(&tapes, &store.param_values(tapes.params()));
            {
                let view = ExecProg::new(&tapes, &spec, &store);
                for eq in sched.flowchart.equations() {
                    if matches!(m.equations[eq].label.as_str(), "eq.2") {
                        for k in 2..=n {
                            frames.set_iv(eq, IvId(0), k);
                            view.run_eq(eq, &mut frames);
                        }
                    } else {
                        view.run_eq(eq, &mut frames);
                    }
                }
            }
            let out = store.into_outputs();
            assert_eq!(out.scalar("y"), Value::Int(1 + (n - 1) * n), "n = {n}");
        }
    }
}
