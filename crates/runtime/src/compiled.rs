//! The compiled evaluation engine: typed register bytecode.
//!
//! Once per [`crate::interp::run_module`] call, every equation scheduled in
//! the flowchart is lowered to a flat postorder instruction tape over
//! *typed, untagged* registers — separate `f64` / `i64` / `bool` files,
//! with types synthesized ahead of time by `HirModule::expr_scalar_ty`. An
//! iteration of a `DO`/`DOALL` body then executes as a non-recursive tape
//! walk with direct buffer loads and stores:
//!
//! * **No tagged dispatch**: every instruction knows its operand types, so
//!   there is no per-node `Value` matching.
//! * **Counters are registers**: the first `i64` registers of each
//!   equation's frame *are* its loop counters — binding a `DO`/`DOALL`
//!   index is one store, and reading `I` in an expression costs nothing.
//! * **Strength-reduced subscripts**: each array access is folded against
//!   the array's *physical* layout into `base + Σ cᵢ·regᵢ` (coefficients
//!   pre-multiplied by physical strides; dynamic subscripts join the dot
//!   product through the register holding their value); the window `mod`
//!   survives only for genuinely windowed dimensions.
//! * **Constant folding**: module parameters are bound before execution
//!   starts, so parameter reads and the parameter part of affine
//!   subscripts become tape constants.
//! * **Branch-lowered guards**: `if` conditions emit conditional jumps
//!   directly (short-circuit `and`/`or` become control flow), so boundary
//!   guards never materialize intermediate booleans.
//! * **Zero per-iteration allocations**: registers live in per-worker
//!   reusable [`Frames`]; the tape only indexes into them — with
//!   *unchecked* indexing, justified by a full validation pass over every
//!   lowered tape (`validate`) before execution starts.
//!
//! Evaluation order matches the tree-walker exactly — the differential
//! suite asserts bit-identical outputs between engines.

use crate::ndarray::{ParVec, SharedBuffer};
use crate::store::Store;
use crate::value::Value;
use ps_lang::ast::{BinOp, UnOp};
use ps_lang::hir::{Builtin, DataKind, Equation, HExpr, LhsSub, SubscriptExpr};
use ps_lang::{DataId, EqId, HirModule, IvId, ScalarTy};
use ps_scheduler::Flowchart;
use ps_support::idx::{Idx, IndexVec};

/// Runtime register kind. `char` and enumeration values are carried as
/// integers, mirroring [`Value`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    F,
    I,
    B,
}

fn kind_of(ty: ScalarTy) -> Kind {
    match ty {
        ScalarTy::Real => Kind::F,
        ScalarTy::Int | ScalarTy::Char => Kind::I,
        ScalarTy::Bool => Kind::B,
    }
}

/// A typed register reference.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Reg {
    F(u16),
    I(u16),
    B(u16),
}

/// Comparison operator with the tree-walker's `partial_cmp` semantics
/// (NaN compares false under everything except `<>`).
#[derive(Clone, Copy, Debug)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn from_binop(op: BinOp) -> CmpOp {
        match op {
            BinOp::Eq => CmpOp::Eq,
            BinOp::Ne => CmpOp::Ne,
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            other => panic!("{other:?} is not a comparison"),
        }
    }

    #[inline]
    fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match a.partial_cmp(&b) {
            None => matches!(self, CmpOp::Ne),
            Some(ord) => match self {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => !ord.is_eq(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            },
        }
    }
}

/// One tape instruction. Operands are register indices into the executing
/// equation's [`Frame`]; `addr` indices refer to the equation's
/// strength-reduced [`Addr`] table, `buf` indices to the program-wide
/// typed buffer tables. All indices are range-checked once by
/// `CompiledEq::validate`, so execution uses unchecked access.
#[derive(Clone, Copy, Debug)]
enum Insn {
    CopyF {
        src: u16,
        dst: u16,
    },
    CopyI {
        src: u16,
        dst: u16,
    },
    CopyB {
        src: u16,
        dst: u16,
    },
    /// Typed read of a live scalar slot (locals/results written earlier in
    /// the schedule; parameters are constant-folded instead).
    ReadScalar {
        slot: u32,
        dst: Reg,
    },
    LoadF {
        buf: u16,
        addr: u16,
        dst: u16,
    },
    LoadI {
        buf: u16,
        addr: u16,
        dst: u16,
    },
    LoadB {
        buf: u16,
        addr: u16,
        dst: u16,
    },
    AddF {
        a: u16,
        b: u16,
        dst: u16,
    },
    SubF {
        a: u16,
        b: u16,
        dst: u16,
    },
    MulF {
        a: u16,
        b: u16,
        dst: u16,
    },
    DivF {
        a: u16,
        b: u16,
        dst: u16,
    },
    MinF {
        a: u16,
        b: u16,
        dst: u16,
    },
    MaxF {
        a: u16,
        b: u16,
        dst: u16,
    },
    AddI {
        a: u16,
        b: u16,
        dst: u16,
    },
    SubI {
        a: u16,
        b: u16,
        dst: u16,
    },
    MulI {
        a: u16,
        b: u16,
        dst: u16,
    },
    DivI {
        a: u16,
        b: u16,
        dst: u16,
    },
    ModI {
        a: u16,
        b: u16,
        dst: u16,
    },
    MinI {
        a: u16,
        b: u16,
        dst: u16,
    },
    MaxI {
        a: u16,
        b: u16,
        dst: u16,
    },
    NegF {
        a: u16,
        dst: u16,
    },
    NegI {
        a: u16,
        dst: u16,
    },
    AbsF {
        a: u16,
        dst: u16,
    },
    AbsI {
        a: u16,
        dst: u16,
    },
    NotB {
        a: u16,
        dst: u16,
    },
    SqrtF {
        a: u16,
        dst: u16,
    },
    ExpF {
        a: u16,
        dst: u16,
    },
    LnF {
        a: u16,
        dst: u16,
    },
    SinF {
        a: u16,
        dst: u16,
    },
    CosF {
        a: u16,
        dst: u16,
    },
    /// `int → real` widening (checker casts and the `real` builtin).
    CastIF {
        a: u16,
        dst: u16,
    },
    TruncFI {
        a: u16,
        dst: u16,
    },
    RoundFI {
        a: u16,
        dst: u16,
    },
    CmpF {
        op: CmpOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    CmpI {
        op: CmpOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    CmpB {
        op: CmpOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    Jump {
        target: u32,
    },
    JumpIfNot {
        cond: u16,
        target: u32,
    },
    JumpIf {
        cond: u16,
        target: u32,
    },
    /// Fused compare-and-branch (branch-lowered `if` guards): jump when
    /// the comparison is *false*.
    JumpCmpFNot {
        op: CmpOp,
        a: u16,
        b: u16,
        target: u32,
    },
    JumpCmpINot {
        op: CmpOp,
        a: u16,
        b: u16,
        target: u32,
    },
    /// Fused compare-and-branch: jump when the comparison is *true*.
    JumpCmpF {
        op: CmpOp,
        a: u16,
        b: u16,
        target: u32,
    },
    JumpCmpI {
        op: CmpOp,
        a: u16,
        b: u16,
        target: u32,
    },
}

/// An affine value over `i64` registers: `base + Σ cᵢ·regᵢ`. Loop counters
/// and dynamic-subscript results are both plain registers, so one form
/// covers every subscript shape.
#[derive(Clone, Debug, Default)]
struct AffDim {
    base: i64,
    terms: Vec<(u16, i64)>,
}

/// A windowed dimension: physical index is
/// `(value − lo).rem_euclid(window) · stride`.
#[derive(Clone, Debug)]
struct WinDim {
    stride: i64,
    lo: i64,
    window: i64,
    value: AffDim,
}

/// A strength-reduced physical address: `base + Σ cᵢ·regᵢ` (coefficients
/// pre-multiplied by physical strides; constants, subscript offsets and
/// parameter terms folded into `base`) plus the windowed remainder
/// dimensions. For any access into an unwindowed array — affine *or*
/// dynamic — `special` is empty and the address is a single dot product.
#[derive(Clone, Debug, Default)]
struct Addr {
    base: i64,
    lin: Vec<(u16, i64)>,
    special: Vec<WinDim>,
    /// Debug builds keep every dimension's pre-fold affine value and
    /// logical bounds, so `eval_addr` can assert in-range subscripts with
    /// the same strictness as `NdSpec::offset` — a schedule bug that
    /// would silently alias in release panics under `cargo test`.
    #[cfg(debug_assertions)]
    dbg_dims: Vec<(AffDim, i64, i64)>,
}

/// The compiled result store of one equation.
#[derive(Clone, Copy, Debug)]
enum OutSpec {
    Scalar { slot: u32 },
    ArrayF { buf: u16, addr: u16 },
    ArrayI { buf: u16, addr: u16 },
    ArrayB { buf: u16, addr: u16 },
}

/// One lowered equation: instruction tape, address table, register-file
/// sizes, preloaded constants, and the final store. The first
/// `n_counters` `i64` registers are the equation's loop counters in
/// [`IvId`] order.
struct CompiledEq {
    insns: Vec<Insn>,
    addrs: Vec<Addr>,
    n_f: u16,
    n_i: u16,
    n_b: u16,
    consts_f: Vec<(u16, f64)>,
    consts_i: Vec<(u16, i64)>,
    consts_b: Vec<(u16, bool)>,
    out: OutSpec,
    src: Reg,
}

impl CompiledEq {
    /// Range-check every register, address, buffer and jump reference in
    /// the tape. Running this once per lowering makes the unchecked frame
    /// access in [`CompiledProgram::run_eq`] sound: execution can only
    /// touch indices this pass has seen.
    fn validate(&self, n_bufs_f: usize, n_bufs_i: usize, n_bufs_b: usize, n_slots: usize) {
        let f = |r: u16| assert!(r < self.n_f, "f-register {r} out of range");
        let i = |r: u16| assert!(r < self.n_i, "i-register {r} out of range");
        let b = |r: u16| assert!(r < self.n_b, "b-register {r} out of range");
        let reg = |r: Reg| match r {
            Reg::F(x) => f(x),
            Reg::I(x) => i(x),
            Reg::B(x) => b(x),
        };
        let addr = |a: u16| assert!((a as usize) < self.addrs.len(), "addr {a} out of range");
        let jump = |t: u32| assert!((t as usize) <= self.insns.len(), "jump {t} out of range");
        let buf_f = |x: u16| assert!((x as usize) < n_bufs_f, "f-buffer {x} out of range");
        let buf_i = |x: u16| assert!((x as usize) < n_bufs_i, "i-buffer {x} out of range");
        let buf_b = |x: u16| assert!((x as usize) < n_bufs_b, "b-buffer {x} out of range");
        for insn in &self.insns {
            match *insn {
                Insn::CopyF { src, dst } => {
                    f(src);
                    f(dst);
                }
                Insn::CopyI { src, dst } => {
                    i(src);
                    i(dst);
                }
                Insn::CopyB { src, dst } => {
                    b(src);
                    b(dst);
                }
                Insn::ReadScalar { slot, dst } => {
                    assert!((slot as usize) < n_slots, "slot {slot} out of range");
                    reg(dst);
                }
                Insn::LoadF { buf, addr: a, dst } => {
                    buf_f(buf);
                    addr(a);
                    f(dst);
                }
                Insn::LoadI { buf, addr: a, dst } => {
                    buf_i(buf);
                    addr(a);
                    i(dst);
                }
                Insn::LoadB { buf, addr: a, dst } => {
                    buf_b(buf);
                    addr(a);
                    b(dst);
                }
                Insn::AddF { a, b: o, dst }
                | Insn::SubF { a, b: o, dst }
                | Insn::MulF { a, b: o, dst }
                | Insn::DivF { a, b: o, dst }
                | Insn::MinF { a, b: o, dst }
                | Insn::MaxF { a, b: o, dst } => {
                    f(a);
                    f(o);
                    f(dst);
                }
                Insn::AddI { a, b: o, dst }
                | Insn::SubI { a, b: o, dst }
                | Insn::MulI { a, b: o, dst }
                | Insn::DivI { a, b: o, dst }
                | Insn::ModI { a, b: o, dst }
                | Insn::MinI { a, b: o, dst }
                | Insn::MaxI { a, b: o, dst } => {
                    i(a);
                    i(o);
                    i(dst);
                }
                Insn::NegF { a, dst } | Insn::AbsF { a, dst } => {
                    f(a);
                    f(dst);
                }
                Insn::NegI { a, dst } | Insn::AbsI { a, dst } => {
                    i(a);
                    i(dst);
                }
                Insn::NotB { a, dst } => {
                    b(a);
                    b(dst);
                }
                Insn::SqrtF { a, dst }
                | Insn::ExpF { a, dst }
                | Insn::LnF { a, dst }
                | Insn::SinF { a, dst }
                | Insn::CosF { a, dst } => {
                    f(a);
                    f(dst);
                }
                Insn::CastIF { a, dst } => {
                    i(a);
                    f(dst);
                }
                Insn::TruncFI { a, dst } | Insn::RoundFI { a, dst } => {
                    f(a);
                    i(dst);
                }
                Insn::CmpF { a, b: o, dst, .. } => {
                    f(a);
                    f(o);
                    b(dst);
                }
                Insn::CmpI { a, b: o, dst, .. } => {
                    i(a);
                    i(o);
                    b(dst);
                }
                Insn::CmpB { a, b: o, dst, .. } => {
                    b(a);
                    b(o);
                    b(dst);
                }
                Insn::Jump { target } => jump(target),
                Insn::JumpIfNot { cond, target } | Insn::JumpIf { cond, target } => {
                    b(cond);
                    jump(target);
                }
                Insn::JumpCmpFNot {
                    a, b: o, target, ..
                }
                | Insn::JumpCmpF {
                    a, b: o, target, ..
                } => {
                    f(a);
                    f(o);
                    jump(target);
                }
                Insn::JumpCmpINot {
                    a, b: o, target, ..
                }
                | Insn::JumpCmpI {
                    a, b: o, target, ..
                } => {
                    i(a);
                    i(o);
                    jump(target);
                }
            }
        }
        for a in &self.addrs {
            for &(r, _) in &a.lin {
                i(r);
            }
            for w in &a.special {
                assert!(w.window > 0, "window must be positive");
                for &(r, _) in &w.value.terms {
                    i(r);
                }
            }
        }
        for &(r, _) in &self.consts_f {
            f(r);
        }
        for &(r, _) in &self.consts_i {
            i(r);
        }
        for &(r, _) in &self.consts_b {
            b(r);
        }
        reg(self.src);
        match self.out {
            OutSpec::Scalar { slot } => {
                assert!((slot as usize) < n_slots, "out slot {slot} out of range")
            }
            OutSpec::ArrayF { buf, addr: a } => {
                buf_f(buf);
                addr(a);
            }
            OutSpec::ArrayI { buf, addr: a } => {
                buf_i(buf);
                addr(a);
            }
            OutSpec::ArrayB { buf, addr: a } => {
                buf_b(buf);
                addr(a);
            }
        }
    }
}

/// A whole module lowered against one live [`Store`].
pub(crate) struct CompiledProgram<'s, 'm> {
    store: &'s Store<'m>,
    eqs: IndexVec<EqId, Option<CompiledEq>>,
    bufs_f: Vec<&'s ParVec<f64>>,
    bufs_i: Vec<&'s ParVec<i64>>,
    bufs_b: Vec<&'s ParVec<bool>>,
}

/// Per-equation register file. The first `i`-registers are the equation's
/// loop counters; the rest (and all `f`/`b` registers) are tape
/// temporaries and preloaded constants. Reused across every iteration the
/// owning worker executes — the hot path never allocates.
#[derive(Clone, Default)]
struct Frame {
    f: Vec<f64>,
    i: Vec<i64>,
    b: Vec<bool>,
}

impl Frame {
    #[inline(always)]
    fn gf(&self, r: u16) -> f64 {
        debug_assert!((r as usize) < self.f.len());
        // SAFETY: validated against n_f, and self.f.len() == n_f.
        unsafe { *self.f.get_unchecked(r as usize) }
    }

    #[inline(always)]
    fn gi(&self, r: u16) -> i64 {
        debug_assert!((r as usize) < self.i.len());
        // SAFETY: validated against n_i.
        unsafe { *self.i.get_unchecked(r as usize) }
    }

    #[inline(always)]
    fn gb(&self, r: u16) -> bool {
        debug_assert!((r as usize) < self.b.len());
        // SAFETY: validated against n_b.
        unsafe { *self.b.get_unchecked(r as usize) }
    }

    #[inline(always)]
    fn sf(&mut self, r: u16, v: f64) {
        debug_assert!((r as usize) < self.f.len());
        // SAFETY: validated against n_f.
        unsafe { *self.f.get_unchecked_mut(r as usize) = v }
    }

    #[inline(always)]
    fn si(&mut self, r: u16, v: i64) {
        debug_assert!((r as usize) < self.i.len());
        // SAFETY: validated against n_i.
        unsafe { *self.i.get_unchecked_mut(r as usize) = v }
    }

    #[inline(always)]
    fn sb(&mut self, r: u16, v: bool) {
        debug_assert!((r as usize) < self.b.len());
        // SAFETY: validated against n_b.
        unsafe { *self.b.get_unchecked_mut(r as usize) = v }
    }
}

/// All equations' frames for one worker. Cloned per `DOALL` chunk (so
/// concurrent workers own disjoint counters) with constants preserved.
#[derive(Clone)]
pub(crate) struct Frames {
    frames: IndexVec<EqId, Frame>,
}

impl Frames {
    pub(crate) fn new(prog: &CompiledProgram<'_, '_>) -> Frames {
        let frames = prog
            .eqs
            .iter()
            .map(|opt| match opt {
                None => Frame::default(),
                Some(ceq) => {
                    let mut fr = Frame {
                        f: vec![0.0; ceq.n_f as usize],
                        i: vec![0; ceq.n_i as usize],
                        b: vec![false; ceq.n_b as usize],
                    };
                    for &(r, v) in &ceq.consts_f {
                        fr.f[r as usize] = v;
                    }
                    for &(r, v) in &ceq.consts_i {
                        fr.i[r as usize] = v;
                    }
                    for &(r, v) in &ceq.consts_b {
                        fr.b[r as usize] = v;
                    }
                    fr
                }
            })
            .collect();
        Frames { frames }
    }

    /// Bind loop counter `iv` of `eq` — counters are the leading
    /// `i`-registers, so this is a single indexed store.
    #[inline]
    pub(crate) fn set_iv(&mut self, eq: EqId, iv: IvId, value: i64) {
        self.frames[eq].i[iv.index()] = value;
    }

    /// Clone only the frames of `eqs` (the equations a `DOALL` chunk will
    /// execute); every other equation gets an empty frame. Keeps the
    /// per-chunk cost proportional to the loop body, not the module.
    pub(crate) fn clone_for(&self, eqs: &[EqId]) -> Frames {
        let mut frames: IndexVec<EqId, Frame> =
            self.frames.iter().map(|_| Frame::default()).collect();
        for &eq in eqs {
            frames[eq] = self.frames[eq].clone();
        }
        Frames { frames }
    }
}

/// Typed buffer table shared by all equations of one program.
struct BufTable<'s> {
    refs: Vec<Option<(Kind, u16)>>,
    f: Vec<&'s ParVec<f64>>,
    i: Vec<&'s ParVec<i64>>,
    b: Vec<&'s ParVec<bool>>,
}

impl<'s> BufTable<'s> {
    fn new(n_data: usize) -> BufTable<'s> {
        BufTable {
            refs: vec![None; n_data],
            f: Vec::new(),
            i: Vec::new(),
            b: Vec::new(),
        }
    }

    fn resolve(&mut self, store: &'s Store<'_>, id: DataId) -> (Kind, u16) {
        if let Some(r) = self.refs[id.index()] {
            return r;
        }
        let r = match store.array(id).buffer() {
            SharedBuffer::Real(p) => {
                self.f.push(p);
                (Kind::F, (self.f.len() - 1) as u16)
            }
            SharedBuffer::Int(p) => {
                self.i.push(p);
                (Kind::I, (self.i.len() - 1) as u16)
            }
            SharedBuffer::Bool(p) => {
                self.b.push(p);
                (Kind::B, (self.b.len() - 1) as u16)
            }
        };
        self.refs[id.index()] = Some(r);
        r
    }
}

/// Lower every equation the flowchart executes against `store`'s layout.
pub(crate) fn compile_program<'s, 'm>(
    module: &'m HirModule,
    flowchart: &Flowchart,
    store: &'s Store<'m>,
) -> CompiledProgram<'s, 'm> {
    let mut bufs = BufTable::new(module.data.len());
    let mut eqs: IndexVec<EqId, Option<CompiledEq>> =
        module.equations.iter().map(|_| None).collect();
    for eq_id in flowchart.equations() {
        let lowerer = Lowerer::new(module, store, eq_id, &mut bufs);
        eqs[eq_id] = Some(lowerer.lower_equation());
    }
    let n_slots = store.slot_count();
    for ceq in eqs.iter().flatten() {
        ceq.validate(bufs.f.len(), bufs.i.len(), bufs.b.len(), n_slots);
    }
    CompiledProgram {
        store,
        eqs,
        bufs_f: bufs.f,
        bufs_i: bufs.i,
        bufs_b: bufs.b,
    }
}

struct Lowerer<'a, 's, 'm> {
    module: &'m HirModule,
    store: &'s Store<'m>,
    eq: &'m Equation,
    insns: Vec<Insn>,
    addrs: Vec<Addr>,
    n_f: u16,
    n_i: u16,
    n_b: u16,
    consts_f: Vec<(u16, f64)>,
    consts_i: Vec<(u16, i64)>,
    consts_b: Vec<(u16, bool)>,
    bufs: &'a mut BufTable<'s>,
}

impl<'a, 's, 'm> Lowerer<'a, 's, 'm> {
    fn new(
        module: &'m HirModule,
        store: &'s Store<'m>,
        eq_id: EqId,
        bufs: &'a mut BufTable<'s>,
    ) -> Lowerer<'a, 's, 'm> {
        let eq = &module.equations[eq_id];
        Lowerer {
            module,
            store,
            eq,
            insns: Vec::new(),
            addrs: Vec::new(),
            n_f: 0,
            // Counters occupy the leading i-registers, one per index var.
            n_i: u16::try_from(eq.ivs.len()).expect("too many index variables"),
            n_b: 0,
            consts_f: Vec::new(),
            consts_i: Vec::new(),
            consts_b: Vec::new(),
            bufs,
        }
    }

    fn lower_equation(mut self) -> CompiledEq {
        let mut src = self.lower(&self.eq.rhs);
        let eq = self.eq;
        let out = match eq.lhs_field {
            Some(fidx) => OutSpec::Scalar {
                slot: self.store.slot_index(eq.lhs, fidx + 1) as u32,
            },
            None if eq.lhs_subs.is_empty() => OutSpec::Scalar {
                slot: self.store.slot_index(eq.lhs, 0) as u32,
            },
            None => {
                let dims: Vec<AffDim> = eq
                    .lhs_subs
                    .iter()
                    .map(|s| match s {
                        LhsSub::Const(a) => AffDim {
                            base: a
                                .eval(&self.store.params)
                                .unwrap_or_else(|| panic!("cannot evaluate {a}")),
                            terms: Vec::new(),
                        },
                        LhsSub::Var(iv) => AffDim {
                            base: 0,
                            terms: vec![(iv.index() as u16, 1)],
                        },
                    })
                    .collect();
                let (kind, buf) = self.bufs.resolve(self.store, eq.lhs);
                let addr = self.push_addr(eq.lhs, dims);
                // Int results widen into real arrays, mirroring
                // `ArrayInstance::write`.
                if kind == Kind::F {
                    if let Reg::I(r) = src {
                        let dst = self.alloc_f();
                        self.insns.push(Insn::CastIF { a: r, dst });
                        src = Reg::F(dst);
                    }
                }
                match (kind, src) {
                    (Kind::F, Reg::F(_)) => OutSpec::ArrayF { buf, addr },
                    (Kind::I, Reg::I(_)) => OutSpec::ArrayI { buf, addr },
                    (Kind::B, Reg::B(_)) => OutSpec::ArrayB { buf, addr },
                    (k, s) => panic!("type mismatch writing {s:?} into {k:?} array"),
                }
            }
        };
        CompiledEq {
            insns: self.insns,
            addrs: self.addrs,
            n_f: self.n_f,
            n_i: self.n_i,
            n_b: self.n_b,
            consts_f: self.consts_f,
            consts_i: self.consts_i,
            consts_b: self.consts_b,
            out,
            src,
        }
    }

    fn alloc_f(&mut self) -> u16 {
        let r = self.n_f;
        self.n_f = self.n_f.checked_add(1).expect("f64 register file overflow");
        r
    }

    fn alloc_i(&mut self) -> u16 {
        let r = self.n_i;
        self.n_i = self.n_i.checked_add(1).expect("i64 register file overflow");
        r
    }

    fn alloc_b(&mut self) -> u16 {
        let r = self.n_b;
        self.n_b = self
            .n_b
            .checked_add(1)
            .expect("bool register file overflow");
        r
    }

    fn alloc(&mut self, kind: Kind) -> Reg {
        match kind {
            Kind::F => Reg::F(self.alloc_f()),
            Kind::I => Reg::I(self.alloc_i()),
            Kind::B => Reg::B(self.alloc_b()),
        }
    }

    fn const_f(&mut self, v: f64) -> u16 {
        if let Some(&(r, _)) = self
            .consts_f
            .iter()
            .find(|(_, x)| x.to_bits() == v.to_bits())
        {
            return r;
        }
        let r = self.alloc_f();
        self.consts_f.push((r, v));
        r
    }

    fn const_i(&mut self, v: i64) -> u16 {
        if let Some(&(r, _)) = self.consts_i.iter().find(|&&(_, x)| x == v) {
            return r;
        }
        let r = self.alloc_i();
        self.consts_i.push((r, v));
        r
    }

    fn const_b(&mut self, v: bool) -> u16 {
        if let Some(&(r, _)) = self.consts_b.iter().find(|&&(_, x)| x == v) {
            return r;
        }
        let r = self.alloc_b();
        self.consts_b.push((r, v));
        r
    }

    /// Emit a jump placeholder; returns its index for [`Lowerer::patch`].
    fn emit_jump(&mut self, insn: Insn) -> usize {
        self.insns.push(insn);
        self.insns.len() - 1
    }

    /// Point the jump at `at` to the current end of the tape.
    fn patch(&mut self, at: usize) {
        let here = self.insns.len() as u32;
        match &mut self.insns[at] {
            Insn::Jump { target }
            | Insn::JumpIfNot { target, .. }
            | Insn::JumpIf { target, .. }
            | Insn::JumpCmpFNot { target, .. }
            | Insn::JumpCmpINot { target, .. }
            | Insn::JumpCmpF { target, .. }
            | Insn::JumpCmpI { target, .. } => *target = here,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn expect_b(&self, r: Reg) -> u16 {
        match r {
            Reg::B(x) => x,
            other => panic!("expected bool operand, got {other:?}"),
        }
    }

    fn expect_i(&self, r: Reg) -> u16 {
        match r {
            Reg::I(x) => x,
            other => panic!("expected int operand, got {other:?}"),
        }
    }

    fn expect_f(&self, r: Reg) -> u16 {
        match r {
            Reg::F(x) => x,
            other => panic!("expected real operand, got {other:?}"),
        }
    }

    fn emit_copy(&mut self, src: Reg, dst: Reg) {
        match (src, dst) {
            (Reg::F(s), Reg::F(d)) => self.insns.push(Insn::CopyF { src: s, dst: d }),
            (Reg::I(s), Reg::I(d)) => self.insns.push(Insn::CopyI { src: s, dst: d }),
            (Reg::B(s), Reg::B(d)) => self.insns.push(Insn::CopyB { src: s, dst: d }),
            (s, d) => panic!("arm type mismatch: {s:?} into {d:?}"),
        }
    }

    fn lower_bool(&mut self, e: &HExpr) -> u16 {
        let r = self.lower(e);
        self.expect_b(r)
    }

    /// Branch-lower condition `e`: after the emitted code, control *falls
    /// through* iff `e` is true; every returned placeholder must be
    /// patched to the false target. Short-circuit `and`/`or` become pure
    /// control flow and comparisons fuse into compare-and-branch
    /// instructions, so guards never materialize booleans. Evaluation
    /// order matches the tree-walker exactly.
    fn lower_cond(&mut self, e: &HExpr) -> Vec<usize> {
        match e {
            HExpr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let mut false_jumps = self.lower_cond(lhs);
                false_jumps.extend(self.lower_cond(rhs));
                false_jumps
            }
            HExpr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } => {
                let lhs_false = self.lower_cond(lhs);
                // lhs true: the whole `or` is true — skip the rhs.
                let skip_rhs = self.emit_jump(Insn::Jump { target: u32::MAX });
                for j in lhs_false {
                    self.patch(j);
                }
                let false_jumps = self.lower_cond(rhs);
                self.patch(skip_rhs);
                false_jumps
            }
            HExpr::Binary { op, lhs, rhs }
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) =>
            {
                let cmp = CmpOp::from_binop(*op);
                let l = self.lower(lhs);
                let r = self.lower(rhs);
                let insn = match (l, r) {
                    (Reg::F(a), Reg::F(b)) => Insn::JumpCmpFNot {
                        op: cmp,
                        a,
                        b,
                        target: u32::MAX,
                    },
                    (Reg::I(a), Reg::I(b)) => Insn::JumpCmpINot {
                        op: cmp,
                        a,
                        b,
                        target: u32::MAX,
                    },
                    // Bool comparisons are rare: materialize.
                    (Reg::B(a), Reg::B(b)) => {
                        let dst = self.alloc_b();
                        self.insns.push(Insn::CmpB { op: cmp, a, b, dst });
                        Insn::JumpIfNot {
                            cond: dst,
                            target: u32::MAX,
                        }
                    }
                    (l, r) => panic!("comparison type mismatch: {l:?} vs {r:?}"),
                };
                vec![self.emit_jump(insn)]
            }
            // `not (a ⋈ b)`: fall through iff the comparison is false —
            // fuse to a jump-when-true branch.
            HExpr::Unary {
                op: UnOp::Not,
                operand,
            } if matches!(
                **operand,
                HExpr::Binary {
                    op: BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge,
                    ..
                }
            ) =>
            {
                let HExpr::Binary { op, lhs, rhs } = &**operand else {
                    unreachable!()
                };
                let cmp = CmpOp::from_binop(*op);
                let l = self.lower(lhs);
                let r = self.lower(rhs);
                let insn = match (l, r) {
                    (Reg::F(a), Reg::F(b)) => Insn::JumpCmpF {
                        op: cmp,
                        a,
                        b,
                        target: u32::MAX,
                    },
                    (Reg::I(a), Reg::I(b)) => Insn::JumpCmpI {
                        op: cmp,
                        a,
                        b,
                        target: u32::MAX,
                    },
                    // Bool comparisons are rare: materialize and negate.
                    (Reg::B(a), Reg::B(b)) => {
                        let dst = self.alloc_b();
                        self.insns.push(Insn::CmpB { op: cmp, a, b, dst });
                        Insn::JumpIf {
                            cond: dst,
                            target: u32::MAX,
                        }
                    }
                    (l, r) => panic!("comparison type mismatch: {l:?} vs {r:?}"),
                };
                vec![self.emit_jump(insn)]
            }
            // Anything else (bool reads, constants, nested `not`):
            // evaluate as a value and branch on it.
            other => {
                let cond = self.lower_bool(other);
                vec![self.emit_jump(Insn::JumpIfNot {
                    cond,
                    target: u32::MAX,
                })]
            }
        }
    }

    fn lower(&mut self, e: &HExpr) -> Reg {
        match e {
            HExpr::Int(v) => Reg::I(self.const_i(*v)),
            HExpr::Real(v) => Reg::F(self.const_f(*v)),
            HExpr::Bool(v) => Reg::B(self.const_b(*v)),
            HExpr::Char(c) => Reg::I(self.const_i(*c as i64)),
            HExpr::EnumConst(_, ord) => Reg::I(self.const_i(*ord as i64)),
            HExpr::ReadScalar(d) => self.lower_read_scalar(*d),
            HExpr::ReadField(d, idx) => {
                let slot = self.store.slot_index(*d, *idx + 1) as u32;
                let kind = kind_of(self.module.expr_scalar_ty(self.eq, e));
                let dst = self.alloc(kind);
                self.insns.push(Insn::ReadScalar { slot, dst });
                dst
            }
            // Loop counters are the leading i-registers: reading one is
            // free.
            HExpr::Iv(iv) => Reg::I(iv.index() as u16),
            HExpr::ReadArray { array, subs, .. } => {
                let dims: Vec<AffDim> = subs.iter().map(|s| self.lower_sub(s)).collect();
                let (kind, buf) = self.bufs.resolve(self.store, *array);
                let addr = self.push_addr(*array, dims);
                match kind {
                    Kind::F => {
                        let dst = self.alloc_f();
                        self.insns.push(Insn::LoadF { buf, addr, dst });
                        Reg::F(dst)
                    }
                    Kind::I => {
                        let dst = self.alloc_i();
                        self.insns.push(Insn::LoadI { buf, addr, dst });
                        Reg::I(dst)
                    }
                    Kind::B => {
                        let dst = self.alloc_b();
                        self.insns.push(Insn::LoadB { buf, addr, dst });
                        Reg::B(dst)
                    }
                }
            }
            HExpr::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs),
            HExpr::Unary { op, operand } => {
                let v = self.lower(operand);
                match (op, v) {
                    (UnOp::Neg, Reg::F(a)) => {
                        let dst = self.alloc_f();
                        self.insns.push(Insn::NegF { a, dst });
                        Reg::F(dst)
                    }
                    (UnOp::Neg, Reg::I(a)) => {
                        let dst = self.alloc_i();
                        self.insns.push(Insn::NegI { a, dst });
                        Reg::I(dst)
                    }
                    (UnOp::Not, Reg::B(a)) => {
                        let dst = self.alloc_b();
                        self.insns.push(Insn::NotB { a, dst });
                        Reg::B(dst)
                    }
                    (op, v) => panic!("bad unary {op:?} on {v:?}"),
                }
            }
            HExpr::If { arms, else_ } => {
                let kind = kind_of(self.module.expr_scalar_ty(self.eq, else_));
                let dst = self.alloc(kind);
                let mut end_jumps = Vec::with_capacity(arms.len());
                for (cond, val) in arms {
                    let false_jumps = self.lower_cond(cond);
                    let v = self.lower(val);
                    self.emit_copy(v, dst);
                    end_jumps.push(self.emit_jump(Insn::Jump { target: u32::MAX }));
                    for j in false_jumps {
                        self.patch(j);
                    }
                }
                let e = self.lower(else_);
                self.emit_copy(e, dst);
                for j in end_jumps {
                    self.patch(j);
                }
                dst
            }
            HExpr::Call { builtin, args } => self.lower_call(*builtin, args),
            HExpr::CastReal(inner) => {
                let v = self.lower(inner);
                match v {
                    Reg::F(_) => v,
                    Reg::I(a) => {
                        let dst = self.alloc_f();
                        self.insns.push(Insn::CastIF { a, dst });
                        Reg::F(dst)
                    }
                    Reg::B(_) => panic!("cannot widen bool to real"),
                }
            }
        }
    }

    fn lower_read_scalar(&mut self, d: DataId) -> Reg {
        let item = &self.module.data[d];
        if item.kind == DataKind::Param && !item.is_array() {
            // Parameters are bound before execution starts: fold them into
            // the constant pool (this is what removes the `M`/`maxK` guard
            // reads from hot DOALL bodies).
            return match self.store.read_scalar(d, 0) {
                Value::Int(v) => Reg::I(self.const_i(v)),
                Value::Real(v) => Reg::F(self.const_f(v)),
                Value::Bool(v) => Reg::B(self.const_b(v)),
            };
        }
        if item.kind != DataKind::Param && item.is_array() {
            panic!("array `{}` read as scalar", item.name);
        }
        let slot = self.store.slot_index(d, 0) as u32;
        let kind = kind_of(self.module.runtime_scalar_ty(&item.ty));
        let dst = self.alloc(kind);
        self.insns.push(Insn::ReadScalar { slot, dst });
        dst
    }

    fn lower_binary(&mut self, op: BinOp, lhs: &HExpr, rhs: &HExpr) -> Reg {
        match op {
            BinOp::And => {
                let dst = self.alloc_b();
                let la = self.lower_bool(lhs);
                let to_false = self.emit_jump(Insn::JumpIfNot {
                    cond: la,
                    target: u32::MAX,
                });
                let rb = self.lower_bool(rhs);
                self.insns.push(Insn::CopyB { src: rb, dst });
                let to_end = self.emit_jump(Insn::Jump { target: u32::MAX });
                self.patch(to_false);
                let cfalse = self.const_b(false);
                self.insns.push(Insn::CopyB { src: cfalse, dst });
                self.patch(to_end);
                return Reg::B(dst);
            }
            BinOp::Or => {
                let dst = self.alloc_b();
                let la = self.lower_bool(lhs);
                let to_true = self.emit_jump(Insn::JumpIf {
                    cond: la,
                    target: u32::MAX,
                });
                let rb = self.lower_bool(rhs);
                self.insns.push(Insn::CopyB { src: rb, dst });
                let to_end = self.emit_jump(Insn::Jump { target: u32::MAX });
                self.patch(to_true);
                let ctrue = self.const_b(true);
                self.insns.push(Insn::CopyB { src: ctrue, dst });
                self.patch(to_end);
                return Reg::B(dst);
            }
            _ => {}
        }
        let l = self.lower(lhs);
        let r = self.lower(rhs);
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => match (l, r) {
                (Reg::F(a), Reg::F(b)) => {
                    let dst = self.alloc_f();
                    self.insns.push(match op {
                        BinOp::Add => Insn::AddF { a, b, dst },
                        BinOp::Sub => Insn::SubF { a, b, dst },
                        _ => Insn::MulF { a, b, dst },
                    });
                    Reg::F(dst)
                }
                (Reg::I(a), Reg::I(b)) => {
                    let dst = self.alloc_i();
                    self.insns.push(match op {
                        BinOp::Add => Insn::AddI { a, b, dst },
                        BinOp::Sub => Insn::SubI { a, b, dst },
                        _ => Insn::MulI { a, b, dst },
                    });
                    Reg::I(dst)
                }
                (l, r) => panic!("{op:?} type mismatch: {l:?} vs {r:?}"),
            },
            BinOp::Div => {
                let (a, b) = (self.expect_f(l), self.expect_f(r));
                let dst = self.alloc_f();
                self.insns.push(Insn::DivF { a, b, dst });
                Reg::F(dst)
            }
            BinOp::IntDiv | BinOp::Mod => {
                let (a, b) = (self.expect_i(l), self.expect_i(r));
                let dst = self.alloc_i();
                self.insns.push(if op == BinOp::IntDiv {
                    Insn::DivI { a, b, dst }
                } else {
                    Insn::ModI { a, b, dst }
                });
                Reg::I(dst)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let cmp = CmpOp::from_binop(op);
                let dst = self.alloc_b();
                self.insns.push(match (l, r) {
                    (Reg::F(a), Reg::F(b)) => Insn::CmpF { op: cmp, a, b, dst },
                    (Reg::I(a), Reg::I(b)) => Insn::CmpI { op: cmp, a, b, dst },
                    (Reg::B(a), Reg::B(b)) => Insn::CmpB { op: cmp, a, b, dst },
                    (l, r) => panic!("comparison type mismatch: {l:?} vs {r:?}"),
                });
                Reg::B(dst)
            }
            BinOp::And | BinOp::Or => unreachable!("handled via short-circuit"),
        }
    }

    fn lower_call(&mut self, builtin: Builtin, args: &[HExpr]) -> Reg {
        let regs: Vec<Reg> = args.iter().map(|a| self.lower(a)).collect();
        match builtin {
            Builtin::Abs => match regs[0] {
                Reg::F(a) => {
                    let dst = self.alloc_f();
                    self.insns.push(Insn::AbsF { a, dst });
                    Reg::F(dst)
                }
                Reg::I(a) => {
                    let dst = self.alloc_i();
                    self.insns.push(Insn::AbsI { a, dst });
                    Reg::I(dst)
                }
                v => panic!("abs on {v:?}"),
            },
            Builtin::Min | Builtin::Max => match (regs[0], regs[1]) {
                (Reg::F(a), Reg::F(b)) => {
                    let dst = self.alloc_f();
                    self.insns.push(if builtin == Builtin::Min {
                        Insn::MinF { a, b, dst }
                    } else {
                        Insn::MaxF { a, b, dst }
                    });
                    Reg::F(dst)
                }
                (Reg::I(a), Reg::I(b)) => {
                    let dst = self.alloc_i();
                    self.insns.push(if builtin == Builtin::Min {
                        Insn::MinI { a, b, dst }
                    } else {
                        Insn::MaxI { a, b, dst }
                    });
                    Reg::I(dst)
                }
                (l, r) => panic!("{builtin:?} type mismatch: {l:?} vs {r:?}"),
            },
            Builtin::Sqrt | Builtin::Exp | Builtin::Ln | Builtin::Sin | Builtin::Cos => {
                let a = self.expect_f(regs[0]);
                let dst = self.alloc_f();
                self.insns.push(match builtin {
                    Builtin::Sqrt => Insn::SqrtF { a, dst },
                    Builtin::Exp => Insn::ExpF { a, dst },
                    Builtin::Ln => Insn::LnF { a, dst },
                    Builtin::Sin => Insn::SinF { a, dst },
                    _ => Insn::CosF { a, dst },
                });
                Reg::F(dst)
            }
            Builtin::Trunc | Builtin::Round => {
                let a = self.expect_f(regs[0]);
                let dst = self.alloc_i();
                self.insns.push(if builtin == Builtin::Trunc {
                    Insn::TruncFI { a, dst }
                } else {
                    Insn::RoundFI { a, dst }
                });
                Reg::I(dst)
            }
            Builtin::RealFn => {
                let a = self.expect_i(regs[0]);
                let dst = self.alloc_f();
                self.insns.push(Insn::CastIF { a, dst });
                Reg::F(dst)
            }
            // `ord` is the identity on the runtime int representation.
            Builtin::Ord => Reg::I(self.expect_i(regs[0])),
        }
    }

    /// Lower one RHS subscript to an affine form over `i64` registers.
    /// Loop counters *are* registers, and a dynamic subscript contributes
    /// the register its value lands in — so every subscript shape
    /// uniformly becomes `base + Σ c·reg`.
    fn lower_sub(&mut self, s: &SubscriptExpr) -> AffDim {
        match s {
            SubscriptExpr::Var(iv) => AffDim {
                base: 0,
                terms: vec![(iv.index() as u16, 1)],
            },
            SubscriptExpr::VarOffset(iv, d) => AffDim {
                base: *d,
                terms: vec![(iv.index() as u16, 1)],
            },
            SubscriptExpr::Affine(a) => AffDim {
                base: a
                    .rest
                    .eval(&self.store.params)
                    .unwrap_or_else(|| panic!("cannot evaluate {}", a.rest)),
                terms: a
                    .iv_terms
                    .iter()
                    .map(|&(iv, c)| (iv.index() as u16, c))
                    .collect(),
            },
            SubscriptExpr::Dynamic(e) => {
                let r = self.lower(e);
                AffDim {
                    base: 0,
                    terms: vec![(self.expect_i(r), 1)],
                }
            }
        }
    }

    /// Fold per-dimension affine subscripts against `array`'s physical
    /// layout into a strength-reduced [`Addr`].
    fn push_addr(&mut self, array: DataId, dims: Vec<AffDim>) -> u16 {
        let spec = &self.store.array(array).spec;
        assert_eq!(dims.len(), spec.dims.len(), "subscript rank mismatch");
        let n = spec.dims.len();
        let mut strides = vec![1i64; n];
        for d in (0..n.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * spec.dims[d + 1].physical_width();
        }
        let mut addr = Addr::default();
        for (d, value) in dims.into_iter().enumerate() {
            let ds = &spec.dims[d];
            let stride = strides[d];
            #[cfg(debug_assertions)]
            addr.dbg_dims.push((value.clone(), ds.lo, ds.hi));
            match ds.window {
                // Genuinely windowed: the mod is load-bearing.
                Some(w) if w < ds.logical_width() => addr.special.push(WinDim {
                    stride,
                    lo: ds.lo,
                    window: w,
                    value,
                }),
                // Plain dimension: fold into the linear form.
                _ => {
                    addr.base += (value.base - ds.lo) * stride;
                    for (r, c) in value.terms {
                        match addr.lin.iter_mut().find(|(v, _)| *v == r) {
                            Some((_, existing)) => *existing += c * stride,
                            None => addr.lin.push((r, c * stride)),
                        }
                    }
                }
            }
        }
        addr.lin.retain(|&(_, c)| c != 0);
        self.addrs.push(addr);
        u16::try_from(self.addrs.len() - 1).expect("address table overflow")
    }
}

impl<'s, 'm> CompiledProgram<'s, 'm> {
    #[inline(always)]
    fn eval_addr(addr: &Addr, frame: &Frame) -> usize {
        // Debug builds re-derive each dimension's logical index and bounds
        // check it, matching `NdSpec::offset`'s strictness; release builds
        // rely on the schedule (plus the physical-buffer bounds check).
        #[cfg(debug_assertions)]
        for (value, lo, hi) in &addr.dbg_dims {
            let mut v = value.base;
            for &(r, c) in &value.terms {
                v += c * frame.gi(r);
            }
            assert!(
                v >= *lo && v <= *hi,
                "index {v} outside {lo}..{hi} (compiled subscript)"
            );
        }
        let mut off = addr.base;
        for &(r, c) in &addr.lin {
            off += c * frame.gi(r);
        }
        for w in &addr.special {
            let mut v = w.value.base;
            for &(r, c) in &w.value.terms {
                v += c * frame.gi(r);
            }
            off += (v - w.lo).rem_euclid(w.window) * w.stride;
        }
        // A schedule bug that produced a negative offset wraps to a huge
        // usize here and trips the buffer bounds check — memory safe.
        off as usize
    }

    /// Execute one equation's tape in `frames` and store the result.
    pub(crate) fn run_eq(&self, eq_id: EqId, frames: &mut Frames) {
        let ceq = self.eqs[eq_id]
            .as_ref()
            .unwrap_or_else(|| panic!("{eq_id:?} was not lowered"));
        let frame = &mut frames.frames[eq_id];
        let insns = &ceq.insns;
        let mut pc = 0usize;
        while pc < insns.len() {
            // SAFETY: `pc < insns.len()` is checked by the loop condition;
            // jump targets are validated to be ≤ len.
            match *unsafe { insns.get_unchecked(pc) } {
                Insn::CopyF { src, dst } => frame.sf(dst, frame.gf(src)),
                Insn::CopyI { src, dst } => frame.si(dst, frame.gi(src)),
                Insn::CopyB { src, dst } => frame.sb(dst, frame.gb(src)),
                Insn::ReadScalar { slot, dst } => {
                    let v = self
                        .store
                        .read_slot(slot as usize)
                        .unwrap_or_else(|| panic!("scalar slot {slot} read before definition"));
                    match (dst, v) {
                        (Reg::F(r), Value::Real(x)) => frame.sf(r, x),
                        (Reg::I(r), Value::Int(x)) => frame.si(r, x),
                        (Reg::B(r), Value::Bool(x)) => frame.sb(r, x),
                        (d, v) => panic!("scalar slot holds {v:?}, tape expects {d:?}"),
                    }
                }
                Insn::LoadF { buf, addr, dst } => {
                    let off = Self::eval_addr(&ceq.addrs[addr as usize], frame);
                    frame.sf(dst, self.bufs_f[buf as usize].get(off));
                }
                Insn::LoadI { buf, addr, dst } => {
                    let off = Self::eval_addr(&ceq.addrs[addr as usize], frame);
                    frame.si(dst, self.bufs_i[buf as usize].get(off));
                }
                Insn::LoadB { buf, addr, dst } => {
                    let off = Self::eval_addr(&ceq.addrs[addr as usize], frame);
                    frame.sb(dst, self.bufs_b[buf as usize].get(off));
                }
                Insn::AddF { a, b, dst } => frame.sf(dst, frame.gf(a) + frame.gf(b)),
                Insn::SubF { a, b, dst } => frame.sf(dst, frame.gf(a) - frame.gf(b)),
                Insn::MulF { a, b, dst } => frame.sf(dst, frame.gf(a) * frame.gf(b)),
                Insn::DivF { a, b, dst } => frame.sf(dst, frame.gf(a) / frame.gf(b)),
                Insn::MinF { a, b, dst } => frame.sf(dst, frame.gf(a).min(frame.gf(b))),
                Insn::MaxF { a, b, dst } => frame.sf(dst, frame.gf(a).max(frame.gf(b))),
                Insn::AddI { a, b, dst } => frame.si(dst, frame.gi(a) + frame.gi(b)),
                Insn::SubI { a, b, dst } => frame.si(dst, frame.gi(a) - frame.gi(b)),
                Insn::MulI { a, b, dst } => frame.si(dst, frame.gi(a) * frame.gi(b)),
                Insn::DivI { a, b, dst } => {
                    let d = frame.gi(b);
                    assert!(d != 0, "div by zero");
                    frame.si(dst, frame.gi(a).div_euclid(d));
                }
                Insn::ModI { a, b, dst } => {
                    let d = frame.gi(b);
                    assert!(d != 0, "mod by zero");
                    frame.si(dst, frame.gi(a).rem_euclid(d));
                }
                Insn::MinI { a, b, dst } => frame.si(dst, frame.gi(a).min(frame.gi(b))),
                Insn::MaxI { a, b, dst } => frame.si(dst, frame.gi(a).max(frame.gi(b))),
                Insn::NegF { a, dst } => frame.sf(dst, -frame.gf(a)),
                Insn::NegI { a, dst } => frame.si(dst, -frame.gi(a)),
                Insn::AbsF { a, dst } => frame.sf(dst, frame.gf(a).abs()),
                Insn::AbsI { a, dst } => frame.si(dst, frame.gi(a).abs()),
                Insn::NotB { a, dst } => frame.sb(dst, !frame.gb(a)),
                Insn::SqrtF { a, dst } => frame.sf(dst, frame.gf(a).sqrt()),
                Insn::ExpF { a, dst } => frame.sf(dst, frame.gf(a).exp()),
                Insn::LnF { a, dst } => frame.sf(dst, frame.gf(a).ln()),
                Insn::SinF { a, dst } => frame.sf(dst, frame.gf(a).sin()),
                Insn::CosF { a, dst } => frame.sf(dst, frame.gf(a).cos()),
                Insn::CastIF { a, dst } => frame.sf(dst, frame.gi(a) as f64),
                Insn::TruncFI { a, dst } => frame.si(dst, frame.gf(a).trunc() as i64),
                Insn::RoundFI { a, dst } => frame.si(dst, frame.gf(a).round() as i64),
                Insn::CmpF { op, a, b, dst } => frame.sb(dst, op.eval(frame.gf(a), frame.gf(b))),
                Insn::CmpI { op, a, b, dst } => frame.sb(dst, op.eval(frame.gi(a), frame.gi(b))),
                Insn::CmpB { op, a, b, dst } => frame.sb(dst, op.eval(frame.gb(a), frame.gb(b))),
                Insn::Jump { target } => {
                    pc = target as usize;
                    continue;
                }
                Insn::JumpIfNot { cond, target } => {
                    if !frame.gb(cond) {
                        pc = target as usize;
                        continue;
                    }
                }
                Insn::JumpIf { cond, target } => {
                    if frame.gb(cond) {
                        pc = target as usize;
                        continue;
                    }
                }
                Insn::JumpCmpFNot { op, a, b, target } => {
                    if !op.eval(frame.gf(a), frame.gf(b)) {
                        pc = target as usize;
                        continue;
                    }
                }
                Insn::JumpCmpINot { op, a, b, target } => {
                    if !op.eval(frame.gi(a), frame.gi(b)) {
                        pc = target as usize;
                        continue;
                    }
                }
                Insn::JumpCmpF { op, a, b, target } => {
                    if op.eval(frame.gf(a), frame.gf(b)) {
                        pc = target as usize;
                        continue;
                    }
                }
                Insn::JumpCmpI { op, a, b, target } => {
                    if op.eval(frame.gi(a), frame.gi(b)) {
                        pc = target as usize;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        match ceq.out {
            OutSpec::Scalar { slot } => {
                let v = match ceq.src {
                    Reg::F(r) => Value::Real(frame.gf(r)),
                    Reg::I(r) => Value::Int(frame.gi(r)),
                    Reg::B(r) => Value::Bool(frame.gb(r)),
                };
                self.store.write_slot(slot as usize, v);
            }
            OutSpec::ArrayF { buf, addr } => {
                let off = Self::eval_addr(&ceq.addrs[addr as usize], frame);
                let Reg::F(r) = ceq.src else { unreachable!() };
                // SAFETY: the single-assignment schedule guarantees
                // concurrent DOALL iterations write disjoint offsets (same
                // contract as `ArrayInstance::write`).
                unsafe { self.bufs_f[buf as usize].set(off, frame.gf(r)) };
            }
            OutSpec::ArrayI { buf, addr } => {
                let off = Self::eval_addr(&ceq.addrs[addr as usize], frame);
                let Reg::I(r) = ceq.src else { unreachable!() };
                // SAFETY: as above.
                unsafe { self.bufs_i[buf as usize].set(off, frame.gi(r)) };
            }
            OutSpec::ArrayB { buf, addr } => {
                let off = Self::eval_addr(&ceq.addrs[addr as usize], frame);
                let Reg::B(r) = ceq.src else { unreachable!() };
                // SAFETY: as above.
                unsafe { self.bufs_b[buf as usize].set(off, frame.gb(r)) };
            }
        }
    }

    /// Lowering statistics for one equation, used by tests: total
    /// instructions, address-table size, and how many addresses kept a
    /// windowed special dimension.
    #[cfg(test)]
    fn stats(&self, eq: EqId) -> (usize, usize, usize) {
        let ceq = self.eqs[eq].as_ref().expect("lowered");
        let special = ceq.addrs.iter().map(|a| a.special.len()).sum();
        (ceq.insns.len(), ceq.addrs.len(), special)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Inputs;
    use ps_depgraph::build_depgraph;
    use ps_lang::frontend;
    use ps_scheduler::{schedule_module, ScheduleOptions};

    fn build(src: &str) -> (ps_lang::HirModule, ps_scheduler::ScheduleResult) {
        let m = frontend(src).unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        (m, sched)
    }

    #[test]
    fn affine_subscripts_fold_to_linear_form() {
        // Unwindowed 2-D array: every access strength-reduces to base+Σc·iv
        // with no special dims.
        let src = "T: module (n: int): [out: array[1..n,1..n] of real];
             type I, J = 1 .. n;
             var a: array [I,J] of real;
             define
                a[I,J] = real(I) + real(J) * 2.0;
                out[I,J] = a[I,J] * 0.5;
             end T;";
        let inputs = Inputs::new().set_int("n", 4);
        let (m, sched) = build(src);
        let store = Store::build(&m, &sched.memory, &inputs, false).unwrap();
        let prog = compile_program(&m, &sched.flowchart, &store);
        let eq2 = m.equation_by_label("eq.2").unwrap();
        let (_, addrs, special) = prog.stats(eq2);
        assert_eq!(addrs, 2, "one load + one store address");
        assert_eq!(special, 0, "fully linear: no window, no dynamic dims");
    }

    #[test]
    fn windowed_dim_keeps_its_mod() {
        // fib with window 3: the K dimension must stay special.
        let src = "T: module (n: int): [y: int];
             type K = 3 .. n;
             var a: array [1 .. n] of int;
             define
                a[1] = 1;
                a[2] = 1;
                a[K] = a[K-1] + a[K-2];
                y = a[n];
             end T;";
        let inputs = Inputs::new().set_int("n", 10);
        let (m, sched) = build(src);
        let a = m.data_by_name("a").unwrap();
        assert_eq!(sched.memory.window(a, 0), Some(3), "planner windows a");
        let store = Store::build(&m, &sched.memory, &inputs, false).unwrap();
        let prog = compile_program(&m, &sched.flowchart, &store);
        let eq3 = m.equation_by_label("eq.3").unwrap();
        let (_, addrs, special) = prog.stats(eq3);
        assert_eq!(addrs, 3, "two loads + one store");
        assert_eq!(special, 3, "every access of the windowed dim needs mod");
    }

    #[test]
    fn guards_lower_to_fused_branches() {
        // A guarded body: the `if` condition must produce fused
        // compare-and-branch instructions, not materialized booleans.
        let src = "T: module (n: int): [out: array[1..n] of int];
             type I = 1 .. n;
             define
                out[I] = if (I = 1) or (I = n) then 0 else I;
             end T;";
        let inputs = Inputs::new().set_int("n", 8);
        let (m, sched) = build(src);
        let store = Store::build(&m, &sched.memory, &inputs, false).unwrap();
        let prog = compile_program(&m, &sched.flowchart, &store);
        let eq1 = m.equation_by_label("eq.1").unwrap();
        let ceq = prog.eqs[eq1].as_ref().unwrap();
        assert!(
            ceq.insns
                .iter()
                .any(|i| matches!(i, Insn::JumpCmpINot { .. })),
            "guard comparisons fuse into branches: {:?}",
            ceq.insns
        );
        assert!(
            !ceq.insns.iter().any(|i| matches!(i, Insn::CmpI { .. })),
            "no materialized guard booleans: {:?}",
            ceq.insns
        );
    }

    #[test]
    fn tape_executes_a_scalar_chain() {
        let src = "T: module (x: int): [y: int];
             var a, b: int;
             define
                a = x * 2;
                b = a + 1;
                y = b * b;
             end T;";
        let inputs = Inputs::new().set_int("x", 3);
        let (m, sched) = build(src);
        let store = Store::build(&m, &sched.memory, &inputs, false).unwrap();
        let prog = compile_program(&m, &sched.flowchart, &store);
        let mut frames = Frames::new(&prog);
        for eq in sched.flowchart.equations() {
            prog.run_eq(eq, &mut frames);
        }
        drop(prog);
        let out = store.into_outputs();
        assert_eq!(out.scalar("y"), Value::Int(49));
    }
}
