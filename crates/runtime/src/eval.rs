//! Expression evaluation over the live store.

use crate::store::Store;
use crate::value::Value;
use ps_lang::ast::{BinOp, UnOp};
use ps_lang::hir::{Builtin, Equation, HExpr, SubscriptExpr};
use ps_lang::{EqId, IvId};

/// The index environment: bindings of `(equation, index variable)` pairs to
/// loop counter values. Small (loop depth × 1), so linear scan wins over
/// hashing.
#[derive(Clone, Debug, Default)]
pub struct Env {
    bindings: Vec<((EqId, IvId), i64)>,
}

impl Env {
    pub fn new() -> Env {
        Env::default()
    }

    pub fn bind(&mut self, eq: EqId, iv: IvId, value: i64) {
        self.bindings.push(((eq, iv), value));
    }

    pub fn lookup(&self, eq: EqId, iv: IvId) -> i64 {
        self.bindings
            .iter()
            .rev()
            .find(|((e, v), _)| *e == eq && *v == iv)
            .map(|(_, val)| *val)
            .unwrap_or_else(|| panic!("index variable {iv:?} of {eq:?} unbound"))
    }

    pub fn child(&self) -> Env {
        self.clone()
    }

    /// Push a binding slot with a placeholder value; returns its index for
    /// cheap in-place updates via [`Env::set_slot`]. Used by the
    /// interpreter to hoist environment construction out of hot DOALL
    /// element loops.
    pub fn push_slot(&mut self, eq: EqId, iv: IvId) -> usize {
        self.bindings.push(((eq, iv), 0));
        self.bindings.len() - 1
    }

    /// Overwrite the value of a slot created by [`Env::push_slot`].
    pub fn set_slot(&mut self, slot: usize, value: i64) {
        self.bindings[slot].1 = value;
    }

    /// Current number of bindings; pair with [`Env::truncate`] to pop the
    /// slots a loop pushed once its iterations are done.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Drop every binding past `len` (restores the state captured by
    /// [`Env::len`] before a loop pushed its slots).
    pub fn truncate(&mut self, len: usize) {
        self.bindings.truncate(len);
    }
}

/// A pool of reusable subscript vectors.
///
/// Array reads need a temporary `Vec<i64>` for the resolved index;
/// allocating one per access used to dominate the tree-walker's hot path.
/// Callers [`SubScratch::take`] a vector, fill it, and [`SubScratch::put`]
/// it back — in steady state no allocation happens. A *pool* (rather than
/// one buffer) because dynamic subscripts re-enter [`eval`], which may need
/// a second vector while the outer one is in use.
#[derive(Clone, Debug, Default)]
pub struct SubScratch {
    pool: Vec<Vec<i64>>,
}

impl SubScratch {
    pub fn new() -> SubScratch {
        SubScratch::default()
    }

    /// Borrow an empty vector from the pool (allocates only on first use at
    /// each nesting depth).
    pub fn take(&mut self) -> Vec<i64> {
        self.pool.pop().unwrap_or_default()
    }

    /// Return a vector to the pool for reuse.
    pub fn put(&mut self, mut v: Vec<i64>) {
        v.clear();
        self.pool.push(v);
    }
}

/// Evaluate the right-hand side of `eq` under `env`. `scratch` provides
/// reusable subscript buffers so array reads allocate nothing in steady
/// state.
pub fn eval(
    store: &Store<'_>,
    eq_id: EqId,
    eq: &Equation,
    env: &Env,
    scratch: &mut SubScratch,
    e: &HExpr,
) -> Value {
    match e {
        HExpr::Int(v) => Value::Int(*v),
        HExpr::Real(v) => Value::Real(*v),
        HExpr::Bool(v) => Value::Bool(*v),
        HExpr::Char(c) => Value::Int(*c as i64),
        HExpr::EnumConst(_, ord) => Value::Int(*ord as i64),
        HExpr::ReadScalar(d) => {
            let item = &store.module.data[*d];
            if item.kind == ps_lang::hir::DataKind::Param || !item.is_array() {
                store.read_scalar(*d, 0)
            } else {
                panic!("array `{}` read as scalar", item.name)
            }
        }
        HExpr::ReadField(d, idx) => store.read_scalar(*d, *idx + 1),
        HExpr::Iv(iv) => Value::Int(env.lookup(eq_id, *iv)),
        HExpr::ReadArray { array, subs, .. } => {
            let mut index = scratch.take();
            resolve_subs(store, eq_id, eq, env, scratch, subs, &mut index);
            let v = store.array(*array).read(&index);
            scratch.put(index);
            v
        }
        HExpr::Binary { op, lhs, rhs } => {
            // Short-circuit logical operators first.
            match op {
                BinOp::And => {
                    return if eval(store, eq_id, eq, env, scratch, lhs).as_bool() {
                        eval(store, eq_id, eq, env, scratch, rhs)
                    } else {
                        Value::Bool(false)
                    };
                }
                BinOp::Or => {
                    return if eval(store, eq_id, eq, env, scratch, lhs).as_bool() {
                        Value::Bool(true)
                    } else {
                        eval(store, eq_id, eq, env, scratch, rhs)
                    };
                }
                _ => {}
            }
            let l = eval(store, eq_id, eq, env, scratch, lhs);
            let r = eval(store, eq_id, eq, env, scratch, rhs);
            binary(*op, l, r)
        }
        HExpr::Unary { op, operand } => {
            let v = eval(store, eq_id, eq, env, scratch, operand);
            match (op, v) {
                (UnOp::Neg, Value::Int(x)) => Value::Int(-x),
                (UnOp::Neg, Value::Real(x)) => Value::Real(-x),
                (UnOp::Not, Value::Bool(x)) => Value::Bool(!x),
                (op, v) => panic!("bad unary {op:?} on {v:?}"),
            }
        }
        HExpr::If { arms, else_ } => {
            for (cond, value) in arms {
                if eval(store, eq_id, eq, env, scratch, cond).as_bool() {
                    return eval(store, eq_id, eq, env, scratch, value);
                }
            }
            eval(store, eq_id, eq, env, scratch, else_)
        }
        HExpr::Call { builtin, args } => {
            // Builtins take at most two arguments; evaluate into a fixed
            // buffer instead of collecting a Vec.
            let mut vals = [Value::Int(0); 2];
            assert!(args.len() <= vals.len(), "builtin arity exceeds buffer");
            for (slot, a) in vals.iter_mut().zip(args) {
                *slot = eval(store, eq_id, eq, env, scratch, a);
            }
            call(*builtin, &vals[..args.len()])
        }
        HExpr::CastReal(inner) => {
            Value::Real(eval(store, eq_id, eq, env, scratch, inner).widen_real())
        }
    }
}

/// Resolve a subscript vector to concrete indices, appended to the
/// caller-provided `out` buffer (cleared first). Taking the buffer from the
/// caller keeps per-access heap allocation out of the hot path; `scratch`
/// serves any nested dynamic-subscript evaluation.
pub fn resolve_subs(
    store: &Store<'_>,
    eq_id: EqId,
    eq: &Equation,
    env: &Env,
    scratch: &mut SubScratch,
    subs: &[SubscriptExpr],
    out: &mut Vec<i64>,
) {
    out.clear();
    for s in subs {
        out.push(match s {
            SubscriptExpr::Var(iv) => env.lookup(eq_id, *iv),
            SubscriptExpr::VarOffset(iv, d) => env.lookup(eq_id, *iv) + d,
            SubscriptExpr::Affine(a) => {
                let mut total = a
                    .rest
                    .eval(&store.params)
                    .unwrap_or_else(|| panic!("cannot evaluate {}", a.rest));
                for &(iv, c) in &a.iv_terms {
                    total += c * env.lookup(eq_id, iv);
                }
                total
            }
            SubscriptExpr::Dynamic(e) => eval(store, eq_id, eq, env, scratch, e).as_int(),
        });
    }
}

fn binary(op: BinOp, l: Value, r: Value) -> Value {
    use Value::*;
    match op {
        BinOp::Add => match (l, r) {
            (Int(a), Int(b)) => Int(a + b),
            (Real(a), Real(b)) => Real(a + b),
            _ => panic!("add type mismatch: {l:?} + {r:?}"),
        },
        BinOp::Sub => match (l, r) {
            (Int(a), Int(b)) => Int(a - b),
            (Real(a), Real(b)) => Real(a - b),
            _ => panic!("sub type mismatch"),
        },
        BinOp::Mul => match (l, r) {
            (Int(a), Int(b)) => Int(a * b),
            (Real(a), Real(b)) => Real(a * b),
            _ => panic!("mul type mismatch"),
        },
        BinOp::Div => match (l, r) {
            (Real(a), Real(b)) => Real(a / b),
            _ => panic!("`/` requires reals (checker inserts casts)"),
        },
        BinOp::IntDiv => match (l, r) {
            (Int(a), Int(b)) => {
                assert!(b != 0, "div by zero");
                Int(a.div_euclid(b))
            }
            _ => panic!("`div` requires ints"),
        },
        BinOp::Mod => match (l, r) {
            (Int(a), Int(b)) => {
                assert!(b != 0, "mod by zero");
                Int(a.rem_euclid(b))
            }
            _ => panic!("`mod` requires ints"),
        },
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = match (l, r) {
                (Int(a), Int(b)) => a.partial_cmp(&b),
                (Real(a), Real(b)) => a.partial_cmp(&b),
                (Bool(a), Bool(b)) => a.partial_cmp(&b),
                _ => panic!("comparison type mismatch"),
            };
            let Some(ord) = ord else {
                // NaN comparisons: all false except `<>`.
                return Bool(op == BinOp::Ne);
            };
            Bool(match op {
                BinOp::Eq => ord.is_eq(),
                BinOp::Ne => !ord.is_eq(),
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            })
        }
        BinOp::And | BinOp::Or => unreachable!("handled via short-circuit"),
    }
}

fn call(builtin: Builtin, args: &[Value]) -> Value {
    use Value::*;
    match builtin {
        Builtin::Abs => match args[0] {
            Int(x) => Int(x.abs()),
            Real(x) => Real(x.abs()),
            v => panic!("abs on {v:?}"),
        },
        Builtin::Min => match (args[0], args[1]) {
            (Int(a), Int(b)) => Int(a.min(b)),
            (Real(a), Real(b)) => Real(a.min(b)),
            _ => panic!("min type mismatch"),
        },
        Builtin::Max => match (args[0], args[1]) {
            (Int(a), Int(b)) => Int(a.max(b)),
            (Real(a), Real(b)) => Real(a.max(b)),
            _ => panic!("max type mismatch"),
        },
        Builtin::Sqrt => Real(args[0].as_real().sqrt()),
        Builtin::Exp => Real(args[0].as_real().exp()),
        Builtin::Ln => Real(args[0].as_real().ln()),
        Builtin::Sin => Real(args[0].as_real().sin()),
        Builtin::Cos => Real(args[0].as_real().cos()),
        Builtin::Trunc => Int(args[0].as_real().trunc() as i64),
        Builtin::Round => Int(args[0].as_real().round() as i64),
        Builtin::RealFn => Real(args[0].as_int() as f64),
        Builtin::Ord => Int(args[0].as_int()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_shadows_inner_bindings() {
        let mut env = Env::new();
        env.bind(EqId(0), IvId(0), 1);
        env.bind(EqId(0), IvId(0), 2);
        assert_eq!(env.lookup(EqId(0), IvId(0)), 2);
    }

    #[test]
    fn env_truncate_pops_loop_slots() {
        let mut env = Env::new();
        env.bind(EqId(0), IvId(0), 1);
        let base = env.len();
        let s = env.push_slot(EqId(1), IvId(0));
        env.set_slot(s, 9);
        assert_eq!(env.lookup(EqId(1), IvId(0)), 9);
        env.truncate(base);
        assert_eq!(env.len(), 1);
        assert_eq!(env.lookup(EqId(0), IvId(0)), 1, "outer binding survives");
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        let mut s = SubScratch::new();
        let mut a = s.take();
        a.push(1);
        a.push(2);
        let ptr = a.as_ptr();
        s.put(a);
        let b = s.take();
        assert!(b.is_empty(), "returned buffers come back cleared");
        assert_eq!(b.as_ptr(), ptr, "the same allocation is reused");
    }

    #[test]
    fn binary_semantics() {
        assert_eq!(
            binary(BinOp::Add, Value::Int(2), Value::Int(3)),
            Value::Int(5)
        );
        assert_eq!(
            binary(BinOp::Div, Value::Real(1.0), Value::Real(4.0)),
            Value::Real(0.25)
        );
        assert_eq!(
            binary(BinOp::IntDiv, Value::Int(7), Value::Int(2)),
            Value::Int(3)
        );
        assert_eq!(
            binary(BinOp::Mod, Value::Int(-1), Value::Int(3)),
            Value::Int(2),
            "euclidean mod"
        );
        assert_eq!(
            binary(BinOp::Le, Value::Real(1.0), Value::Real(1.0)),
            Value::Bool(true)
        );
    }

    #[test]
    fn builtins() {
        assert_eq!(call(Builtin::Abs, &[Value::Int(-3)]), Value::Int(3));
        assert_eq!(
            call(Builtin::Max, &[Value::Real(1.0), Value::Real(2.0)]),
            Value::Real(2.0)
        );
        assert_eq!(call(Builtin::Sqrt, &[Value::Real(9.0)]), Value::Real(3.0));
        assert_eq!(call(Builtin::Round, &[Value::Real(2.6)]), Value::Int(3));
        assert_eq!(call(Builtin::RealFn, &[Value::Int(2)]), Value::Real(2.0));
    }

    #[test]
    fn nan_comparisons() {
        let nan = Value::Real(f64::NAN);
        assert_eq!(binary(BinOp::Eq, nan, nan), Value::Bool(false));
        assert_eq!(binary(BinOp::Ne, nan, nan), Value::Bool(true));
        assert_eq!(binary(BinOp::Lt, nan, Value::Real(1.0)), Value::Bool(false));
    }
}
