//! The scheduled flowchart interpreter.
//!
//! `DO` loops run in order; `DOALL` loops are handed to the executor.
//! Perfectly nested `DOALL` chains are flattened into a single
//! `parallel_for` over the product index space so a `DOALL I (DOALL J)`
//! nest saturates the pool even when the outer extent is small.
//!
//! Two execution engines walk the same flowchart:
//!
//! * [`Engine::Compiled`] (the default) executes equations as typed
//!   register tapes — lowered **once per [`crate::Program`]**, specialized
//!   per parameter layout, and reused across runs — with strength-reduced
//!   addressing and zero per-iteration allocations;
//! * [`Engine::TreeWalk`] evaluates the `HExpr` trees directly via
//!   [`crate::eval`] — slower, but structurally independent, so it serves
//!   as the differential-testing oracle for the compiled engine.
//!
//! `check_writes` works under **both** engines: the tree-walker's checked
//! store accessors maintain the logical-index tags, and the compiled
//! engine's checked tape mode performs the identical tag transitions
//! inline.
//!
//! [`run_module`] is a thin compile-and-run-once wrapper over
//! [`crate::Program`]; callers serving many runs should hold a `Program`.

use crate::compiled::{ExecProg, Frames};
use crate::eval::{eval, Env, SubScratch};
use crate::program::Program;
use crate::store::{Inputs, Outputs, RuntimeError, Store};
use crate::value::Value;
use ps_executor::Executor;
use ps_lang::hir::{HirModule, LhsSub};
use ps_lang::EqId;
use ps_scheduler::{Descriptor, DrainSpec, Flowchart, LoopDescriptor, LoopKind, MemoryPlan};
use ps_support::idx::Idx;
use ps_trace::EvKind;

/// Which evaluation engine executes equation bodies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// Typed register bytecode with strength-reduced subscripts (fast).
    #[default]
    Compiled,
    /// Direct recursive `HExpr` evaluation (the differential oracle).
    TreeWalk,
}

/// How much static verification [`crate::Program`] construction performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AnalysisLevel {
    /// No static analysis beyond structural tape validation.
    #[default]
    Off,
    /// Run the `ps-analyze` verifier over the compiled tapes: prove
    /// def-before-use, in-bounds addressing, and write-disjointness for
    /// every admissible parameter vector. Construction fails on any
    /// provable violation; arrays whose accesses are fully proven skip the
    /// `check_writes` tag machinery. Only meaningful under
    /// [`Engine::Compiled`] (the tree-walker has no tapes to analyze; the
    /// level is then a documented no-op).
    Verify,
}

/// Knobs for [`run_module`] / [`crate::Program`].
///
/// `PartialEq`/`Eq` make options usable as part of a compile-cache key
/// (a serving registry caches one `Program` per `(source, options)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Track logical tags per physical slot, catching double writes and
    /// window evictions (slow; for tests). Works under both engines.
    pub check_writes: bool,
    /// Evaluation engine (compiled by default).
    pub engine: Engine,
    /// Upper bound on cached per-integer-parameter-layout specializations
    /// held by a [`crate::Program`]. Past it, the least-recently-used
    /// layout is evicted (see [`crate::Program::spec_evictions`]), so
    /// adversarial parameter diversity under serving load cannot grow
    /// memory without bound. Clamped to at least 1.
    pub spec_cache_cap: usize,
    /// Static verification level (off by default).
    pub analysis: AnalysisLevel,
}

impl Default for RuntimeOptions {
    fn default() -> RuntimeOptions {
        RuntimeOptions {
            check_writes: false,
            engine: Engine::default(),
            spec_cache_cap: 64,
            analysis: AnalysisLevel::default(),
        }
    }
}

/// Execute a scheduled module: compile a [`Program`] and run it once.
///
/// For compile-once / run-many workloads, build the [`Program`] yourself
/// and call [`Program::run`] repeatedly — that amortizes lowering and
/// reuses pooled run state.
pub fn run_module(
    module: &HirModule,
    flowchart: &Flowchart,
    plan: &MemoryPlan,
    inputs: &Inputs,
    executor: &dyn Executor,
    options: RuntimeOptions,
) -> Result<Outputs, RuntimeError> {
    Program::new(module, flowchart, plan, options).run(inputs, executor)
}

/// Mutable per-worker state of the tree-walk engine: the index environment
/// plus reusable subscript buffers.
#[derive(Clone, Debug, Default)]
pub(crate) struct TreeState {
    env: Env,
    scratch: SubScratch,
}

pub(crate) struct Interp<'a, 'm> {
    pub(crate) store: &'a Store<'m>,
    pub(crate) executor: &'a dyn Executor,
    /// Trace label per equation (see [`crate::Program`]); empty slices are
    /// fine — region events then carry label 0 ("unnamed").
    pub(crate) eq_labels: &'a [u64],
}

/// Pool workers switch from the flattened per-element walk to chunking the
/// *outer* `DOALL` range once each outer iteration carries at least this
/// many inner elements: above the threshold a chunk runs the inner nest
/// with the sequential inline walk (`run_eq_range` innermost fast path, no
/// per-element `div`/`mod` index decomposition).
const INLINE_NEST_MIN_INNER: i64 = 8;

/// Every equation reachable in `items` (loop bodies included), in order.
fn collect_equations(items: &[Descriptor]) -> Vec<EqId> {
    let mut out = Vec::new();
    fn go(items: &[Descriptor], out: &mut Vec<EqId>) {
        for d in items {
            match d {
                Descriptor::Equation(eq) => out.push(*eq),
                Descriptor::Loop(l) => go(&l.body, out),
                Descriptor::Drain(_) => {}
            }
        }
    }
    go(items, &mut out);
    out
}

/// Flatten a perfectly nested `DOALL` chain starting at `l`; returns the
/// chain, per-level `(lo, hi)` ranges and widths, the flattened iteration
/// count, and the innermost body.
fn flatten_doall<'l>(
    l: &'l LoopDescriptor,
    bounds: impl Fn(ps_lang::SubrangeId) -> (i64, i64),
) -> (
    Vec<&'l LoopDescriptor>,
    Vec<(i64, i64)>,
    Vec<i64>,
    i64,
    &'l [Descriptor],
) {
    let mut chain: Vec<&LoopDescriptor> = vec![l];
    let mut body: &[Descriptor] = &l.body;
    while let [Descriptor::Loop(inner)] = body {
        if inner.kind != LoopKind::Doall {
            break;
        }
        chain.push(inner);
        body = &inner.body;
    }
    let ranges: Vec<(i64, i64)> = chain.iter().map(|c| bounds(c.subrange)).collect();
    let widths: Vec<i64> = ranges
        .iter()
        .map(|&(lo, hi)| (hi - lo + 1).max(0))
        .collect();
    let total: i64 = widths.iter().product();
    (chain, ranges, widths, total, body)
}

impl<'a, 'm> Interp<'a, 'm> {
    fn module(&self) -> &'m HirModule {
        self.store.module
    }

    /// Open a trace span for a parallel region about to be handed to the
    /// executor, labelled with the first equation in `body` (so profiles
    /// and flight dumps name the equation, not just an epoch). `None` —
    /// and zero work — while tracing is disabled.
    fn region_span(&self, body: &[Descriptor], total: i64) -> Option<ps_trace::SpanGuard> {
        if !ps_trace::enabled() {
            return None;
        }
        fn first_eq(items: &[Descriptor]) -> Option<EqId> {
            for d in items {
                match d {
                    Descriptor::Equation(eq) => return Some(*eq),
                    Descriptor::Loop(l) => {
                        if let Some(eq) = first_eq(&l.body) {
                            return Some(eq);
                        }
                    }
                    Descriptor::Drain(_) => {}
                }
            }
            None
        }
        let label = first_eq(body)
            .and_then(|eq| self.eq_labels.get(eq.index()).copied())
            .unwrap_or(0);
        Some(ps_trace::span(EvKind::Region, label, total as u64))
    }

    fn bounds(&self, sr: ps_lang::SubrangeId) -> (i64, i64) {
        self.store.subrange_bounds(sr)
    }

    // ---- compiled engine ----

    pub(crate) fn run_items_compiled(
        &self,
        prog: &ExecProg<'_, 'm>,
        items: &[Descriptor],
        frames: &mut Frames,
    ) {
        for d in items {
            match d {
                Descriptor::Equation(eq) => prog.run_eq(*eq, frames),
                Descriptor::Loop(l) => self.run_loop_compiled(prog, l, frames),
                Descriptor::Drain(spec) => {
                    panic!("drain over {} reached outside a time loop", spec.time_name)
                }
            }
        }
    }

    fn run_loop_compiled(&self, prog: &ExecProg<'_, 'm>, l: &LoopDescriptor, frames: &mut Frames) {
        match l.kind {
            LoopKind::Do => {
                let (lo, hi) = self.bounds(l.subrange);
                for i in lo..=hi {
                    // Counters live in flat per-equation slots: binding is
                    // an indexed store, no environment structure at all.
                    for &(eq, iv) in &l.bindings {
                        frames.set_iv(eq, iv, i);
                    }
                    for d in &l.body {
                        match d {
                            Descriptor::Drain(spec) => self.run_drain(spec, i),
                            other => {
                                self.run_items_compiled(prog, std::slice::from_ref(other), frames)
                            }
                        }
                    }
                }
            }
            LoopKind::Doall => {
                // Sequential executor: no flattening, no chunk teardown,
                // no allocation — bind counters in the caller's frames
                // and walk the nest inline. The nested order equals the
                // flattened row-major order, so outputs stay bit-identical;
                // this is what keeps small solves cheap in compile-once /
                // run-many serving.
                if self.executor.threads() == 1 {
                    self.run_doall_compiled_inline(prog, l, frames);
                    return;
                }
                let (chain, ranges, widths, total, innermost_body) =
                    flatten_doall(l, |sr| self.bounds(sr));
                if total <= 0 {
                    return;
                }
                // Nested chains with enough work per outer iteration skip
                // the flattened decomposition: workers claim chunks of the
                // *outer* range and each chunk reuses the sequential inline
                // nested walk (`run_eq_range` innermost fast path) — one
                // frame clone per chunk, no per-element `div`/`mod`. Row-
                // major element order per outer index is preserved, so
                // outputs stay bit-identical to the flattened walk.
                let inner_per_outer = total / widths[0].max(1);
                if chain.len() > 1
                    && inner_per_outer >= INLINE_NEST_MIN_INNER
                    && widths[0] >= self.executor.threads() as i64
                {
                    let body_eqs = collect_equations(&l.body);
                    let parent: &Frames = frames;
                    let (lo0, hi0) = ranges[0];
                    let _rspan = self.region_span(&l.body, total);
                    self.executor.for_chunks(lo0, hi0, &|start, stop| {
                        let mut local = parent.clone_for(&body_eqs);
                        for i in start..stop {
                            for &(eq, iv) in &l.bindings {
                                local.set_iv(eq, iv, i);
                            }
                            self.run_items_compiled_inline(prog, &l.body, &mut local);
                        }
                    });
                    return;
                }
                // Each chunk clones the body equations' frames once
                // (inheriting outer DO counters and preloaded constants);
                // the element loop then runs allocation-free.
                let body_eqs = collect_equations(innermost_body);
                let parent: &Frames = frames;
                let _rspan = self.region_span(innermost_body, total);
                self.executor.for_chunks(0, total - 1, &|start, stop| {
                    let mut local = parent.clone_for(&body_eqs);
                    for flat in start..stop {
                        let mut rem = flat;
                        for k in (0..chain.len()).rev() {
                            let idx = ranges[k].0 + rem % widths[k];
                            rem /= widths[k];
                            for &(eq, iv) in &chain[k].bindings {
                                local.set_iv(eq, iv, idx);
                            }
                        }
                        self.run_items_compiled(prog, innermost_body, &mut local);
                    }
                });
            }
        }
    }

    /// The sequential inline walk over `items`: every `DOALL` met below
    /// here runs on the current thread. Used both by the sequential
    /// executor and inside a pool worker's outer-range chunk. The
    /// work-stealing pool does allow reentrant `for_chunks` from inside a
    /// running chunk (it publishes a nested region), but at this
    /// granularity the inline walk is the deliberate choice: the outer
    /// region already saturates the pool, so nested publication would add
    /// latch and steal traffic without exposing new parallelism.
    fn run_items_compiled_inline(
        &self,
        prog: &ExecProg<'_, 'm>,
        items: &[Descriptor],
        frames: &mut Frames,
    ) {
        for d in items {
            match d {
                Descriptor::Equation(eq) => prog.run_eq(*eq, frames),
                Descriptor::Loop(l) => match l.kind {
                    LoopKind::Do => self.run_do_compiled_inline(prog, l, frames),
                    LoopKind::Doall => self.run_doall_compiled_inline(prog, l, frames),
                },
                Descriptor::Drain(spec) => {
                    panic!("drain over {} reached outside a time loop", spec.time_name)
                }
            }
        }
    }

    fn run_do_compiled_inline(
        &self,
        prog: &ExecProg<'_, 'm>,
        l: &LoopDescriptor,
        frames: &mut Frames,
    ) {
        let (lo, hi) = self.bounds(l.subrange);
        for i in lo..=hi {
            for &(eq, iv) in &l.bindings {
                frames.set_iv(eq, iv, i);
            }
            for d in &l.body {
                match d {
                    Descriptor::Drain(spec) => self.run_drain(spec, i),
                    other => {
                        self.run_items_compiled_inline(prog, std::slice::from_ref(other), frames)
                    }
                }
            }
        }
    }

    fn run_doall_compiled_inline(
        &self,
        prog: &ExecProg<'_, 'm>,
        l: &LoopDescriptor,
        frames: &mut Frames,
    ) {
        let (lo, hi) = self.bounds(l.subrange);
        // A single-equation body (the common innermost case) hoists the
        // tape lookup out of the element loop.
        if let [Descriptor::Equation(eq)] = &l.body[..] {
            prog.run_eq_range(*eq, &l.bindings, lo, hi, frames);
            return;
        }
        for i in lo..=hi {
            for &(eq, iv) in &l.bindings {
                frames.set_iv(eq, iv, i);
            }
            self.run_items_compiled_inline(prog, &l.body, frames);
        }
    }

    // ---- tree-walk engine ----

    pub(crate) fn run_items(&self, items: &[Descriptor], st: &mut TreeState) {
        for d in items {
            match d {
                Descriptor::Equation(eq) => self.run_equation(*eq, st),
                Descriptor::Loop(l) => self.run_loop(l, st),
                Descriptor::Drain(spec) => {
                    panic!("drain over {} reached outside a time loop", spec.time_name)
                }
            }
        }
    }

    fn run_loop(&self, l: &LoopDescriptor, st: &mut TreeState) {
        match l.kind {
            LoopKind::Do => {
                let (lo, hi) = self.bounds(l.subrange);
                // Like the DOALL path: push binding slots once, overwrite
                // them per iteration, truncate afterwards — no per-iteration
                // environment clone.
                let base = st.env.len();
                let slots: Vec<usize> = l
                    .bindings
                    .iter()
                    .map(|&(eq, iv)| st.env.push_slot(eq, iv))
                    .collect();
                for i in lo..=hi {
                    for &slot in &slots {
                        st.env.set_slot(slot, i);
                    }
                    // A DO body may contain a Drain, which needs the time
                    // index: handle it inline here.
                    for d in &l.body {
                        match d {
                            Descriptor::Drain(spec) => self.run_drain(spec, i),
                            other => self.run_items(std::slice::from_ref(other), st),
                        }
                    }
                }
                st.env.truncate(base);
            }
            LoopKind::Doall => {
                // Sequential executor: bind slots in the caller's
                // environment and recurse (mirrors the compiled engine's
                // inline fast path; same element order, bit-identical).
                if self.executor.threads() == 1 {
                    let (lo, hi) = self.bounds(l.subrange);
                    let base = st.env.len();
                    let slots: Vec<usize> = l
                        .bindings
                        .iter()
                        .map(|&(eq, iv)| st.env.push_slot(eq, iv))
                        .collect();
                    for i in lo..=hi {
                        for &slot in &slots {
                            st.env.set_slot(slot, i);
                        }
                        self.run_items(&l.body, st);
                    }
                    st.env.truncate(base);
                    return;
                }
                let (chain, ranges, widths, total, innermost_body) =
                    flatten_doall(l, |sr| self.bounds(sr));
                if total <= 0 {
                    return;
                }
                // One environment per chunk: binding slots are created once
                // and overwritten per element (hot path).
                let parent: &TreeState = st;
                self.executor.for_chunks(0, total - 1, &|start, stop| {
                    let mut local = parent.clone();
                    // Slot layout: per chain level, one slot per binding.
                    let mut slots: Vec<Vec<usize>> = Vec::with_capacity(chain.len());
                    for level in &chain {
                        slots.push(
                            level
                                .bindings
                                .iter()
                                .map(|&(eq, iv)| local.env.push_slot(eq, iv))
                                .collect(),
                        );
                    }
                    for flat in start..stop {
                        let mut rem = flat;
                        for k in (0..chain.len()).rev() {
                            let idx = ranges[k].0 + rem % widths[k];
                            rem /= widths[k];
                            for &slot in &slots[k] {
                                local.env.set_slot(slot, idx);
                            }
                        }
                        self.run_items(innermost_body, &mut local);
                    }
                });
            }
        }
    }

    fn run_equation(&self, eq_id: EqId, st: &mut TreeState) {
        let eq = &self.module().equations[eq_id];
        let value = eval(self.store, eq_id, eq, &st.env, &mut st.scratch, &eq.rhs);
        match eq.lhs_field {
            Some(fidx) => self.store.write_scalar(eq.lhs, fidx + 1, value),
            None => {
                if eq.lhs_subs.is_empty() {
                    self.store.write_scalar(eq.lhs, 0, value);
                } else {
                    let mut index = st.scratch.take();
                    for s in &eq.lhs_subs {
                        index.push(match s {
                            LhsSub::Const(a) => a
                                .eval(&self.store.params)
                                .unwrap_or_else(|| panic!("cannot evaluate {a}")),
                            LhsSub::Var(iv) => st.env.lookup(eq_id, *iv),
                        });
                    }
                    self.store.array(eq.lhs).write(&index, value);
                    st.scratch.put(index);
                }
            }
        }
    }

    /// The windowed-hyperplane drain: copy finished elements of the
    /// transformed array into the destination while plane `t` is current.
    fn run_drain(&self, spec: &DrainSpec, t: i64) {
        let ranges: Vec<(i64, i64)> = spec.inner.iter().map(|&sr| self.bounds(sr)).collect();
        let widths: Vec<i64> = ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(0))
            .collect();
        let total: i64 = widths.iter().product();
        if total <= 0 {
            return;
        }
        let bounds: Vec<(i64, i64)> = spec
            .original_bounds
            .iter()
            .map(|(lo, hi)| {
                (
                    lo.eval(&self.store.params)
                        .unwrap_or_else(|| panic!("cannot evaluate {lo}")),
                    hi.eval(&self.store.params)
                        .unwrap_or_else(|| panic!("cannot evaluate {hi}")),
                )
            })
            .collect();

        self.executor.for_chunks(0, total - 1, &|start, stop| {
            let n_inner = widths.len();
            let mut inner_idx = vec![0i64; n_inner];
            let mut loop_vals = vec![0i64; 1 + n_inner];
            let mut original = vec![0i64; spec.original.len()];
            let mut src_index = vec![0i64; 1 + n_inner];
            'elem: for flat in start..stop {
                let mut rem = flat;
                for k in (0..n_inner).rev() {
                    inner_idx[k] = ranges[k].0 + rem % widths[k];
                    rem /= widths[k];
                }
                // Transformed point [t, inner...] → original coordinates.
                loop_vals[0] = t;
                loop_vals[1..].copy_from_slice(&inner_idx);
                for (o, (coeffs, rest)) in original.iter_mut().zip(&spec.original) {
                    *o = rest.eval(&self.store.params).unwrap_or(0)
                        + coeffs
                            .iter()
                            .zip(&loop_vals)
                            .map(|(c, v)| c * v)
                            .sum::<i64>();
                }
                for (k, &(lo, hi)) in bounds.iter().enumerate() {
                    if original[k] < lo || original[k] > hi {
                        continue 'elem;
                    }
                }
                if original[spec.drain_dim] != bounds[spec.drain_dim].1 {
                    continue 'elem;
                }
                src_index[0] = t;
                src_index[1..].copy_from_slice(&inner_idx);
                let v = self.store.array(spec.src).read(&src_index);
                let dst_index: Vec<i64> = original
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != spec.drain_dim)
                    .map(|(_, &x)| x)
                    .collect();
                self.store.array(spec.dst).write(&dst_index, v);
            }
        });
    }
}

/// Convenience used by tests and benches: read one element of an array
/// through an equation-free context (inputs validation path).
pub fn read_result(outputs: &Outputs, name: &str, index: &[i64]) -> Value {
    outputs.array(name).get(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::OwnedArray;
    use ps_depgraph::build_depgraph;
    use ps_executor::{Sequential, ThreadPool};
    use ps_lang::frontend;
    use ps_scheduler::{schedule_module, ScheduleOptions};

    const RELAXATION_V1: &str = "
        Relaxation: module (InitialA: array[I,J] of real;
                            M: int; maxK: int):
                    [newA: array[I,J] of real];
        type I, J = 0 .. M+1; K = 2 .. maxK;
        var A: array [1 .. maxK] of array[I,J] of real;
        define
            A[1] = InitialA;
            newA = A[maxK];
            A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                       then A[K-1,I,J]
                       else ( A[K-1,I,J-1] + A[K-1,I-1,J]
                            + A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
        end Relaxation;
    ";

    fn grid_inputs(m_size: i64, maxk: i64) -> Inputs {
        let side = (m_size + 2) as usize;
        let mut data = vec![0.0f64; side * side];
        // Hot interior spot.
        for i in 1..=m_size {
            for j in 1..=m_size {
                data[(i as usize) * side + j as usize] =
                    if i == m_size / 2 + 1 && j == m_size / 2 + 1 {
                        100.0
                    } else {
                        1.0
                    };
            }
        }
        Inputs::new()
            .set_int("M", m_size)
            .set_int("maxK", maxk)
            .set_array(
                "InitialA",
                OwnedArray::real(vec![(0, m_size + 1), (0, m_size + 1)], data),
            )
    }

    fn run_relaxation(executor: &dyn Executor, check: bool) -> Outputs {
        let m = frontend(RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        run_module(
            &m,
            &sched.flowchart,
            &sched.memory,
            &grid_inputs(6, 8),
            executor,
            RuntimeOptions {
                check_writes: check,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn relaxation_runs_sequentially() {
        let out = run_relaxation(&Sequential, true);
        let a = out.array("newA");
        // Boundary padded with zeros, interior smoothed but positive.
        assert_eq!(a.get(&[0, 0]), Value::Real(0.0));
        assert!(a.get(&[3, 3]).as_real() > 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = run_relaxation(&Sequential, false);
        let pool = ThreadPool::new(4);
        let par = run_relaxation(&pool, false);
        let diff = seq.array("newA").max_abs_diff(par.array("newA"));
        assert_eq!(
            diff, 0.0,
            "bitwise identical: same operations, same order per element"
        );
    }

    #[test]
    fn compiled_and_tree_walk_agree_bitwise() {
        let m = frontend(RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let run = |engine| {
            run_module(
                &m,
                &sched.flowchart,
                &sched.memory,
                &grid_inputs(6, 8),
                &Sequential,
                RuntimeOptions {
                    engine,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let compiled = run(Engine::Compiled);
        let tree = run(Engine::TreeWalk);
        assert_eq!(
            compiled.array("newA").max_abs_diff(tree.array("newA")),
            0.0,
            "same operations in the same order, bit-identical"
        );
    }

    #[test]
    fn windowed_storage_is_used_and_correct() {
        // The memory plan gives A window 2; the checker validates reads.
        let out = run_relaxation(&Sequential, true);
        // Smoothing conserves interior mass towards uniformity; sanity only.
        let total: f64 = out.array("newA").as_real_slice().iter().sum();
        assert!(total > 0.0);
    }

    #[test]
    fn scalar_chain_runs() {
        let m = frontend(
            "T: module (x: int): [y: int];
             var a, b: int;
             define
                a = x * 2;
                b = a + 1;
                y = b * b;
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let out = run_module(
            &m,
            &sched.flowchart,
            &sched.memory,
            &Inputs::new().set_int("x", 3),
            &Sequential,
            RuntimeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.scalar("y"), Value::Int(49));
    }

    #[test]
    fn record_fields_and_enums_run() {
        let m = frontend(
            "T: module (): [y: real];
             type Color = (red, green, blue);
                  Pt = record a: real; b: real; end;
             var c: Color; p: Pt;
             define
                c = blue;
                p.a = 1.5;
                p.b = p.a * 2.0;
                y = p.b + real(ord(c));
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let out = run_module(
            &m,
            &sched.flowchart,
            &sched.memory,
            &Inputs::new(),
            &Sequential,
            RuntimeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.scalar("y"), Value::Real(5.0));
    }

    #[test]
    fn fibonacci_window_three() {
        let m = frontend(
            "T: module (n: int): [y: int];
             type K = 3 .. n;
             var a: array [1 .. n] of int;
             define
                a[1] = 1;
                a[2] = 1;
                a[K] = a[K-1] + a[K-2];
                y = a[n];
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let a = m.data_by_name("a").unwrap();
        assert_eq!(sched.memory.window(a, 0), Some(3));
        let out = run_module(
            &m,
            &sched.flowchart,
            &sched.memory,
            &Inputs::new().set_int("n", 30),
            &Sequential,
            RuntimeOptions {
                check_writes: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.scalar("y"), Value::Int(832040), "fib(30)");
    }

    #[test]
    fn dynamic_subscripts_run() {
        let m = frontend(
            "T: module (n: int; idx: array[1..3] of int): [y: int];
             type I = 1 .. 3;
             var a: array [I] of int;
             define
                a[I] = I * 10;
                y = a[idx[2]];
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let out = run_module(
            &m,
            &sched.flowchart,
            &sched.memory,
            &Inputs::new()
                .set_int("n", 3)
                .set_array("idx", OwnedArray::int(vec![(1, 3)], vec![3, 1, 2])),
            &Sequential,
            RuntimeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.scalar("y"), Value::Int(10), "a[idx[2]] = a[1] = 10");
    }
}
