//! The scheduled flowchart interpreter.
//!
//! `DO` loops run in order; `DOALL` loops are handed to the executor.
//! Perfectly nested `DOALL` chains are flattened into a single
//! `parallel_for` over the product index space so a `DOALL I (DOALL J)`
//! nest saturates the pool even when the outer extent is small.

use crate::eval::{eval, Env};
use crate::store::{Inputs, Outputs, RuntimeError, Store};
use crate::value::Value;
use ps_executor::Executor;
use ps_lang::hir::{HirModule, LhsSub};
use ps_lang::EqId;
use ps_scheduler::{Descriptor, DrainSpec, Flowchart, LoopDescriptor, LoopKind, MemoryPlan};

/// Knobs for [`run_module`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeOptions {
    /// Track logical tags per physical slot, catching double writes and
    /// window evictions (slow; for tests).
    pub check_writes: bool,
}

/// Execute a scheduled module.
pub fn run_module(
    module: &HirModule,
    flowchart: &Flowchart,
    plan: &MemoryPlan,
    inputs: &Inputs,
    executor: &dyn Executor,
    options: RuntimeOptions,
) -> Result<Outputs, RuntimeError> {
    let store = Store::build(module, plan, inputs, options.check_writes)?;
    let cx = Interp {
        store: &store,
        executor,
    };
    cx.run_items(&flowchart.items, &Env::new());
    Ok(store.into_outputs())
}

struct Interp<'a, 'm> {
    store: &'a Store<'m>,
    executor: &'a dyn Executor,
}

impl<'a, 'm> Interp<'a, 'm> {
    fn module(&self) -> &'m HirModule {
        self.store.module
    }

    fn run_items(&self, items: &[Descriptor], env: &Env) {
        for d in items {
            match d {
                Descriptor::Equation(eq) => self.run_equation(*eq, env),
                Descriptor::Loop(l) => self.run_loop(l, env),
                Descriptor::Drain(spec) => {
                    panic!("drain over {} reached outside a time loop", spec.time_name)
                }
            }
        }
    }

    fn bounds(&self, sr: ps_lang::SubrangeId) -> (i64, i64) {
        let s = &self.module().subranges[sr];
        let lo =
            s.lo.eval(&self.store.params)
                .unwrap_or_else(|| panic!("cannot evaluate bound {}", s.lo));
        let hi =
            s.hi.eval(&self.store.params)
                .unwrap_or_else(|| panic!("cannot evaluate bound {}", s.hi));
        (lo, hi)
    }

    fn run_loop(&self, l: &LoopDescriptor, env: &Env) {
        match l.kind {
            LoopKind::Do => {
                let (lo, hi) = self.bounds(l.subrange);
                for i in lo..=hi {
                    let mut child = env.child();
                    for &(eq, iv) in &l.bindings {
                        child.bind(eq, iv, i);
                    }
                    // A DO body may contain a Drain, which needs the time
                    // index: handle it inline here.
                    for d in &l.body {
                        match d {
                            Descriptor::Drain(spec) => self.run_drain(spec, i),
                            other => self.run_items(std::slice::from_ref(other), &child),
                        }
                    }
                }
            }
            LoopKind::Doall => {
                // Flatten perfectly nested DOALLs: [this, inner, ...].
                let mut chain: Vec<&LoopDescriptor> = vec![l];
                let mut body: &[Descriptor] = &l.body;
                while let [Descriptor::Loop(inner)] = body {
                    if inner.kind != LoopKind::Doall {
                        break;
                    }
                    chain.push(inner);
                    body = &inner.body;
                }
                let ranges: Vec<(i64, i64)> =
                    chain.iter().map(|c| self.bounds(c.subrange)).collect();
                let widths: Vec<i64> = ranges
                    .iter()
                    .map(|&(lo, hi)| (hi - lo + 1).max(0))
                    .collect();
                let total: i64 = widths.iter().product();
                if total <= 0 {
                    return;
                }
                let innermost_body = body;
                // One environment per chunk: binding slots are created once
                // and overwritten per element (hot path).
                self.executor.for_chunks(0, total - 1, &|start, stop| {
                    let mut child = env.child();
                    // Slot layout: per chain level, one slot per binding.
                    let mut slots: Vec<Vec<usize>> = Vec::with_capacity(chain.len());
                    for level in &chain {
                        slots.push(
                            level
                                .bindings
                                .iter()
                                .map(|&(eq, iv)| child.push_slot(eq, iv))
                                .collect(),
                        );
                    }
                    for flat in start..stop {
                        let mut rem = flat;
                        for k in (0..chain.len()).rev() {
                            let idx = ranges[k].0 + rem % widths[k];
                            rem /= widths[k];
                            for &slot in &slots[k] {
                                child.set_slot(slot, idx);
                            }
                        }
                        self.run_items(innermost_body, &child);
                    }
                });
            }
        }
    }

    fn run_equation(&self, eq_id: EqId, env: &Env) {
        let eq = &self.module().equations[eq_id];
        let value = eval(self.store, eq_id, eq, env, &eq.rhs);
        match eq.lhs_field {
            Some(fidx) => self.store.write_scalar(eq.lhs, fidx + 1, value),
            None => {
                if eq.lhs_subs.is_empty() {
                    self.store.write_scalar(eq.lhs, 0, value);
                } else {
                    let index: Vec<i64> = eq
                        .lhs_subs
                        .iter()
                        .map(|s| match s {
                            LhsSub::Const(a) => a
                                .eval(&self.store.params)
                                .unwrap_or_else(|| panic!("cannot evaluate {a}")),
                            LhsSub::Var(iv) => env.lookup(eq_id, *iv),
                        })
                        .collect();
                    self.store.array(eq.lhs).write(&index, value);
                }
            }
        }
    }

    /// The windowed-hyperplane drain: copy finished elements of the
    /// transformed array into the destination while plane `t` is current.
    fn run_drain(&self, spec: &DrainSpec, t: i64) {
        let ranges: Vec<(i64, i64)> = spec.inner.iter().map(|&sr| self.bounds(sr)).collect();
        let widths: Vec<i64> = ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(0))
            .collect();
        let total: i64 = widths.iter().product();
        if total <= 0 {
            return;
        }
        let bounds: Vec<(i64, i64)> = spec
            .original_bounds
            .iter()
            .map(|(lo, hi)| {
                (
                    lo.eval(&self.store.params)
                        .unwrap_or_else(|| panic!("cannot evaluate {lo}")),
                    hi.eval(&self.store.params)
                        .unwrap_or_else(|| panic!("cannot evaluate {hi}")),
                )
            })
            .collect();

        self.executor.for_chunks(0, total - 1, &|start, stop| {
            let n_inner = widths.len();
            let mut inner_idx = vec![0i64; n_inner];
            let mut loop_vals = vec![0i64; 1 + n_inner];
            let mut original = vec![0i64; spec.original.len()];
            let mut src_index = vec![0i64; 1 + n_inner];
            'elem: for flat in start..stop {
                let mut rem = flat;
                for k in (0..n_inner).rev() {
                    inner_idx[k] = ranges[k].0 + rem % widths[k];
                    rem /= widths[k];
                }
                // Transformed point [t, inner...] → original coordinates.
                loop_vals[0] = t;
                loop_vals[1..].copy_from_slice(&inner_idx);
                for (o, (coeffs, rest)) in original.iter_mut().zip(&spec.original) {
                    *o = rest.eval(&self.store.params).unwrap_or(0)
                        + coeffs
                            .iter()
                            .zip(&loop_vals)
                            .map(|(c, v)| c * v)
                            .sum::<i64>();
                }
                for (k, &(lo, hi)) in bounds.iter().enumerate() {
                    if original[k] < lo || original[k] > hi {
                        continue 'elem;
                    }
                }
                if original[spec.drain_dim] != bounds[spec.drain_dim].1 {
                    continue 'elem;
                }
                src_index[0] = t;
                src_index[1..].copy_from_slice(&inner_idx);
                let v = self.store.array(spec.src).read(&src_index);
                let dst_index: Vec<i64> = original
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != spec.drain_dim)
                    .map(|(_, &x)| x)
                    .collect();
                self.store.array(spec.dst).write(&dst_index, v);
            }
        });
    }
}

/// Convenience used by tests and benches: read one element of an array
/// through an equation-free context (inputs validation path).
pub fn read_result(outputs: &Outputs, name: &str, index: &[i64]) -> Value {
    outputs.array(name).get(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::OwnedArray;
    use ps_depgraph::build_depgraph;
    use ps_executor::{Sequential, ThreadPool};
    use ps_lang::frontend;
    use ps_scheduler::{schedule_module, ScheduleOptions};

    const RELAXATION_V1: &str = "
        Relaxation: module (InitialA: array[I,J] of real;
                            M: int; maxK: int):
                    [newA: array[I,J] of real];
        type I, J = 0 .. M+1; K = 2 .. maxK;
        var A: array [1 .. maxK] of array[I,J] of real;
        define
            A[1] = InitialA;
            newA = A[maxK];
            A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                       then A[K-1,I,J]
                       else ( A[K-1,I,J-1] + A[K-1,I-1,J]
                            + A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
        end Relaxation;
    ";

    fn grid_inputs(m_size: i64, maxk: i64) -> Inputs {
        let side = (m_size + 2) as usize;
        let mut data = vec![0.0f64; side * side];
        // Hot interior spot.
        for i in 1..=m_size {
            for j in 1..=m_size {
                data[(i as usize) * side + j as usize] =
                    if i == m_size / 2 + 1 && j == m_size / 2 + 1 {
                        100.0
                    } else {
                        1.0
                    };
            }
        }
        Inputs::new()
            .set_int("M", m_size)
            .set_int("maxK", maxk)
            .set_array(
                "InitialA",
                OwnedArray::real(vec![(0, m_size + 1), (0, m_size + 1)], data),
            )
    }

    fn run_relaxation(executor: &dyn Executor, check: bool) -> Outputs {
        let m = frontend(RELAXATION_V1).unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        run_module(
            &m,
            &sched.flowchart,
            &sched.memory,
            &grid_inputs(6, 8),
            executor,
            RuntimeOptions {
                check_writes: check,
            },
        )
        .unwrap()
    }

    #[test]
    fn relaxation_runs_sequentially() {
        let out = run_relaxation(&Sequential, true);
        let a = out.array("newA");
        // Boundary padded with zeros, interior smoothed but positive.
        assert_eq!(a.get(&[0, 0]), Value::Real(0.0));
        assert!(a.get(&[3, 3]).as_real() > 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = run_relaxation(&Sequential, false);
        let pool = ThreadPool::new(4);
        let par = run_relaxation(&pool, false);
        let diff = seq.array("newA").max_abs_diff(par.array("newA"));
        assert_eq!(
            diff, 0.0,
            "bitwise identical: same operations, same order per element"
        );
    }

    #[test]
    fn windowed_storage_is_used_and_correct() {
        // The memory plan gives A window 2; the checker validates reads.
        let out = run_relaxation(&Sequential, true);
        // Smoothing conserves interior mass towards uniformity; sanity only.
        let total: f64 = out.array("newA").as_real_slice().iter().sum();
        assert!(total > 0.0);
    }

    #[test]
    fn scalar_chain_runs() {
        let m = frontend(
            "T: module (x: int): [y: int];
             var a, b: int;
             define
                a = x * 2;
                b = a + 1;
                y = b * b;
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let out = run_module(
            &m,
            &sched.flowchart,
            &sched.memory,
            &Inputs::new().set_int("x", 3),
            &Sequential,
            RuntimeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.scalar("y"), Value::Int(49));
    }

    #[test]
    fn record_fields_and_enums_run() {
        let m = frontend(
            "T: module (): [y: real];
             type Color = (red, green, blue);
                  Pt = record a: real; b: real; end;
             var c: Color; p: Pt;
             define
                c = blue;
                p.a = 1.5;
                p.b = p.a * 2.0;
                y = p.b + real(ord(c));
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let out = run_module(
            &m,
            &sched.flowchart,
            &sched.memory,
            &Inputs::new(),
            &Sequential,
            RuntimeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.scalar("y"), Value::Real(5.0));
    }

    #[test]
    fn fibonacci_window_three() {
        let m = frontend(
            "T: module (n: int): [y: int];
             type K = 3 .. n;
             var a: array [1 .. n] of int;
             define
                a[1] = 1;
                a[2] = 1;
                a[K] = a[K-1] + a[K-2];
                y = a[n];
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let a = m.data_by_name("a").unwrap();
        assert_eq!(sched.memory.window(a, 0), Some(3));
        let out = run_module(
            &m,
            &sched.flowchart,
            &sched.memory,
            &Inputs::new().set_int("n", 30),
            &Sequential,
            RuntimeOptions { check_writes: true },
        )
        .unwrap();
        assert_eq!(out.scalar("y"), Value::Int(832040), "fib(30)");
    }

    #[test]
    fn dynamic_subscripts_run() {
        let m = frontend(
            "T: module (n: int; idx: array[1..3] of int): [y: int];
             type I = 1 .. 3;
             var a: array [I] of int;
             define
                a[I] = I * 10;
                y = a[idx[2]];
             end T;",
        )
        .unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let out = run_module(
            &m,
            &sched.flowchart,
            &sched.memory,
            &Inputs::new()
                .set_int("n", 3)
                .set_array("idx", OwnedArray::int(vec![(1, 3)], vec![3, 1, 2])),
            &Sequential,
            RuntimeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.scalar("y"), Value::Int(10), "a[idx[2]] = a[1] = 10");
    }
}
