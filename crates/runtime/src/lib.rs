//! Execution of scheduled PS programs, split along the **compile-once /
//! run-many** seam.
//!
//! The scheduled interpreter ([`interp`]) walks a flowchart produced by
//! `ps-scheduler`, executing `DO` loops in order and mapping `DOALL` loops
//! (flattening perfectly nested ones) onto a [`ps_executor::Executor`].
//! Array storage honours the virtual-dimension [`MemoryPlan`]: windowed
//! dimensions are allocated `window` planes and indexed modulo the window,
//! exactly like the C the paper's compiler emits.
//!
//! # The compile / run split
//!
//! Serving many small solves pays for compilation once, not per request:
//!
//! * [`Program`] (see [`program`]) — the immutable, shareable artifact:
//!   the [`StorePlan`] (scalar-slot layout + window decisions), the
//!   parameter-independent instruction tapes, a per-parameter-layout
//!   specialization cache, and a pooled run arena. `&Program` is
//!   `Send + Sync`; independent runs execute concurrently.
//! * [`Program::run`] — the cheap per-run half: bind parameter registers,
//!   evaluate array bounds, draw buffers/frames from the arena, execute.
//!   Steady-state runs do **zero lowering or validation allocations**.
//! * [`run_module`] — compile-and-run-once convenience over the same
//!   machinery.
//!
//! ```
//! use ps_runtime::{Inputs, Program, RuntimeOptions};
//!
//! let m = ps_lang::frontend(
//!     "T: module (n: int; gain: real): [y: real];
//!      type K = 2 .. n;
//!      var a: array [1 .. n] of real;
//!      define
//!         a[1] = gain;
//!         a[K] = a[K-1] * gain + 1.0;
//!         y = a[n];
//!      end T;",
//! )
//! .unwrap();
//! let dg = ps_depgraph::build_depgraph(&m);
//! let sched = ps_scheduler::schedule_module(&m, &dg, Default::default()).unwrap();
//!
//! // Compile once...
//! let prog = Program::new(&m, &sched.flowchart, &sched.memory, RuntimeOptions::default());
//! // ...run many times, with different parameters each time.
//! let a = prog
//!     .run(&Inputs::new().set_int("n", 4).set_real("gain", 2.0), &ps_executor::Sequential)
//!     .unwrap();
//! let b = prog
//!     .run(&Inputs::new().set_int("n", 6).set_real("gain", 0.5), &ps_executor::Sequential)
//!     .unwrap();
//! assert_eq!(a.scalar("y").as_real(), 23.0);
//! assert_eq!(b.scalar("y").as_real(), 1.953125);
//! ```
//!
//! # The two-engine design
//!
//! Equation bodies execute under one of two engines, selected by
//! `RuntimeOptions::engine`:
//!
//! * **Compiled** (the default, [`interp::Engine::Compiled`]) — every
//!   scheduled equation is lowered **once per [`Program`]** to a flat
//!   postorder tape of typed instructions over untagged
//!   `f64`/`i64`/`bool` registers, with types synthesized ahead of time
//!   from the checked HIR. Module parameters live in *registers* bound at
//!   run start (pure-integer parameter expressions hoist into derived
//!   registers), so the tapes are valid for every parameter vector.
//!   Affine array subscripts strength-reduce — per cached parameter
//!   layout — into `base + Σ cᵢ·regᵢ` dot products against each array's
//!   *physical* layout (the window `mod` survives only for genuinely
//!   windowed dimensions), and loop counters are the leading registers of
//!   each equation's frame. An iteration is a non-recursive tape walk
//!   with direct buffer loads and stores and **zero per-iteration heap
//!   allocations** — the interpretive cost the paper's loop-level
//!   speedups would otherwise drown in.
//! * **TreeWalk** ([`interp::Engine::TreeWalk`]) — direct recursive
//!   evaluation of the `HExpr` trees via [`eval`], with tagged [`Value`]
//!   dispatch and an index-variable environment. Slower, but structurally
//!   independent of the lowering pass, so it doubles as the differential
//!   oracle for the compiled engine (the `engine_diff` suite asserts
//!   bit-identical outputs on random programs and across one `Program`'s
//!   sequential and concurrent runs).
//!
//! A third, fully independent path is [`naive`] — a demand-driven
//! memoizing evaluator executing the nonprocedural semantics straight from
//! the equations, with no scheduler involved: slow, sequential, and
//! obviously correct; both scheduled engines are tested against it.
//!
//! Writes from `DOALL` iterations go through interior-mutability cells; the
//! single-assignment discipline (enforced by the checker and the scheduler)
//! guarantees disjointness. `RuntimeOptions::check_writes` additionally
//! tags every physical slot with the logical index it holds, catching both
//! double writes and window-eviction races in tests — under **either**
//! engine: the tree-walker checks in its store accessors, the compiled
//! engine in its checked tape mode.
//!
//! # Static verification ([`analysis`])
//!
//! `RuntimeOptions::analysis` = [`AnalysisLevel::Verify`] runs the
//! `ps-analyze` static verifier over the compiled tapes at
//! [`Program::try_new`] time. Three analyses, per scheduled region:
//! **def-before-use** (every register defined along all control paths
//! before it is read), **in-bounds addressing** (interval analysis over
//! the affine subscripts against declared bounds, for all admissible
//! parameter vectors), and **`DOALL` write-disjointness** (store
//! addresses injective in the loop counters). Rejections surface as
//! rendered `E06xx` diagnostics; arrays whose every access is *proven*
//! safe skip the checked-write tag machinery entirely — proving most of
//! `check_writes`' cost away while keeping runtime checks exactly where
//! the proof fell back (e.g. dynamic gather subscripts).
//!
//! [`MemoryPlan`]: ps_scheduler::MemoryPlan

pub mod analysis;
mod compiled;
pub mod eval;
pub mod interp;
pub mod naive;
pub mod ndarray;
pub mod program;
pub mod store;
pub mod value;

pub use analysis::analyze_compiled;
pub use interp::{run_module, AnalysisLevel, Engine, RuntimeOptions};
pub use naive::run_naive;
pub use program::{Program, RunSession};
pub use ps_analyze::{Report as AnalysisReport, Verdict as AnalysisVerdict};
pub use store::{Inputs, Outputs, StoreArena, StorePlan};
pub use value::{OwnedArray, Value};
