//! Execution of scheduled PS programs.
//!
//! The scheduled interpreter ([`interp`]) walks a flowchart produced by
//! `ps-scheduler`, executing `DO` loops in order and mapping `DOALL` loops
//! (flattening perfectly nested ones) onto a [`ps_executor::Executor`].
//! Array storage honours the virtual-dimension [`MemoryPlan`]: windowed
//! dimensions are allocated `window` planes and indexed modulo the window,
//! exactly like the C the paper's compiler emits.
//!
//! # The two-engine design
//!
//! Equation bodies execute under one of two engines, selected by
//! `RuntimeOptions::engine`:
//!
//! * **Compiled** (the default, [`interp::Engine::Compiled`]) — once per
//!   run, every scheduled equation is lowered to a flat postorder tape of
//!   typed instructions over untagged `f64`/`i64`/`bool` registers, with
//!   types synthesized ahead of time from the checked HIR. Affine array
//!   subscripts are strength-reduced against each array's *physical*
//!   layout into `base + Σ cᵢ·counterᵢ` dot products (the window `mod`
//!   survives only for genuinely windowed dimensions), module parameters
//!   are folded into tape constants, and loop counters live in flat
//!   per-equation slots. An iteration is a non-recursive tape walk with
//!   direct buffer loads and stores and **zero per-iteration heap
//!   allocations** — the interpretive cost the paper's loop-level speedups
//!   would otherwise drown in.
//! * **TreeWalk** ([`interp::Engine::TreeWalk`]) — direct recursive
//!   evaluation of the `HExpr` trees via [`eval`], with tagged [`Value`]
//!   dispatch and an index-variable environment. Slower, but structurally
//!   independent of the lowering pass, so it doubles as the differential
//!   oracle for the compiled engine (the `engine_diff` suite asserts
//!   bit-identical outputs on random programs).
//!
//! A third, fully independent path is [`naive`] — a demand-driven
//! memoizing evaluator executing the nonprocedural semantics straight from
//! the equations, with no scheduler involved: slow, sequential, and
//! obviously correct; both scheduled engines are tested against it.
//!
//! Writes from `DOALL` iterations go through interior-mutability cells; the
//! single-assignment discipline (enforced by the checker and the scheduler)
//! guarantees disjointness. `RuntimeOptions::check_writes` additionally
//! tags every physical slot with the logical index it holds, catching both
//! double writes and window-eviction races in tests; the tags live on the
//! checked accessor path, so `check_writes` forces the tree-walk engine.
//!
//! [`MemoryPlan`]: ps_scheduler::MemoryPlan

mod compiled;
pub mod eval;
pub mod interp;
pub mod naive;
pub mod ndarray;
pub mod store;
pub mod value;

pub use interp::{run_module, Engine, RuntimeOptions};
pub use naive::run_naive;
pub use store::{Inputs, Outputs};
pub use value::{OwnedArray, Value};
