//! Execution of scheduled PS programs.
//!
//! Two independent execution paths, used to differentially test each other:
//!
//! * [`interp`] — the *scheduled* interpreter: walks a flowchart produced by
//!   `ps-scheduler`, executes `DO` loops in order and maps `DOALL` loops
//!   (flattening perfectly nested ones) onto a [`ps_executor::Executor`].
//!   Array storage honours the virtual-dimension [`MemoryPlan`]: windowed
//!   dimensions are allocated `window` planes and indexed modulo the window,
//!   exactly like the C the paper's compiler emits.
//! * [`naive`] — the *oracle*: a demand-driven memoizing evaluator that
//!   executes the nonprocedural semantics directly from the equations, with
//!   no scheduler involved. Slow, sequential, and obviously correct.
//!
//! Writes from `DOALL` iterations go through interior-mutability cells; the
//! single-assignment discipline (enforced by the checker and the scheduler)
//! guarantees disjointness. `RuntimeOptions::check_writes` additionally
//! tags every physical slot with the logical index it holds, catching both
//! double writes and window-eviction races in tests.
//!
//! [`MemoryPlan`]: ps_scheduler::MemoryPlan

pub mod eval;
pub mod interp;
pub mod naive;
pub mod ndarray;
pub mod store;
pub mod value;

pub use interp::{run_module, RuntimeOptions};
pub use naive::run_naive;
pub use store::{Inputs, Outputs};
pub use value::{OwnedArray, Value};
