//! The demand-driven oracle interpreter.
//!
//! Executes the nonprocedural semantics directly: the value of an array
//! element is computed by finding the defining equation whose left-hand
//! region contains the element, binding its index variables, and
//! recursively evaluating the right-hand side with memoization. No
//! scheduling, no parallelism, no windows — the ground truth that the
//! scheduled interpreter is differentially tested against.

use crate::store::{Inputs, Outputs, RuntimeError, Store};
use crate::value::{OwnedArray, OwnedBuffer, Value};
use ps_lang::ast::{BinOp, UnOp};
use ps_lang::hir::{Builtin, DataKind, Equation, HExpr, HirModule, LhsSub, SubscriptExpr};
use ps_lang::{DataId, EqId, IvId, ScalarTy};
use ps_support::{FxHashMap, Symbol};
use std::cell::RefCell;

/// Run a module under the oracle semantics.
pub fn run_naive(module: &HirModule, inputs: &Inputs) -> Result<Outputs, RuntimeError> {
    let params = inputs.param_env();
    let oracle = Oracle {
        module,
        inputs,
        params: params.clone(),
        memo: RefCell::new(FxHashMap::default()),
        in_progress: RefCell::new(ps_support::FxHashSet::default()),
        scratch: RefCell::new(Vec::new()),
    };

    let mut out = Outputs::default();
    for &id in &module.results {
        let item = &module.data[id];
        if item.is_array() {
            let bounds = Store::bounds_of(module, &params, id)?;
            let elem = item.elem_scalar().expect("scalar element");
            let mut index: Vec<i64> = bounds.iter().map(|&(lo, _)| lo).collect();
            let count: usize = bounds
                .iter()
                .map(|&(lo, hi)| (hi - lo + 1) as usize)
                .product();
            let mut reals = Vec::new();
            let mut ints = Vec::new();
            let mut bools = Vec::new();
            for _ in 0..count {
                match oracle.demand(id, &index)? {
                    Value::Real(v) => reals.push(v),
                    Value::Int(v) => ints.push(v),
                    Value::Bool(v) => bools.push(v),
                }
                // Odometer increment (row-major, last dim fastest).
                for k in (0..index.len()).rev() {
                    index[k] += 1;
                    if index[k] <= bounds[k].1 {
                        break;
                    }
                    index[k] = bounds[k].0;
                }
            }
            let data = match elem {
                ScalarTy::Real => OwnedBuffer::Real(reals),
                ScalarTy::Int | ScalarTy::Char => OwnedBuffer::Int(ints),
                ScalarTy::Bool => OwnedBuffer::Bool(bools),
            };
            out.arrays
                .insert(item.name.to_string(), OwnedArray { dims: bounds, data });
        } else {
            out.scalars
                .insert(item.name.to_string(), oracle.demand(id, &[])?);
        }
    }
    Ok(out)
}

struct Oracle<'m> {
    module: &'m HirModule,
    inputs: &'m Inputs,
    params: FxHashMap<Symbol, i64>,
    memo: RefCell<FxHashMap<(DataId, Vec<i64>), Value>>,
    in_progress: RefCell<ps_support::FxHashSet<(DataId, Vec<i64>)>>,
    /// Reusable subscript buffers (a pool, not one buffer: dynamic
    /// subscripts recurse into `eval_expr` while an outer index is live).
    scratch: RefCell<Vec<Vec<i64>>>,
}

impl<'m> Oracle<'m> {
    /// The value of `data[index]` (empty index for scalars).
    fn demand(&self, data: DataId, index: &[i64]) -> Result<Value, RuntimeError> {
        let item = &self.module.data[data];
        if item.kind == DataKind::Param {
            return if item.is_array() {
                let arr = self
                    .inputs
                    .array(item.name)
                    .ok_or_else(|| RuntimeError(format!("missing input array `{}`", item.name)))?;
                Ok(arr.get(index))
            } else {
                self.inputs
                    .scalar(item.name)
                    .ok_or_else(|| RuntimeError(format!("missing input `{}`", item.name)))
            };
        }

        let key = (data, index.to_vec());
        if let Some(v) = self.memo.borrow().get(&key) {
            return Ok(*v);
        }
        if !self.in_progress.borrow_mut().insert(key.clone()) {
            return Err(RuntimeError(format!(
                "cyclic definition: `{}`{index:?} depends on itself",
                item.name
            )));
        }

        // Find the defining equation whose region contains `index`.
        let result = (|| {
            for eq_id in self.module.defs_of(data) {
                let eq = &self.module.equations[eq_id];
                if eq.lhs_field.is_some() {
                    continue; // fields are handled via demand_field
                }
                if let Some(env) = self.region_match(eq, index)? {
                    return self.eval(eq_id, eq, &env);
                }
            }
            Err(RuntimeError(format!(
                "no equation defines `{}`{index:?}",
                item.name
            )))
        })();

        self.in_progress.borrow_mut().remove(&key);
        if let Ok(v) = result {
            self.memo.borrow_mut().insert(key, v);
        }
        result
    }

    fn demand_field(&self, data: DataId, field: usize) -> Result<Value, RuntimeError> {
        let key = (data, vec![-(field as i64) - 1]);
        if let Some(v) = self.memo.borrow().get(&key) {
            return Ok(*v);
        }
        if !self.in_progress.borrow_mut().insert(key.clone()) {
            return Err(RuntimeError(format!(
                "cyclic definition of field {field} of `{}`",
                self.module.data[data].name
            )));
        }
        let result = (|| {
            for eq_id in self.module.defs_of(data) {
                let eq = &self.module.equations[eq_id];
                if eq.lhs_field == Some(field) {
                    return self.eval(eq_id, eq, &FxHashMap::default());
                }
            }
            Err(RuntimeError(format!(
                "no equation defines field {field} of `{}`",
                self.module.data[data].name
            )))
        })();
        self.in_progress.borrow_mut().remove(&key);
        if let Ok(v) = result {
            self.memo.borrow_mut().insert(key, v);
        }
        result
    }

    /// Does `eq`'s left-hand region contain `index`? If so, return the
    /// index-variable bindings.
    fn region_match(
        &self,
        eq: &Equation,
        index: &[i64],
    ) -> Result<Option<FxHashMap<IvId, i64>>, RuntimeError> {
        if eq.lhs_subs.len() != index.len() {
            return Ok(None);
        }
        let mut env = FxHashMap::default();
        for (s, &i) in eq.lhs_subs.iter().zip(index) {
            match s {
                LhsSub::Const(a) => {
                    let c = a
                        .eval(&self.params)
                        .ok_or_else(|| RuntimeError(format!("cannot evaluate {a}")))?;
                    if c != i {
                        return Ok(None);
                    }
                }
                LhsSub::Var(iv) => {
                    let sr = &self.module.subranges[eq.ivs[*iv].subrange];
                    let lo = sr
                        .lo
                        .eval(&self.params)
                        .ok_or_else(|| RuntimeError(format!("cannot evaluate {}", sr.lo)))?;
                    let hi = sr
                        .hi
                        .eval(&self.params)
                        .ok_or_else(|| RuntimeError(format!("cannot evaluate {}", sr.hi)))?;
                    if i < lo || i > hi {
                        return Ok(None);
                    }
                    env.insert(*iv, i);
                }
            }
        }
        Ok(Some(env))
    }

    fn eval(
        &self,
        eq_id: EqId,
        eq: &Equation,
        env: &FxHashMap<IvId, i64>,
    ) -> Result<Value, RuntimeError> {
        self.eval_expr(eq_id, eq, env, &eq.rhs)
    }

    fn eval_expr(
        &self,
        eq_id: EqId,
        eq: &Equation,
        env: &FxHashMap<IvId, i64>,
        e: &HExpr,
    ) -> Result<Value, RuntimeError> {
        Ok(match e {
            HExpr::Int(v) => Value::Int(*v),
            HExpr::Real(v) => Value::Real(*v),
            HExpr::Bool(v) => Value::Bool(*v),
            HExpr::Char(c) => Value::Int(*c as i64),
            HExpr::EnumConst(_, ord) => Value::Int(*ord as i64),
            HExpr::ReadScalar(d) => self.demand(*d, &[])?,
            HExpr::ReadField(d, idx) => self.demand_field(*d, *idx)?,
            HExpr::Iv(iv) => Value::Int(env[iv]),
            HExpr::ReadArray { array, subs, .. } => {
                let mut index = self.scratch.borrow_mut().pop().unwrap_or_default();
                for s in subs {
                    index.push(self.resolve_sub(eq_id, eq, env, s)?);
                }
                let v = self.demand(*array, &index);
                index.clear();
                self.scratch.borrow_mut().push(index);
                v?
            }
            HExpr::Binary { op, lhs, rhs } => {
                // Short-circuit logic.
                match op {
                    BinOp::And => {
                        return Ok(if self.eval_expr(eq_id, eq, env, lhs)?.as_bool() {
                            self.eval_expr(eq_id, eq, env, rhs)?
                        } else {
                            Value::Bool(false)
                        });
                    }
                    BinOp::Or => {
                        return Ok(if self.eval_expr(eq_id, eq, env, lhs)?.as_bool() {
                            Value::Bool(true)
                        } else {
                            self.eval_expr(eq_id, eq, env, rhs)?
                        });
                    }
                    _ => {}
                }
                let l = self.eval_expr(eq_id, eq, env, lhs)?;
                let r = self.eval_expr(eq_id, eq, env, rhs)?;
                naive_binary(*op, l, r)
            }
            HExpr::Unary { op, operand } => {
                let v = self.eval_expr(eq_id, eq, env, operand)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(x)) => Value::Int(-x),
                    (UnOp::Neg, Value::Real(x)) => Value::Real(-x),
                    (UnOp::Not, Value::Bool(x)) => Value::Bool(!x),
                    (op, v) => panic!("bad unary {op:?} on {v:?}"),
                }
            }
            HExpr::If { arms, else_ } => {
                for (c, v) in arms {
                    if self.eval_expr(eq_id, eq, env, c)?.as_bool() {
                        return self.eval_expr(eq_id, eq, env, v);
                    }
                }
                self.eval_expr(eq_id, eq, env, else_)?
            }
            HExpr::Call { builtin, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_expr(eq_id, eq, env, a)?);
                }
                naive_call(*builtin, &vals)
            }
            HExpr::CastReal(inner) => {
                Value::Real(self.eval_expr(eq_id, eq, env, inner)?.widen_real())
            }
        })
    }

    fn resolve_sub(
        &self,
        eq_id: EqId,
        eq: &Equation,
        env: &FxHashMap<IvId, i64>,
        s: &SubscriptExpr,
    ) -> Result<i64, RuntimeError> {
        Ok(match s {
            SubscriptExpr::Var(iv) => env[iv],
            SubscriptExpr::VarOffset(iv, d) => env[iv] + d,
            SubscriptExpr::Affine(a) => {
                let mut total = a
                    .rest
                    .eval(&self.params)
                    .ok_or_else(|| RuntimeError(format!("cannot evaluate {}", a.rest)))?;
                for &(iv, c) in &a.iv_terms {
                    total += c * env[&iv];
                }
                total
            }
            SubscriptExpr::Dynamic(e) => self.eval_expr(eq_id, eq, env, e)?.as_int(),
        })
    }
}

fn naive_binary(op: BinOp, l: Value, r: Value) -> Value {
    // Same semantics as the scheduled evaluator; duplicated to keep the
    // oracle a fully independent code path for differential testing.
    use Value::*;
    match op {
        BinOp::Add => match (l, r) {
            (Int(a), Int(b)) => Int(a + b),
            (Real(a), Real(b)) => Real(a + b),
            _ => panic!("add type mismatch"),
        },
        BinOp::Sub => match (l, r) {
            (Int(a), Int(b)) => Int(a - b),
            (Real(a), Real(b)) => Real(a - b),
            _ => panic!("sub type mismatch"),
        },
        BinOp::Mul => match (l, r) {
            (Int(a), Int(b)) => Int(a * b),
            (Real(a), Real(b)) => Real(a * b),
            _ => panic!("mul type mismatch"),
        },
        BinOp::Div => match (l, r) {
            (Real(a), Real(b)) => Real(a / b),
            _ => panic!("`/` requires reals"),
        },
        BinOp::IntDiv => Int(l.as_int().div_euclid(r.as_int())),
        BinOp::Mod => Int(l.as_int().rem_euclid(r.as_int())),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = match (l, r) {
                (Int(a), Int(b)) => a.partial_cmp(&b),
                (Real(a), Real(b)) => a.partial_cmp(&b),
                (Bool(a), Bool(b)) => a.partial_cmp(&b),
                _ => panic!("comparison type mismatch"),
            };
            let Some(ord) = ord else {
                return Bool(op == BinOp::Ne);
            };
            Bool(match op {
                BinOp::Eq => ord.is_eq(),
                BinOp::Ne => !ord.is_eq(),
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            })
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuited"),
    }
}

fn naive_call(builtin: Builtin, args: &[Value]) -> Value {
    use Value::*;
    match builtin {
        Builtin::Abs => match args[0] {
            Int(x) => Int(x.abs()),
            Real(x) => Real(x.abs()),
            v => panic!("abs on {v:?}"),
        },
        Builtin::Min => match (args[0], args[1]) {
            (Int(a), Int(b)) => Int(a.min(b)),
            (Real(a), Real(b)) => Real(a.min(b)),
            _ => panic!("min mismatch"),
        },
        Builtin::Max => match (args[0], args[1]) {
            (Int(a), Int(b)) => Int(a.max(b)),
            (Real(a), Real(b)) => Real(a.max(b)),
            _ => panic!("max mismatch"),
        },
        Builtin::Sqrt => Real(args[0].as_real().sqrt()),
        Builtin::Exp => Real(args[0].as_real().exp()),
        Builtin::Ln => Real(args[0].as_real().ln()),
        Builtin::Sin => Real(args[0].as_real().sin()),
        Builtin::Cos => Real(args[0].as_real().cos()),
        Builtin::Trunc => Int(args[0].as_real().trunc() as i64),
        Builtin::Round => Int(args[0].as_real().round() as i64),
        Builtin::RealFn => Real(args[0].as_int() as f64),
        Builtin::Ord => Int(args[0].as_int()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_computes_recurrence() {
        let m = ps_lang::frontend(
            "T: module (n: int): [y: int];
             type K = 3 .. n;
             var a: array [1 .. n] of int;
             define
                a[1] = 1;
                a[2] = 1;
                a[K] = a[K-1] + a[K-2];
                y = a[n];
             end T;",
        )
        .unwrap();
        let out = run_naive(&m, &Inputs::new().set_int("n", 10)).unwrap();
        assert_eq!(out.scalar("y"), Value::Int(55), "fib(10)");
    }

    #[test]
    fn oracle_detects_cycles() {
        // Bypass region checks by building a legal-looking but cyclic
        // program: a[I] depends on a[I] via b.
        let m = ps_lang::frontend(
            "T: module (n: int): [y: real];
             type I = 1 .. n;
             var a, b: array [I] of real;
             define
                a[I] = b[I] + 1.0;
                b[I] = a[I] * 2.0;
                y = a[1];
             end T;",
        )
        .unwrap();
        let err = run_naive(&m, &Inputs::new().set_int("n", 2)).unwrap_err();
        assert!(err.0.contains("cyclic"), "{err}");
    }

    #[test]
    fn oracle_handles_regions() {
        let m = ps_lang::frontend(
            "T: module (n: int): [out: array[1..n] of int];
             type K = 2 .. n;
             var a: array [1 .. n] of int;
             define
                a[1] = 7;
                a[K] = a[K-1] * 2;
                out = a;
             end T;",
        )
        .unwrap();
        let out = run_naive(&m, &Inputs::new().set_int("n", 4)).unwrap();
        assert_eq!(
            out.array("out"),
            &OwnedArray::int(vec![(1, 4)], vec![7, 14, 28, 56])
        );
    }
}
