//! Strided N-d array storage with per-dimension windows and interior
//! mutability for disjoint parallel writes.

#![deny(unsafe_op_in_unsafe_fn)]

use crate::value::{OwnedArray, OwnedBuffer, Value};
use ps_lang::ScalarTy;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicI64, Ordering};

/// One dimension: inclusive logical bounds plus optional window.
#[derive(Clone, Copy, Debug)]
pub struct DimSpec {
    pub lo: i64,
    pub hi: i64,
    /// `Some(w)`: only `w` planes are allocated; logical index `i` maps to
    /// physical `(i - lo) mod w` — the paper's virtual dimension.
    pub window: Option<i64>,
}

impl DimSpec {
    pub fn logical_width(&self) -> i64 {
        (self.hi - self.lo + 1).max(0)
    }

    pub fn physical_width(&self) -> i64 {
        match self.window {
            Some(w) => w.min(self.logical_width()),
            None => self.logical_width(),
        }
    }
}

/// Layout of an array instance.
#[derive(Clone, Debug)]
pub struct NdSpec {
    pub dims: Vec<DimSpec>,
}

impl NdSpec {
    pub fn physical_len(&self) -> usize {
        self.dims
            .iter()
            .map(|d| d.physical_width() as usize)
            .product()
    }

    pub fn logical_len(&self) -> usize {
        self.dims
            .iter()
            .map(|d| d.logical_width() as usize)
            .product()
    }

    /// Physical offset of a logical index (window-mapped). Panics when out
    /// of logical bounds — schedule guards must prevent that.
    pub fn offset(&self, index: &[i64]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len());
        let mut off = 0usize;
        for (d, &i) in self.dims.iter().zip(index) {
            assert!(
                i >= d.lo && i <= d.hi,
                "index {i} outside {}..{} (windowed array)",
                d.lo,
                d.hi
            );
            let rel = i - d.lo;
            let phys = match d.window {
                Some(w) if w < d.logical_width() => rel % w,
                _ => rel,
            };
            off = off * d.physical_width() as usize + phys as usize;
        }
        off
    }

    /// Flat index in the *logical* (unwindowed) space; used by the write
    /// checker's tags.
    pub fn logical_flat(&self, index: &[i64]) -> i64 {
        let mut off = 0i64;
        for (d, &i) in self.dims.iter().zip(index) {
            off = off * d.logical_width() + (i - d.lo);
        }
        off
    }

    pub fn is_windowed(&self) -> bool {
        self.dims
            .iter()
            .any(|d| matches!(d.window, Some(w) if w < d.logical_width()))
    }
}

/// Element-wise `UnsafeCell` buffer for disjoint parallel writes.
pub(crate) struct ParVec<T> {
    data: Box<[UnsafeCell<T>]>,
}

// SAFETY: all mutation goes through `set`, whose callers (the flowchart
// interpreter) guarantee distinct indices across threads — the
// single-assignment property checked by the front end and validated by the
// scheduler. Reads of a slot racing with its own write cannot occur for the
// same reason (a value is never read before the schedule has written it).
unsafe impl<T: Send> Sync for ParVec<T> {}

impl<T: Copy> ParVec<T> {
    fn new(v: Vec<T>) -> Self {
        ParVec {
            data: v.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.data.len()
    }

    /// Overwrite every element (requires `&mut`, so no concurrent access).
    /// Used when a pooled buffer is reissued to a new run: reused storage
    /// must start from the same all-zero state a fresh allocation has, or
    /// runs would not be bit-identical to fresh-store runs.
    fn reset(&mut self, v: T) {
        for c in self.data.iter_mut() {
            *c.get_mut() = v;
        }
    }

    /// Copy `src` in wholesale (requires `&mut`; lengths must match).
    fn fill_from(&mut self, src: &[T]) {
        assert_eq!(self.data.len(), src.len());
        for (c, &v) in self.data.iter_mut().zip(src) {
            *c.get_mut() = v;
        }
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> T {
        // SAFETY: `&self` plus the schedule's single-assignment discipline
        // (see the `Sync` impl above) rule out a concurrent `set` to `i`;
        // the cell pointer is valid for the indexed element.
        unsafe { *self.data[i].get() }
    }

    /// # Safety
    /// No concurrent write to the same `i`, and no concurrent read of `i`.
    #[inline]
    pub(crate) unsafe fn set(&self, i: usize, v: T) {
        unsafe {
            *self.data[i].get() = v;
        }
    }

    fn into_inner(self) -> Vec<T> {
        self.data
            .into_vec()
            .into_iter()
            .map(|c| c.into_inner())
            .collect()
    }
}

pub(crate) enum SharedBuffer {
    Real(ParVec<f64>),
    Int(ParVec<i64>),
    Bool(ParVec<bool>),
}

/// Keep at most this many spare buffers per element kind; beyond it,
/// recycled buffers are simply dropped. Bounds the arena's footprint when
/// a long-lived `Program` sees many distinct array shapes.
const POOL_CAP: usize = 32;

/// Recycled array storage, keyed by exact physical length.
///
/// A compile-once / run-many workload allocates the same buffer shapes on
/// every run; pooling them turns per-run array setup into a `memset` of
/// existing storage. Buffers whose length matches no request simply age
/// out ([`POOL_CAP`]).
#[derive(Default)]
pub(crate) struct BufferPool {
    f: Vec<ParVec<f64>>,
    i: Vec<ParVec<i64>>,
    b: Vec<ParVec<bool>>,
    tags: Vec<Vec<AtomicI64>>,
    /// Recycled (emptied) dimension vectors, so per-run `NdSpec`
    /// construction reuses capacity instead of allocating per array.
    dims: Vec<Vec<DimSpec>>,
}

fn take_buf<T: Copy>(pool: &mut Vec<ParVec<T>>, len: usize, zero: T) -> ParVec<T> {
    match pool.iter().position(|p| p.len() == len) {
        Some(ix) => {
            let mut v = pool.swap_remove(ix);
            v.reset(zero);
            v
        }
        None => ParVec::new(vec![zero; len]),
    }
}

/// Like [`take_buf`] but *without* the zero-reset — for callers that fully
/// overwrite the buffer anyway (input copies), avoiding a second pass.
fn take_buf_dirty<T: Copy>(pool: &mut Vec<ParVec<T>>, len: usize, zero: T) -> ParVec<T> {
    match pool.iter().position(|p| p.len() == len) {
        Some(ix) => pool.swap_remove(ix),
        None => ParVec::new(vec![zero; len]),
    }
}

fn put_buf<T>(pool: &mut Vec<ParVec<T>>, buf: ParVec<T>) {
    if pool.len() < POOL_CAP {
        pool.push(buf);
    }
}

impl BufferPool {
    fn take(&mut self, elem: ScalarTy, len: usize) -> SharedBuffer {
        match elem {
            ScalarTy::Real => SharedBuffer::Real(take_buf(&mut self.f, len, 0.0)),
            ScalarTy::Int | ScalarTy::Char => SharedBuffer::Int(take_buf(&mut self.i, len, 0)),
            ScalarTy::Bool => SharedBuffer::Bool(take_buf(&mut self.b, len, false)),
        }
    }

    fn take_tags(&mut self, len: usize) -> Vec<AtomicI64> {
        match self.tags.iter().position(|t| t.len() == len) {
            Some(ix) => {
                let mut t = self.tags.swap_remove(ix);
                for tag in t.iter_mut() {
                    *tag.get_mut() = -1;
                }
                t
            }
            None => (0..len).map(|_| AtomicI64::new(-1)).collect(),
        }
    }

    fn put(&mut self, buf: SharedBuffer, tags: Option<Vec<AtomicI64>>) {
        match buf {
            SharedBuffer::Real(v) => put_buf(&mut self.f, v),
            SharedBuffer::Int(v) => put_buf(&mut self.i, v),
            SharedBuffer::Bool(v) => put_buf(&mut self.b, v),
        }
        if let Some(t) = tags {
            if self.tags.len() < POOL_CAP {
                self.tags.push(t);
            }
        }
    }

    /// An empty dimension vector with recycled capacity.
    pub(crate) fn take_dims(&mut self) -> Vec<DimSpec> {
        self.dims.pop().unwrap_or_default()
    }
}

/// A live array instance: layout + shared buffer + optional write checker.
pub struct ArrayInstance {
    pub spec: NdSpec,
    buf: SharedBuffer,
    /// Write-check tags: for every *physical* slot, the logical flat index
    /// currently stored there (−1 = empty). Catches double writes and
    /// reads of evicted window planes.
    tags: Option<Vec<AtomicI64>>,
}

impl ArrayInstance {
    pub fn new(spec: NdSpec, elem: ScalarTy, check_writes: bool) -> ArrayInstance {
        ArrayInstance::new_pooled(spec, elem, check_writes, &mut BufferPool::default())
    }

    /// Like [`ArrayInstance::new`], but drawing storage from `pool` when a
    /// buffer of the right length is available (reset to zero either way).
    pub(crate) fn new_pooled(
        spec: NdSpec,
        elem: ScalarTy,
        check_writes: bool,
        pool: &mut BufferPool,
    ) -> ArrayInstance {
        let len = spec.physical_len();
        let buf = pool.take(elem, len);
        let tags = check_writes.then(|| pool.take_tags(len));
        ArrayInstance { spec, buf, tags }
    }

    /// Build from caller-provided input data (always physical).
    pub fn from_owned(owned: &OwnedArray) -> ArrayInstance {
        ArrayInstance::from_owned_pooled(owned, &mut BufferPool::default())
    }

    /// Like [`ArrayInstance::from_owned`], copying the input into pooled
    /// storage instead of allocating a fresh clone per run.
    pub(crate) fn from_owned_pooled(owned: &OwnedArray, pool: &mut BufferPool) -> ArrayInstance {
        let mut dims = pool.take_dims();
        dims.extend(owned.dims.iter().map(|&(lo, hi)| DimSpec {
            lo,
            hi,
            window: None,
        }));
        let spec = NdSpec { dims };
        let buf = match &owned.data {
            OwnedBuffer::Real(v) => {
                let mut p = take_buf_dirty(&mut pool.f, v.len(), 0.0);
                p.fill_from(v);
                SharedBuffer::Real(p)
            }
            OwnedBuffer::Int(v) => {
                let mut p = take_buf_dirty(&mut pool.i, v.len(), 0);
                p.fill_from(v);
                SharedBuffer::Int(p)
            }
            OwnedBuffer::Bool(v) => {
                let mut p = take_buf_dirty(&mut pool.b, v.len(), false);
                p.fill_from(v);
                SharedBuffer::Bool(p)
            }
        };
        // Inputs are fully defined: tag them as such when checking.
        ArrayInstance {
            spec,
            buf,
            tags: None,
        }
    }

    /// Return this instance's storage (buffer, tags, dimension vector) to
    /// `pool` for a later run.
    pub(crate) fn recycle(self, pool: &mut BufferPool) {
        pool.put(self.buf, self.tags);
        let mut dims = self.spec.dims;
        if pool.dims.len() < POOL_CAP {
            dims.clear();
            pool.dims.push(dims);
        }
    }

    /// The write-checker tag table, when this instance checks writes. The
    /// compiled engine's checked mode performs the same tag transitions as
    /// [`ArrayInstance::read`]/[`ArrayInstance::write`] against it.
    pub(crate) fn tags(&self) -> Option<&[AtomicI64]> {
        self.tags.as_deref()
    }

    /// Direct typed access to the shared buffer. The compiled engine
    /// resolves each array reference to its typed `ParVec` once at lowering
    /// time; the per-element disjointness obligations of [`ParVec::set`]
    /// carry over unchanged.
    pub(crate) fn buffer(&self) -> &SharedBuffer {
        &self.buf
    }

    pub fn read(&self, index: &[i64]) -> Value {
        let off = self.spec.offset(index);
        if let Some(tags) = &self.tags {
            let expected = self.spec.logical_flat(index);
            let tag = tags[off].load(Ordering::Acquire);
            assert!(
                tag == expected,
                "read of {index:?}: slot holds logical {tag} (expected {expected}) — \
                 element missing or evicted from its window"
            );
        }
        match &self.buf {
            SharedBuffer::Real(v) => Value::Real(v.get(off)),
            SharedBuffer::Int(v) => Value::Int(v.get(off)),
            SharedBuffer::Bool(v) => Value::Bool(v.get(off)),
        }
    }

    /// Write one element.
    ///
    /// Safety of the underlying unsafe cell rests on the schedule: distinct
    /// `DOALL` iterations write distinct logical (hence physical) slots.
    pub fn write(&self, index: &[i64], value: Value) {
        let off = self.spec.offset(index);
        if let Some(tags) = &self.tags {
            let logical = self.spec.logical_flat(index);
            let prev = tags[off].swap(logical, Ordering::AcqRel);
            assert!(
                prev != logical,
                "double write of logical index {index:?} (single assignment violated)"
            );
        }
        // SAFETY: distinct `DOALL` iterations write distinct offsets (the
        // scheduler's independence condition, re-proven by `ps-analyze`),
        // and no reader observes `off` until the writing phase completes.
        match (&self.buf, value) {
            (SharedBuffer::Real(v), Value::Real(x)) => unsafe { v.set(off, x) },
            (SharedBuffer::Real(v), Value::Int(x)) => unsafe { v.set(off, x as f64) },
            (SharedBuffer::Int(v), Value::Int(x)) => unsafe { v.set(off, x) },
            (SharedBuffer::Bool(v), Value::Bool(x)) => unsafe { v.set(off, x) },
            (_, v) => panic!("type mismatch writing {v:?}"),
        }
    }

    /// Extract the full logical content (only for non-windowed arrays).
    pub fn to_owned_array(self) -> OwnedArray {
        assert!(
            !self.spec.is_windowed(),
            "cannot export a windowed array in full"
        );
        let dims: Vec<(i64, i64)> = self.spec.dims.iter().map(|d| (d.lo, d.hi)).collect();
        let data = match self.buf {
            SharedBuffer::Real(v) => OwnedBuffer::Real(v.into_inner()),
            SharedBuffer::Int(v) => OwnedBuffer::Int(v.into_inner()),
            SharedBuffer::Bool(v) => OwnedBuffer::Bool(v.into_inner()),
        };
        OwnedArray { dims, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec2(lo0: i64, hi0: i64, w0: Option<i64>, lo1: i64, hi1: i64) -> NdSpec {
        NdSpec {
            dims: vec![
                DimSpec {
                    lo: lo0,
                    hi: hi0,
                    window: w0,
                },
                DimSpec {
                    lo: lo1,
                    hi: hi1,
                    window: None,
                },
            ],
        }
    }

    #[test]
    fn physical_allocation_respects_window() {
        let full = spec2(1, 10, None, 0, 4);
        assert_eq!(full.physical_len(), 50);
        let win = spec2(1, 10, Some(2), 0, 4);
        assert_eq!(win.physical_len(), 10);
        assert_eq!(win.logical_len(), 50);
        assert!(win.is_windowed());
        assert!(!full.is_windowed());
    }

    #[test]
    fn window_mapping_wraps() {
        let win = spec2(1, 10, Some(2), 0, 4);
        // Plane 1 and plane 3 share physical slots; 1 and 2 do not.
        assert_eq!(win.offset(&[1, 0]), win.offset(&[3, 0]));
        assert_ne!(win.offset(&[1, 0]), win.offset(&[2, 0]));
    }

    #[test]
    fn read_back_written_values() {
        let a = ArrayInstance::new(spec2(0, 3, None, 0, 3), ScalarTy::Real, false);
        a.write(&[2, 1], Value::Real(6.5));
        assert_eq!(a.read(&[2, 1]), Value::Real(6.5));
        // Int widening into a real buffer.
        a.write(&[0, 0], Value::Int(3));
        assert_eq!(a.read(&[0, 0]), Value::Real(3.0));
    }

    #[test]
    fn windowed_rotation_works() {
        let a = ArrayInstance::new(spec2(1, 100, Some(2), 0, 0), ScalarTy::Real, false);
        // Simulate the K loop: write plane k, read plane k-1.
        a.write(&[1, 0], Value::Real(1.0));
        for k in 2..=100 {
            let prev = a.read(&[k - 1, 0]).as_real();
            a.write(&[k, 0], Value::Real(prev + 1.0));
        }
        assert_eq!(a.read(&[100, 0]), Value::Real(100.0));
    }

    #[test]
    fn checker_catches_double_write() {
        let a = ArrayInstance::new(spec2(0, 3, None, 0, 0), ScalarTy::Real, true);
        a.write(&[1, 0], Value::Real(1.0));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.write(&[1, 0], Value::Real(2.0));
        }));
        assert!(err.is_err(), "double write must be caught");
    }

    #[test]
    fn checker_catches_window_eviction() {
        let a = ArrayInstance::new(spec2(1, 10, Some(2), 0, 0), ScalarTy::Real, true);
        a.write(&[1, 0], Value::Real(1.0));
        a.write(&[2, 0], Value::Real(2.0));
        a.write(&[3, 0], Value::Real(3.0)); // evicts plane 1
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.read(&[1, 0]);
        }));
        assert!(err.is_err(), "reading an evicted plane must be caught");
        assert_eq!(a.read(&[3, 0]), Value::Real(3.0));
    }

    #[test]
    fn export_round_trip() {
        let a = ArrayInstance::new(spec2(0, 1, None, 0, 1), ScalarTy::Real, false);
        a.write(&[0, 0], Value::Real(1.0));
        a.write(&[0, 1], Value::Real(2.0));
        a.write(&[1, 0], Value::Real(3.0));
        a.write(&[1, 1], Value::Real(4.0));
        let owned = a.to_owned_array();
        assert_eq!(owned.as_real_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_owned_reads_input() {
        let input = OwnedArray::real(vec![(0, 1)], vec![5.0, 6.0]);
        let inst = ArrayInstance::from_owned(&input);
        assert_eq!(inst.read(&[1]), Value::Real(6.0));
    }

    #[test]
    fn buffer_pool_reuses_and_resets() {
        let mut pool = BufferPool::default();
        let spec = || spec2(0, 3, None, 0, 0);
        let a = ArrayInstance::new_pooled(spec(), ScalarTy::Real, true, &mut pool);
        a.write(&[2, 0], Value::Real(9.0));
        a.recycle(&mut pool);
        // Same length: the buffer comes back zeroed with fresh tags.
        let b = ArrayInstance::new_pooled(spec(), ScalarTy::Real, true, &mut pool);
        assert!(pool.f.is_empty(), "the pooled buffer was reissued");
        b.write(&[2, 0], Value::Real(1.0));
        assert_eq!(b.read(&[2, 0]), Value::Real(1.0), "no stale tag trips");
        // A different length misses the pool and allocates fresh.
        b.recycle(&mut pool);
        let c = ArrayInstance::new_pooled(
            NdSpec {
                dims: vec![DimSpec {
                    lo: 0,
                    hi: 9,
                    window: None,
                }],
            },
            ScalarTy::Real,
            false,
            &mut pool,
        );
        assert_eq!(c.spec.physical_len(), 10);
        assert_eq!(pool.f.len(), 1, "the 4-element buffer stays pooled");
    }

    #[test]
    fn pooled_input_copy_matches_owned() {
        let mut pool = BufferPool::default();
        let input = OwnedArray::int(vec![(1, 3)], vec![7, 8, 9]);
        let inst = ArrayInstance::from_owned_pooled(&input, &mut pool);
        assert_eq!(inst.read(&[3]), Value::Int(9));
        inst.recycle(&mut pool);
        // Reissue: the copy fully overwrites the recycled contents.
        let other = OwnedArray::int(vec![(1, 3)], vec![1, 2, 3]);
        let inst2 = ArrayInstance::from_owned_pooled(&other, &mut pool);
        assert_eq!(inst2.read(&[1]), Value::Int(1));
        assert_eq!(inst2.read(&[3]), Value::Int(3));
    }
}
