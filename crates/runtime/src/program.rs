//! The compile-once / run-many execution artifact.
//!
//! [`Program`] packages everything derivable from a scheduled module
//! *without* knowing parameter values: the immutable store layout
//! ([`StorePlan`]), the parameter-independent instruction tapes, and two
//! interior-mutability side tables —
//!
//! * a **specialization cache**: per distinct integer parameter vector,
//!   the symbolic addresses folded against that layout (built on first
//!   sight of a vector, reused thereafter);
//! * a **run arena**: pooled per-run state (register frames, array
//!   buffers, tag tables, scalar-slot tables) recycled between runs.
//!
//! [`Program::run`] therefore costs: evaluate array bounds, bind
//! parameters, `memset` pooled buffers, execute. No lowering, no
//! validation, no tape allocation after the first run with a given
//! parameter layout.
//!
//! `&Program` is `Send + Sync`: independent runs may execute concurrently
//! from multiple threads sharing one artifact — each run owns its store
//! and frames; the cache and arena are touched only under brief locks.

use crate::analysis::analyze_tapes;
use crate::compiled::{compile_tapes, specialize, ExecProg, Frames, Spec, Tapes};
use crate::interp::{AnalysisLevel, Engine, Interp, RuntimeOptions, TreeState};
use crate::store::{Inputs, Outputs, RuntimeError, Store, StoreArena, StorePlan};
use ps_executor::Executor;
use ps_lang::hir::HirModule;
use ps_scheduler::{Flowchart, MemoryPlan};
use ps_support::Symbol;
use ps_trace::{EvKind, Phase, Stage, StageSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Upper bound on pooled run slots (each holds one run's recyclable
/// storage); more than a handful only matters under heavy concurrency.
const RUN_POOL_CAP: usize = 16;

/// One run's worth of recyclable state. `frames` is `None` until the
/// slot's first successful compiled run builds them.
#[derive(Default)]
struct RunSlot {
    arena: StoreArena,
    frames: Option<Frames>,
}

/// One cached specialization plus its last-use tick (the LRU key). The
/// tick is written under the cache's *read* lock — a relaxed atomic store,
/// so cache hits stay lock-free with respect to each other.
struct CachedSpec {
    spec: Arc<Spec>,
    touched: AtomicU64,
}

/// A reusable, shareable execution artifact for one scheduled module.
///
/// Construction performs schedule analysis, store layout planning, and
/// tape lowering exactly once; [`Program::run`] only binds parameters,
/// instantiates (pooled) storage, and executes.
pub struct Program<'m> {
    module: &'m HirModule,
    flowchart: &'m Flowchart,
    plan: StorePlan<'m>,
    options: RuntimeOptions,
    /// `None` under [`Engine::TreeWalk`] (the oracle needs no tapes).
    tapes: Option<Tapes>,
    /// Per-`DataId` tag-elision mask from [`AnalysisLevel::Verify`]:
    /// arrays the static verifier proved safe skip checked-write tags
    /// and runtime bounds dims. `None` when analysis is off.
    verified: Option<Vec<bool>>,
    /// Symbols whose values determine array layouts (scalar int params);
    /// their value vector keys the specialization cache.
    key_syms: Vec<Symbol>,
    specs: RwLock<Vec<CachedSpec>>,
    spec_clock: AtomicU64,
    pool: Mutex<Vec<RunSlot>>,
    spec_builds: AtomicUsize,
    spec_evictions: AtomicUsize,
    /// Trace label id per equation (the LHS data item's name), indexed by
    /// `EqId`; lets region events and flight dumps name the equation they
    /// were running.
    eq_labels: Vec<u64>,
    /// Optional per-stage histogram sink (the owning service's set):
    /// spec-cache builds record their duration as [`Stage::Specialize`].
    stage_sink: Mutex<Option<Arc<StageSet>>>,
}

impl<'m> Program<'m> {
    /// Compile the reusable artifact: layout planning plus (under the
    /// compiled engine) tape lowering and validation.
    ///
    /// Panics if [`AnalysisLevel::Verify`] rejects the program; use
    /// [`Program::try_new`] to receive the diagnostics instead.
    pub fn new(
        module: &'m HirModule,
        flowchart: &'m Flowchart,
        memory: &MemoryPlan,
        options: RuntimeOptions,
    ) -> Program<'m> {
        match Program::try_new(module, flowchart, memory, options) {
            Ok(p) => p,
            Err(e) => panic!("static analysis rejected program: {e}"),
        }
    }

    /// Like [`Program::new`], but surfaces static-verifier rejections
    /// (`E06xx` diagnostics, rendered) as an error instead of panicking.
    pub fn try_new(
        module: &'m HirModule,
        flowchart: &'m Flowchart,
        memory: &MemoryPlan,
        options: RuntimeOptions,
    ) -> Result<Program<'m>, RuntimeError> {
        let plan = StorePlan::new(module, memory);
        let tapes = (options.engine == Engine::Compiled)
            .then(|| compile_tapes(module, &plan, flowchart, options.check_writes, true));
        let verified = match (&tapes, options.analysis) {
            (Some(tapes), AnalysisLevel::Verify) => {
                let outcome = analyze_tapes(module, flowchart, &plan, tapes);
                if outcome.report.has_errors() {
                    return Err(RuntimeError(outcome.report.render()));
                }
                Some(outcome.verified)
            }
            _ => None,
        };
        let key_syms = module
            .scalar_int_params()
            .into_iter()
            .map(|d| module.data[d].name)
            .collect();
        // Intern the per-equation trace labels once, at compile time —
        // event emission must never touch the intern table.
        let eq_labels = module
            .equations
            .iter()
            .map(|e| ps_trace::label(module.data[e.lhs].name.as_str()))
            .collect();
        Ok(Program {
            module,
            flowchart,
            plan,
            options,
            tapes,
            verified,
            key_syms,
            specs: RwLock::new(Vec::new()),
            spec_clock: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            spec_builds: AtomicUsize::new(0),
            spec_evictions: AtomicUsize::new(0),
            eq_labels,
            stage_sink: Mutex::new(None),
        })
    }

    /// Install a per-stage histogram sink (typically the owning service's
    /// [`StageSet`]); spec-cache builds then record [`Stage::Specialize`]
    /// durations into it.
    pub fn set_stage_sink(&self, sink: Arc<StageSet>) {
        *self.stage_sink.lock().expect("stage sink poisoned") = Some(sink);
    }

    /// Number of arrays the static verifier proved safe for tag elision
    /// (zero when analysis is off).
    pub fn verified_arrays(&self) -> usize {
        self.verified
            .as_ref()
            .map_or(0, |m| m.iter().filter(|&&v| v).count())
    }

    /// The module this program executes.
    pub fn module(&self) -> &'m HirModule {
        self.module
    }

    /// The options this program was compiled with.
    pub fn options(&self) -> RuntimeOptions {
        self.options
    }

    /// Number of parameter layouts specialized *and cached* so far. A
    /// steady-state serving loop over one parameter shape sits at 1; a
    /// layout rebuilt after LRU eviction counts again (the cache itself
    /// never exceeds [`RuntimeOptions::spec_cache_cap`] entries).
    pub fn specialization_count(&self) -> usize {
        self.spec_builds.load(Ordering::Relaxed)
    }

    /// Number of specializations evicted from the cache so far (LRU
    /// replacement under adversarial parameter diversity).
    pub fn spec_evictions(&self) -> usize {
        self.spec_evictions.load(Ordering::Relaxed)
    }

    /// Number of specializations currently cached (≤ the configured cap).
    pub fn spec_cached(&self) -> usize {
        self.specs.read().expect("spec cache poisoned").len()
    }

    /// Execute one run against `inputs`. Reentrant: any number of runs
    /// may execute concurrently on one shared `&Program`.
    pub fn run(&self, inputs: &Inputs, executor: &dyn Executor) -> Result<Outputs, RuntimeError> {
        match &self.tapes {
            None => self.run_tree(inputs, executor),
            Some(tapes) => self.run_compiled(tapes, inputs, executor),
        }
    }

    /// The tree-walk oracle path: structurally independent of the tapes,
    /// deliberately unpooled (it exists to cross-check, not to serve).
    fn run_tree(&self, inputs: &Inputs, executor: &dyn Executor) -> Result<Outputs, RuntimeError> {
        let store = self.plan.instantiate(
            inputs,
            self.options.check_writes,
            &mut StoreArena::default(),
        )?;
        {
            let cx = Interp {
                store: &store,
                executor,
                eq_labels: &self.eq_labels,
            };
            let mut st = TreeState::default();
            cx.run_items(&self.flowchart.items, &mut st);
        }
        Ok(store.into_outputs())
    }

    fn run_compiled(
        &self,
        tapes: &Tapes,
        inputs: &Inputs,
        executor: &dyn Executor,
    ) -> Result<Outputs, RuntimeError> {
        // Claim a pooled run slot (or start fresh); the lock is released
        // before any real work so concurrent runs don't serialize. The
        // slot goes back to the pool even when the run errors (a failing
        // request must not degrade later runs' pooling).
        let mut slot = self
            .pool
            .lock()
            .expect("run pool poisoned")
            .pop()
            .unwrap_or_default();
        let result = self.run_in_slot(tapes, inputs, executor, &mut slot);
        let mut pool = self.pool.lock().expect("run pool poisoned");
        if pool.len() < RUN_POOL_CAP {
            pool.push(slot);
        }
        result
    }

    fn run_in_slot(
        &self,
        tapes: &Tapes,
        inputs: &Inputs,
        executor: &dyn Executor,
        slot: &mut RunSlot,
    ) -> Result<Outputs, RuntimeError> {
        let store = self.plan.instantiate_masked(
            inputs,
            self.options.check_writes,
            self.verified.as_deref(),
            &mut slot.arena,
        )?;
        let spec = self.spec_for(tapes, &store)?;
        let mut frames = slot.frames.take().unwrap_or_else(|| Frames::new(tapes));
        frames.bind_params(tapes, &store.param_values(tapes.params()));
        {
            let view = ExecProg::new(tapes, &spec, &store);
            let cx = Interp {
                store: &store,
                executor,
                eq_labels: &self.eq_labels,
            };
            cx.run_items_compiled(&view, &self.flowchart.items, &mut frames);
        }
        let outputs = store.into_outputs_into(&mut slot.arena);
        slot.frames = Some(frames);
        Ok(outputs)
    }

    /// The specialization for this run's parameter layout: cache hit in
    /// the common case, a cheap address-folding pass on first sight. The
    /// cache is bounded by [`RuntimeOptions::spec_cache_cap`]; at capacity
    /// the least-recently-used layout is replaced (its `Arc` keeps
    /// in-flight runs of the evicted spec alive).
    fn spec_for(&self, tapes: &Tapes, store: &Store<'m>) -> Result<Arc<Spec>, RuntimeError> {
        let key: Vec<i64> = self
            .key_syms
            .iter()
            .map(|s| store.params.get(s).copied().unwrap_or(i64::MIN))
            .collect();
        let touch = |c: &CachedSpec| {
            c.touched.store(
                self.spec_clock.fetch_add(1, Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            )
        };
        {
            let specs = self.specs.read().expect("spec cache poisoned");
            if let Some(c) = specs.iter().find(|c| c.spec.key == key) {
                touch(c);
                ps_trace::emit(EvKind::SpecHit, Phase::Instant, 0, specs.len() as u64, 0);
                return Ok(Arc::clone(&c.spec));
            }
        }
        let build_t0 = Instant::now();
        let built = Arc::new(specialize(
            tapes,
            &self.plan,
            &store.params,
            key.clone(),
            self.verified.as_deref(),
        )?);
        let mut specs = self.specs.write().expect("spec cache poisoned");
        if let Some(c) = specs.iter().find(|c| c.spec.key == key) {
            // Lost the build race: another run specialized this layout
            // concurrently — use (and count) theirs, drop ours.
            touch(c);
            return Ok(Arc::clone(&c.spec));
        }
        // Insert under the write lock: a concurrent duplicate build is
        // never double-counted, and the cache never exceeds its cap.
        if specs.len() >= self.options.spec_cache_cap.max(1) {
            let lru = specs
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.touched.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .expect("cap >= 1 implies a nonempty cache here");
            specs.swap_remove(lru);
            self.spec_evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.spec_builds.fetch_add(1, Ordering::Relaxed);
        let build_dur = build_t0.elapsed();
        if ps_trace::enabled() {
            ps_trace::emit(
                EvKind::SpecBuild,
                Phase::Complete,
                0,
                build_dur.as_nanos() as u64,
                specs.len() as u64,
            );
            if let Some(sink) = &*self.stage_sink.lock().expect("stage sink poisoned") {
                sink.record(Stage::Specialize, build_dur);
            }
        }
        let entry = CachedSpec {
            spec: Arc::clone(&built),
            touched: AtomicU64::new(0),
        };
        touch(&entry);
        specs.push(entry);
        Ok(built)
    }
}

impl<'m> Program<'m> {
    /// Claim a pooled run slot for a *sequence* of runs: a service worker
    /// holding a session across a micro-batch touches the slot pool lock
    /// once per batch instead of twice per request. Dropping the session
    /// returns the slot.
    pub fn session(&self) -> RunSession<'_, 'm> {
        let slot = self.pool.lock().expect("run pool poisoned").pop();
        RunSession { prog: self, slot }
    }
}

/// A claimed run slot bound to its [`Program`]; see [`Program::session`].
///
/// Panic-safe by construction: the slot is moved *out* of the session for
/// the duration of each run, so a panicking request drops it (the next
/// call simply starts a fresh slot) and the pool itself — whose lock is
/// never held across user code — cannot be poisoned.
pub struct RunSession<'p, 'm> {
    prog: &'p Program<'m>,
    slot: Option<RunSlot>,
}

impl<'p, 'm> RunSession<'p, 'm> {
    /// Execute one run, reusing this session's claimed slot.
    pub fn run(
        &mut self,
        inputs: &Inputs,
        executor: &dyn Executor,
    ) -> Result<Outputs, RuntimeError> {
        match &self.prog.tapes {
            None => self.prog.run_tree(inputs, executor),
            Some(tapes) => {
                let mut slot = self.slot.take().unwrap_or_default();
                let result = self.prog.run_in_slot(tapes, inputs, executor, &mut slot);
                // Only reached when the run did not panic; errors still
                // recycle the slot (a failing request must not degrade
                // later runs' pooling).
                self.slot = Some(slot);
                result
            }
        }
    }
}

impl Drop for RunSession<'_, '_> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            // `lock()` cannot normally fail here (the pool lock is never
            // held across user code); swallow a poisoned pool rather than
            // double-panicking during unwind.
            if let Ok(mut pool) = self.prog.pool.lock() {
                if pool.len() < RUN_POOL_CAP {
                    pool.push(slot);
                }
            }
        }
    }
}

/// Independent runs execute concurrently on a shared `&Program`.
#[allow(dead_code)]
fn _assert_program_send_sync(p: &Program<'_>) {
    fn takes<T: Send + Sync>(_: &T) {}
    takes(p);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use ps_depgraph::build_depgraph;
    use ps_executor::Sequential;
    use ps_lang::frontend;
    use ps_scheduler::{schedule_module, ScheduleOptions};

    const RECURRENCE: &str = "T: module (n: int; bias: real): [y: real];
         type K = 2 .. n;
         var a: array [1 .. n] of real;
         define
            a[1] = bias;
            a[K] = a[K-1] + bias * real(K);
            y = a[n];
         end T;";

    fn expected(n: i64, bias: f64) -> f64 {
        let mut a = bias;
        for k in 2..=n {
            a += bias * k as f64;
        }
        a
    }

    #[test]
    fn one_program_many_parameter_vectors() {
        let m = frontend(RECURRENCE).unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let prog = Program::new(
            &m,
            &sched.flowchart,
            &sched.memory,
            RuntimeOptions::default(),
        );
        for (n, bias) in [(4i64, 0.5f64), (9, 1.25), (4, 2.0), (17, -0.75)] {
            let out = prog
                .run(
                    &Inputs::new().set_int("n", n).set_real("bias", bias),
                    &Sequential,
                )
                .unwrap();
            assert_eq!(out.scalar("y"), Value::Real(expected(n, bias)));
        }
        // Three distinct layouts (n ∈ {4, 9, 17}); bias never forces one.
        assert_eq!(prog.specialization_count(), 3);
    }

    #[test]
    fn concurrent_runs_share_one_program() {
        let m = frontend(RECURRENCE).unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let prog = Program::new(
            &m,
            &sched.flowchart,
            &sched.memory,
            RuntimeOptions::default(),
        );
        std::thread::scope(|scope| {
            for t in 0..4 {
                let prog = &prog;
                scope.spawn(move || {
                    for i in 0..8 {
                        let n = 3 + ((t + i) % 5) as i64;
                        let bias = 0.25 * (t + 1) as f64;
                        let out = prog
                            .run(
                                &Inputs::new().set_int("n", n).set_real("bias", bias),
                                &Sequential,
                            )
                            .unwrap();
                        assert_eq!(out.scalar("y"), Value::Real(expected(n, bias)));
                    }
                });
            }
        });
        assert_eq!(prog.specialization_count(), 5, "n ∈ 3..=7");
    }

    #[test]
    fn spec_cache_evicts_least_recently_used() {
        let m = frontend(RECURRENCE).unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let prog = Program::new(
            &m,
            &sched.flowchart,
            &sched.memory,
            RuntimeOptions {
                spec_cache_cap: 2,
                ..Default::default()
            },
        );
        let run = |n: i64| {
            let out = prog
                .run(
                    &Inputs::new().set_int("n", n).set_real("bias", 1.0),
                    &Sequential,
                )
                .unwrap();
            assert_eq!(out.scalar("y"), Value::Real(expected(n, 1.0)));
        };
        run(4); // cache: {4}
        run(9); // cache: {4, 9}
        assert_eq!(prog.spec_evictions(), 0);
        run(4); // touch 4, so 9 is now the LRU
        run(17); // evicts 9; cache: {4, 17}
        assert_eq!(prog.spec_evictions(), 1);
        assert_eq!(prog.spec_cached(), 2, "cache never exceeds its cap");
        run(4); // still cached: no new build
        assert_eq!(prog.specialization_count(), 3, "4, 9, 17");
        run(9); // rebuilt after eviction (evicting the LRU, 17)
        assert_eq!(prog.specialization_count(), 4);
        assert_eq!(prog.spec_evictions(), 2);
        assert_eq!(prog.spec_cached(), 2);
        // Adversarial diversity: memory stays bounded at the cap.
        for n in 3..40 {
            run(n);
        }
        assert_eq!(prog.spec_cached(), 2);
    }

    #[test]
    fn session_reuses_one_slot_across_runs() {
        let m = frontend(RECURRENCE).unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let prog = Program::new(
            &m,
            &sched.flowchart,
            &sched.memory,
            RuntimeOptions::default(),
        );
        {
            let mut session = prog.session();
            for (n, bias) in [(4i64, 0.5f64), (9, 1.25), (4, 2.0)] {
                let out = session
                    .run(
                        &Inputs::new().set_int("n", n).set_real("bias", bias),
                        &Sequential,
                    )
                    .unwrap();
                assert_eq!(out.scalar("y"), Value::Real(expected(n, bias)));
            }
            // The pool is empty while the session holds the slot.
            assert_eq!(prog.pool.lock().unwrap().len(), 0);
        }
        // Dropping the session returned the slot.
        assert_eq!(prog.pool.lock().unwrap().len(), 1);
    }

    #[test]
    fn checked_compiled_program_runs() {
        let m = frontend(RECURRENCE).unwrap();
        let dg = build_depgraph(&m);
        let sched = schedule_module(&m, &dg, ScheduleOptions::default()).unwrap();
        let prog = Program::new(
            &m,
            &sched.flowchart,
            &sched.memory,
            RuntimeOptions {
                check_writes: true,
                ..Default::default()
            },
        );
        // Two runs: the second reuses pooled (tagged) storage, so stale
        // tags from run one must not trip the checker.
        for _ in 0..2 {
            let out = prog
                .run(
                    &Inputs::new().set_int("n", 12).set_real("bias", 1.0),
                    &Sequential,
                )
                .unwrap();
            assert_eq!(out.scalar("y"), Value::Real(expected(12, 1.0)));
        }
    }
}
