//! Input bindings, the live data store, and module outputs.

use crate::ndarray::{ArrayInstance, DimSpec, NdSpec};
use crate::value::{OwnedArray, Value};
use ps_lang::hir::{DataKind, HirModule};
use ps_lang::{DataId, ScalarTy, Ty};
use ps_scheduler::MemoryPlan;
use ps_support::{FxHashMap, Symbol};
use std::sync::RwLock;

/// Parameter bindings supplied by the caller.
#[derive(Clone, Debug, Default)]
pub struct Inputs {
    scalars: FxHashMap<Symbol, Value>,
    arrays: FxHashMap<Symbol, OwnedArray>,
}

impl Inputs {
    pub fn new() -> Inputs {
        Inputs::default()
    }

    pub fn set_int(mut self, name: &str, v: i64) -> Inputs {
        self.scalars.insert(Symbol::intern(name), Value::Int(v));
        self
    }

    pub fn set_real(mut self, name: &str, v: f64) -> Inputs {
        self.scalars.insert(Symbol::intern(name), Value::Real(v));
        self
    }

    pub fn set_bool(mut self, name: &str, v: bool) -> Inputs {
        self.scalars.insert(Symbol::intern(name), Value::Bool(v));
        self
    }

    pub fn set_array(mut self, name: &str, a: OwnedArray) -> Inputs {
        self.arrays.insert(Symbol::intern(name), a);
        self
    }

    pub fn scalar(&self, name: Symbol) -> Option<Value> {
        self.scalars.get(&name).copied()
    }

    pub fn array(&self, name: Symbol) -> Option<&OwnedArray> {
        self.arrays.get(&name)
    }

    /// The affine-parameter environment (scalar ints only).
    pub fn param_env(&self) -> FxHashMap<Symbol, i64> {
        self.scalars
            .iter()
            .filter_map(|(&s, v)| match v {
                Value::Int(i) => Some((s, *i)),
                _ => None,
            })
            .collect()
    }
}

/// Module results returned by the interpreter or oracle.
#[derive(Clone, Debug, Default)]
pub struct Outputs {
    pub scalars: FxHashMap<String, Value>,
    pub arrays: FxHashMap<String, OwnedArray>,
}

impl Outputs {
    pub fn array(&self, name: &str) -> &OwnedArray {
        &self.arrays[name]
    }

    pub fn scalar(&self, name: &str) -> Value {
        self.scalars[name]
    }
}

/// Setup failure (missing input, unevaluable bound, shape mismatch).
#[derive(Clone, Debug)]
pub struct RuntimeError(pub String);

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RuntimeError {}

/// The live data store for one module execution.
pub struct Store<'m> {
    pub module: &'m HirModule,
    pub params: FxHashMap<Symbol, i64>,
    arrays: FxHashMap<DataId, ArrayInstance>,
    /// Scalar *parameters*: immutable after construction, read lock-free —
    /// guards in hot DOALL bodies read `M`/`maxK` millions of times.
    param_scalars: FxHashMap<DataId, Value>,
    /// Scalar locals/results and record fields (written only outside
    /// loops; a lock keeps the structure simple and is uncontended).
    scalars: RwLock<FxHashMap<(DataId, usize), Value>>,
}

impl<'m> Store<'m> {
    /// Allocate every array of `module` per the memory plan, binding
    /// parameters from `inputs`.
    pub fn build(
        module: &'m HirModule,
        plan: &MemoryPlan,
        inputs: &Inputs,
        check_writes: bool,
    ) -> Result<Store<'m>, RuntimeError> {
        let params = inputs.param_env();
        let mut arrays = FxHashMap::default();
        let mut param_scalars = FxHashMap::default();
        let scalars = FxHashMap::default();

        for (id, item) in module.data.iter_enumerated() {
            match item.kind {
                DataKind::Param => {
                    if item.is_array() {
                        let owned = inputs.array(item.name).ok_or_else(|| {
                            RuntimeError(format!("missing input array `{}`", item.name))
                        })?;
                        // Validate the declared shape.
                        let declared = Self::bounds_of(module, &params, id)?;
                        if declared != owned.dims {
                            return Err(RuntimeError(format!(
                                "input `{}` has dims {:?}, declared {:?}",
                                item.name, owned.dims, declared
                            )));
                        }
                        arrays.insert(id, ArrayInstance::from_owned(owned));
                    } else {
                        let v = inputs.scalar(item.name).ok_or_else(|| {
                            RuntimeError(format!("missing input `{}`", item.name))
                        })?;
                        // Widen ints handed to real params.
                        let v = match (&item.ty, v) {
                            (Ty::Scalar(ScalarTy::Real), Value::Int(i)) => Value::Real(i as f64),
                            _ => v,
                        };
                        param_scalars.insert(id, v);
                    }
                }
                DataKind::Local | DataKind::Result => {
                    if item.is_array() {
                        let bounds = Self::bounds_of(module, &params, id)?;
                        let dims: Vec<DimSpec> = bounds
                            .iter()
                            .enumerate()
                            .map(|(d, &(lo, hi))| DimSpec {
                                lo,
                                hi,
                                window: plan.window(id, d),
                            })
                            .collect();
                        let elem = item.elem_scalar().ok_or_else(|| {
                            RuntimeError(format!("`{}` has no scalar element", item.name))
                        })?;
                        arrays.insert(id, ArrayInstance::new(NdSpec { dims }, elem, check_writes));
                    }
                }
            }
        }

        Ok(Store {
            module,
            params,
            arrays,
            param_scalars,
            scalars: RwLock::new(scalars),
        })
    }

    /// Evaluate the declared inclusive bounds of an array.
    pub fn bounds_of(
        module: &HirModule,
        params: &FxHashMap<Symbol, i64>,
        id: DataId,
    ) -> Result<Vec<(i64, i64)>, RuntimeError> {
        module.data[id]
            .dims()
            .iter()
            .map(|&sr| {
                let s = &module.subranges[sr];
                let lo =
                    s.lo.eval(params)
                        .ok_or_else(|| RuntimeError(format!("cannot evaluate bound {}", s.lo)))?;
                let hi =
                    s.hi.eval(params)
                        .ok_or_else(|| RuntimeError(format!("cannot evaluate bound {}", s.hi)))?;
                if hi < lo {
                    return Err(RuntimeError(format!(
                        "empty dimension {lo}..{hi} for `{}`",
                        module.data[id].name
                    )));
                }
                Ok((lo, hi))
            })
            .collect()
    }

    pub fn array(&self, id: DataId) -> &ArrayInstance {
        self.arrays
            .get(&id)
            .unwrap_or_else(|| panic!("array `{}` not allocated", self.module.data[id].name))
    }

    pub fn read_scalar(&self, id: DataId, field: usize) -> Value {
        if field == 0 {
            if let Some(v) = self.param_scalars.get(&id) {
                return *v;
            }
        }
        self.scalars
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(id, field))
            .copied()
            .unwrap_or_else(|| {
                panic!(
                    "scalar `{}` read before definition",
                    self.module.data[id].name
                )
            })
    }

    pub fn write_scalar(&self, id: DataId, field: usize, v: Value) {
        self.scalars
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert((id, field), v);
    }

    /// Extract results into [`Outputs`].
    pub fn into_outputs(mut self) -> Outputs {
        let mut out = Outputs::default();
        for &id in &self.module.results.clone() {
            let item = &self.module.data[id];
            if item.is_array() {
                let inst = self.arrays.remove(&id).expect("result array was allocated");
                out.arrays
                    .insert(item.name.to_string(), inst.to_owned_array());
            } else {
                let v = self.read_scalar(id, 0);
                out.scalars.insert(item.name.to_string(), v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_lang::frontend;

    #[test]
    fn inputs_builder_and_env() {
        let inputs = Inputs::new()
            .set_int("n", 5)
            .set_real("x", 1.5)
            .set_bool("flag", true);
        assert_eq!(inputs.scalar(Symbol::intern("n")), Some(Value::Int(5)));
        let env = inputs.param_env();
        assert_eq!(env.get(&Symbol::intern("n")), Some(&5));
        assert!(!env.contains_key(&Symbol::intern("x")), "reals not affine");
    }

    #[test]
    fn store_allocates_and_validates() {
        let m = frontend(
            "T: module (n: int; init: array[1..n] of real): [y: real];
             type K = 2 .. n;
             var a: array [1 .. n] of real;
             define
                a[1] = init[1];
                a[K] = a[K-1] + 1.0;
                y = a[n];
             end T;",
        )
        .unwrap();
        let plan = MemoryPlan::new();
        let inputs = Inputs::new()
            .set_int("n", 4)
            .set_array("init", OwnedArray::real(vec![(1, 4)], vec![1.0; 4]));
        let store = Store::build(&m, &plan, &inputs, false).unwrap();
        let a = m.data_by_name("a").unwrap();
        assert_eq!(store.array(a).spec.physical_len(), 4);

        // Shape mismatch rejected.
        let bad = Inputs::new()
            .set_int("n", 4)
            .set_array("init", OwnedArray::real(vec![(1, 3)], vec![1.0; 3]));
        assert!(Store::build(&m, &plan, &bad, false).is_err());

        // Missing scalar rejected.
        let missing = Inputs::new().set_array("init", OwnedArray::real(vec![(1, 4)], vec![1.0; 4]));
        assert!(Store::build(&m, &plan, &missing, false).is_err());
    }
}
